"""Grouping a fleet of stores by data characteristics (intro + Section 4.1.1).

The paper's marketing scenario: "based on the deviation between pairs of
datasets, a set of stores can be grouped together and earmarked for the
same marketing strategy" -- and delta*'s triangle inequality means the
fleet "can be embedded in a k-dimensional space for visually comparing
their relative differences".

This script builds eight stores from three regional buying processes and
runs them through :class:`repro.fleet.FleetDeviationMatrix`: the cheap
delta* bound matrix is filled from the mined models alone, pairs whose
bound certifies them as quiet are never re-scanned (Theorem 4.2: the
exact deviation is at most the bound), and only the pairs that might
differ significantly pay an exact measurement -- each store's dataset
scanned once, not once per pair. The resulting matrix is embedded with
classical MDS and grouped with agglomerative clustering.

Run:  python examples/store_fleet_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import LitsModel, generate_basket
from repro.data.quest_basket import build_pattern_pool
from repro.fleet import FleetDeviationMatrix

MIN_SUPPORT = 0.02
REGION_OF_STORE = ["north", "north", "north", "south", "south", "south",
                   "coast", "coast"]


def build_fleet(n_transactions: int, rng) -> list:
    """Eight stores drawn from three regional buying processes."""
    pools = {
        "north": build_pattern_pool(rng, n_items=120, n_patterns=120,
                                    avg_pattern_len=4),
        "south": build_pattern_pool(rng, n_items=120, n_patterns=120,
                                    avg_pattern_len=5),
        "coast": build_pattern_pool(rng, n_items=120, n_patterns=120,
                                    avg_pattern_len=3),
    }
    return [
        generate_basket(n_transactions, n_items=120, avg_transaction_len=8,
                        rng=rng, pool=pools[region])
        for region in REGION_OF_STORE
    ]


def main(n_transactions: int = 3_000, seed: int = 23) -> dict:
    rng = np.random.default_rng(seed)
    stores = build_fleet(n_transactions, rng)
    names = [f"store-{i} ({region})" for i, region in enumerate(REGION_OF_STORE)]

    models = [LitsModel.mine(s, MIN_SUPPORT, max_len=3) for s in stores]
    print("mined one lits-model per store "
          f"({', '.join(str(len(m)) for m in models)} itemsets)")

    engine = FleetDeviationMatrix(models, stores, names=names)

    # Pairwise delta*: models only, no dataset scans (Theorem 4.2).
    bounds = engine.bound_matrix()
    print("\npairwise delta* bound matrix:")
    for i, row in enumerate(bounds):
        cells = " ".join(f"{v:7.2f}" for v in row)
        print(f"  {names[i]:18s} {cells}")

    # Exact-where-it-matters: certify the quietest pairs from their
    # bounds alone and re-scan only the rest. The threshold is the
    # operator's insignificance budget; here, the lower quartile of the
    # observed bounds (the within-region regime).
    off_diagonal = bounds[np.triu_indices(len(names), k=1)]
    threshold = float(np.quantile(off_diagonal, 0.25))
    result = engine.pruned(threshold)
    print(
        f"\ndelta*-pruned matrix at threshold {threshold:.2f}: "
        f"{result.n_pruned} of {result.n_pairs} pairs certified without a "
        f"scan, {result.n_scanned} re-scanned exactly, "
        f"{result.n_model_only} answered from the models (Section 7.1); "
        f"store scans: {engine.scan_counts()}"
    )

    # Embed for visual comparison.
    coords = result.embedding(k=2)
    print("\n2-D MDS embedding (deviation distances):")
    for name, (x, y) in zip(names, coords):
        print(f"  {name:18s} ({x:8.2f}, {y:8.2f})")

    # Group for marketing strategies.
    groups = result.groups(n_groups=3)
    print("\nstores grouped for marketing strategies:")
    for group, members in sorted(groups.items()):
        print(f"  strategy {group}: {', '.join(members)}")

    # Sanity: the recovered groups should match the generating regions.
    by_region: dict[str, set[int]] = {}
    labels = {name: g for g, ms in groups.items() for name in ms}
    for name, region in zip(names, REGION_OF_STORE):
        by_region.setdefault(region, set()).add(labels[name])
    consistent = all(len(gs) == 1 for gs in by_region.values())
    print(f"\ngroups match the true regional processes: {consistent}")
    return {
        "groups": groups,
        "consistent": consistent,
        "threshold": threshold,
        "n_pruned": result.n_pruned,
        "n_pairs": result.n_pairs,
    }


if __name__ == "__main__":
    main()
