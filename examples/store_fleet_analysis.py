"""Grouping a fleet of stores by data characteristics (intro + Section 4.1.1).

The paper's marketing scenario: "based on the deviation between pairs of
datasets, a set of stores can be grouped together and earmarked for the
same marketing strategy" -- and delta*'s triangle inequality means the
fleet "can be embedded in a k-dimensional space for visually comparing
their relative differences".

This script builds eight stores from three regional buying processes,
computes the pairwise delta* matrix from the mined models alone (no
dataset re-scans), embeds it with classical MDS, and groups the stores
with agglomerative clustering.

Run:  python examples/store_fleet_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LitsModel,
    embed_models,
    generate_basket,
    group_stores,
    upper_bound_matrix,
)
from repro.data.quest_basket import build_pattern_pool

MIN_SUPPORT = 0.02
REGION_OF_STORE = ["north", "north", "north", "south", "south", "south",
                   "coast", "coast"]


def build_fleet(n_transactions: int, rng) -> list:
    """Eight stores drawn from three regional buying processes."""
    pools = {
        "north": build_pattern_pool(rng, n_items=120, n_patterns=120,
                                    avg_pattern_len=4),
        "south": build_pattern_pool(rng, n_items=120, n_patterns=120,
                                    avg_pattern_len=5),
        "coast": build_pattern_pool(rng, n_items=120, n_patterns=120,
                                    avg_pattern_len=3),
    }
    return [
        generate_basket(n_transactions, n_items=120, avg_transaction_len=8,
                        rng=rng, pool=pools[region])
        for region in REGION_OF_STORE
    ]


def main(n_transactions: int = 3_000, seed: int = 23) -> dict:
    rng = np.random.default_rng(seed)
    stores = build_fleet(n_transactions, rng)
    names = [f"store-{i} ({region})" for i, region in enumerate(REGION_OF_STORE)]

    models = [LitsModel.mine(s, MIN_SUPPORT, max_len=3) for s in stores]
    print("mined one lits-model per store "
          f"({', '.join(str(len(m)) for m in models)} itemsets)")

    # Pairwise delta*: models only, no dataset scans (Theorem 4.2).
    distances = upper_bound_matrix(models)
    print("\npairwise delta* matrix:")
    for i, row in enumerate(distances):
        cells = " ".join(f"{v:7.2f}" for v in row)
        print(f"  {names[i]:18s} {cells}")

    # Embed for visual comparison.
    coords = embed_models(models, k=2)
    print("\n2-D MDS embedding (delta* distances):")
    for name, (x, y) in zip(names, coords):
        print(f"  {name:18s} ({x:8.2f}, {y:8.2f})")

    # Group for marketing strategies.
    groups = group_stores(distances, n_groups=3, names=names)
    print("\nstores grouped for marketing strategies:")
    for group, members in sorted(groups.items()):
        print(f"  strategy {group}: {', '.join(members)}")

    # Sanity: the recovered groups should match the generating regions.
    by_region: dict[str, set[int]] = {}
    labels = {name: g for g, ms in groups.items() for name in ms}
    for name, region in zip(names, REGION_OF_STORE):
        by_region.setdefault(region, set()).add(labels[name])
    consistent = all(len(gs) == 1 for gs in by_region.values())
    print(f"\ngroups match the true regional processes: {consistent}")
    return {"groups": groups, "consistent": consistent}


if __name__ == "__main__":
    main()
