"""Choosing a sample size with sample deviations (Section 6).

Mining the full dataset is expensive; mining a sample is cheap but less
faithful. The paper's answer: compute the *sample deviation* (SD) --
the FOCUS deviation between the full-data model and the sample model --
across sample fractions, and pick the knee of the curve. The Wilcoxon
test says whether each size increase still helps *statistically*; the
curve says whether it helps *materially* (the paper: "for many
applications ... 20-30% of the original dataset" suffices).

Run:  python examples/sample_size_selection.py
"""

from __future__ import annotations

import numpy as np

from repro import LitsModel, generate_basket
from repro.experiments.reporting import format_curves
from repro.experiments.sample_size import sample_deviation_curve

FRACTIONS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8)
MIN_SUPPORT = 0.02


def main(n_transactions: int = 6_000, n_reps: int = 5, seed: int = 11,
         tolerance: float = 1.25) -> dict:
    rng = np.random.default_rng(seed)
    dataset = generate_basket(
        n_transactions, n_items=150, avg_transaction_len=8,
        n_patterns=200, avg_pattern_len=4, rng=rng,
    )

    def builder(d):
        return LitsModel.mine(d, MIN_SUPPORT, max_len=3)

    curve = sample_deviation_curve(
        dataset, builder, FRACTIONS, n_reps=n_reps, rng=rng, label="SD"
    )
    means = curve.means()

    print(format_curves(list(FRACTIONS), [("mean SD", list(means))]))

    print("\nWilcoxon significance that each step still decreases SD:")
    for fraction, sig in curve.significance_of_decrease():
        print(f"  {fraction:g} -> next: {sig:6.2f}%")

    # Pick the smallest fraction whose SD is within `tolerance` x the SD
    # of the largest fraction tried.
    converged = means[-1]
    chosen = next(
        (f for f, m in zip(FRACTIONS, means) if m <= tolerance * converged),
        FRACTIONS[-1],
    )
    print(f"\nconverged SD at SF={FRACTIONS[-1]:g}: {converged:.3f}")
    print(f"=> recommended sample fraction: {chosen:g} "
          f"(first within {tolerance:.2f}x of converged SD)")
    return {"fractions": FRACTIONS, "means": means.tolist(), "chosen": chosen}


if __name__ == "__main__":
    main()
