"""Cluster-model deviations (Section 2.4).

Customer locations for two months are clustered on a grid; FOCUS
compares the two cluster-models to quantify how the customer
distribution moved. Cluster-models are "a special case of dt-models":
each grid cell is a region and the GCR of two (different-resolution)
grids is their overlay, so deviation, focussing, and ranking all work
unchanged.

Run:  python examples/cluster_drift.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusterModel, box_focus, deviation, focussed_deviation
from repro.core.attribute import AttributeSpace, numeric
from repro.data.tabular import TabularDataset

SPACE = AttributeSpace((numeric("x", 0, 100), numeric("y", 0, 100)))


def month_of_customers(centres, n_per_blob: int, rng) -> TabularDataset:
    blobs = [
        rng.normal(centre, 6.0, size=(n_per_blob, 2)) for centre in centres
    ]
    X = np.clip(np.vstack(blobs), 0.0, 99.999)
    return TabularDataset(SPACE, X)


def main(n_per_blob: int = 400, seed: int = 9) -> dict:
    rng = np.random.default_rng(seed)

    # Month 1: customers cluster downtown (25,25) and uptown (75,75).
    month_1 = month_of_customers([(25, 25), (75, 75)], n_per_blob, rng)
    # Month 2: the uptown cluster migrated east to (90, 60).
    month_2 = month_of_customers([(25, 25), (90, 60)], n_per_blob, rng)

    model_1 = ClusterModel.fit(month_1, bins=8)
    model_2 = ClusterModel.fit(month_2, bins=8)
    print(f"month 1: {model_1.n_clusters} clusters; "
          f"month 2: {model_2.n_clusters} clusters")

    result = deviation(model_1, model_2, month_1, month_2)
    print(f"\ncluster-model deviation delta_(f_a,g_sum) = {result.value:.4f}")

    print("\ncells with the largest shift in customer density:")
    for contribution in result.top_regions(5):
        print(f"  {contribution.describe()}")

    # Focus on downtown: it should be quiet compared to the whole map.
    downtown = focussed_deviation(
        model_1, model_2, month_1, month_2,
        box_focus(x=(0, 50), y=(0, 50)),
    )
    elsewhere = result.value - downtown.value
    print(f"\nfocussed deviation downtown (x,y < 50): {downtown.value:.4f}")
    print(f"deviation outside downtown:              {elsewhere:.4f}")
    print("=> the movement happened outside downtown, as constructed.")
    return {
        "deviation": result.value,
        "downtown": downtown.value,
    }


if __name__ == "__main__":
    main()
