"""Model-level change detection over a transaction stream (Section 8).

The related work the paper cites tracks *single* patterns over time;
FOCUS detects "variations at levels higher than that of a single
pattern". This script treats a temporally ordered transaction log as a
*stream*: chunks flow through a :class:`~repro.stream.windows.WindowManager`
(tumbling policy), each emitted window induces a model, and the
deviation series between consecutive windows locates the change point
where the whole buying process shifted -- even though no single tracked
itemset need have moved much.

The window manager also maintains a support sketch per window over a
fixed probe collection -- each stream row is scanned exactly once for
that -- which is the measure-maintenance discipline the streaming
subsystem scales up.

Run:  python examples/transaction_stream_windows.py
"""

from __future__ import annotations

import numpy as np

from repro import LitsModel, WindowManager
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.experiments.reporting import format_curves
from repro.experiments.windows import deviation_series
from repro.stream.chunks import iter_chunks

MIN_SUPPORT = 0.03
WINDOW = 600
CHUNK = 200  # stream arrival granularity: 3 chunks per window


def build_stream(rng) -> tuple:
    """Ten quiet periods, then five from a shifted process."""
    before = build_pattern_pool(rng, n_items=100, n_patterns=80, avg_pattern_len=3)
    after = build_pattern_pool(rng, n_items=100, n_patterns=80, avg_pattern_len=5)
    parts = [
        generate_basket(WINDOW, n_items=100, avg_transaction_len=7,
                        rng=rng, pool=before)
        for _ in range(10)
    ] + [
        generate_basket(WINDOW, n_items=100, avg_transaction_len=7,
                        rng=rng, pool=after)
        for _ in range(5)
    ]
    stream = parts[0]
    for part in parts[1:]:
        stream = stream.concat(part)
    return stream, 10  # change happens entering window index 10


def main(seed: int = 29) -> dict:
    rng = np.random.default_rng(seed)
    stream, true_change = build_stream(rng)
    print(f"stream: {len(stream)} transactions; "
          f"true process change at window {true_change}")

    # Probe itemsets for the per-window sketches: the head's single items.
    probes = [(i,) for i in range(100)]
    manager = WindowManager(
        probes, n_items=100, window_chunks=WINDOW // CHUNK, policy="tumbling"
    )
    emitted = list(manager.push_many(iter_chunks(stream, CHUNK)))
    windows = [w.to_dataset() for w in emitted]
    assert manager.rows_sketched == len(stream)  # one scan per row
    print(f"window manager emitted {len(windows)} tumbling windows "
          f"({manager.rows_sketched} rows sketched once each)")

    def builder(d):
        return LitsModel.mine(d, MIN_SUPPORT, max_len=2)

    # Consecutive deviations: a spike marks the boundary.
    consecutive = deviation_series(windows, builder)
    xs = list(range(len(consecutive.deviations)))
    print("\nconsecutive-window deviation series:")
    print(format_curves(
        xs, [("delta(W_i, W_i+1)", list(consecutive.deviations))],
        x_label="window i", y_label="deviation",
    ))
    spike = consecutive.argmax()
    print(f"\nlargest jump between windows {spike} and {spike + 1}")
    print(f"robust change points: {consecutive.change_points()}")

    # Baseline series: everything after the change stays far from window 0.
    baseline = deviation_series(windows, builder, baseline=0)
    print("\ndeviation of each window from window 0:")
    for i, value in enumerate(baseline.deviations):
        bar = "#" * int(round(4 * value))
        print(f"  window {i + 1:2d}: {value:7.3f} {bar}")

    detected = spike + 1
    print(f"\n=> detected change entering window {detected} "
          f"(truth: {true_change}) -- {'correct' if detected == true_change else 'off'}")
    return {
        "detected": detected,
        "truth": true_change,
        "change_points": consecutive.change_points(),
    }


if __name__ == "__main__":
    main()
