"""Quickstart: measure and qualify the deviation between two datasets.

Generates two market-basket datasets from different processes, mines
their frequent-itemset models, and asks FOCUS the paper's two questions:

1. *How different are the datasets?* -- the deviation ``delta`` (plus the
   instant ``delta*`` upper bound computed from the models alone).
2. *Does the difference mean anything?* -- the bootstrap significance of
   ``delta`` under the same-generating-process null (Section 3.4).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LitsModel,
    deviation,
    deviation_significance,
    generate_basket,
    upper_bound_deviation,
)

MIN_SUPPORT = 0.02


def main(n_transactions: int = 4_000, n_boot: int = 25, seed: int = 7) -> dict:
    rng = np.random.default_rng(seed)

    # Two stores whose customers behave differently (different pattern pools).
    store_a = generate_basket(
        n_transactions, n_items=150, avg_transaction_len=8,
        n_patterns=200, avg_pattern_len=4, rng=rng,
    )
    store_b = generate_basket(
        n_transactions, n_items=150, avg_transaction_len=8,
        n_patterns=200, avg_pattern_len=5, rng=rng,
    )

    model_a = LitsModel.mine(store_a, MIN_SUPPORT, max_len=3)
    model_b = LitsModel.mine(store_b, MIN_SUPPORT, max_len=3)
    print(f"store A: {len(store_a)} transactions, {len(model_a)} frequent itemsets")
    print(f"store B: {len(store_b)} transactions, {len(model_b)} frequent itemsets")

    # The deviation: extend both models to their GCR, scan once, aggregate.
    result = deviation(model_a, model_b, store_a, store_b)
    print(f"\ndeviation delta_(f_a, g_sum) = {result.value:.4f} "
          f"over {len(result.regions)} GCR regions")

    # The instant upper bound (no dataset scan -- Definition 4.1).
    bound = upper_bound_deviation(model_a, model_b)
    print(f"upper bound delta*          = {bound.value:.4f} (models only)")

    # Which regions changed most? (the rank operator's raw material)
    print("\ntop 5 changed itemsets:")
    for contribution in result.top_regions(5):
        print(f"  {contribution.describe()}")

    # Is the deviation significant, or could one process explain both?
    significance = deviation_significance(
        store_a, store_b,
        lambda d: LitsModel.mine(d, MIN_SUPPORT, max_len=3),
        n_boot=n_boot, rng=rng,
    )
    print(f"\nbootstrap significance: {significance.significance_percent:.0f}% "
          f"(observed {significance.observed:.4f} vs "
          f"null median {np.median(significance.null_values):.4f})")
    verdict = (
        "the stores' data characteristics differ significantly"
        if significance.significance_percent >= 95
        else "the difference is within same-process variation"
    )
    print(f"=> {verdict}")
    return {
        "deviation": result.value,
        "upper_bound": bound.value,
        "significance": significance.significance_percent,
    }


if __name__ == "__main__":
    main()
