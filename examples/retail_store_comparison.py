"""Exploratory analysis with structural operators (Section 5.1).

The marketing scenario from the paper's introduction: two outlets sell
items from a *shoes* department (items 0..74) and a *clothes* department
(items 75..149). An analyst wants to know whether the popular itemsets
are similar across outlets, looking department by department.

This script builds the paper's operator expressions:

* ``structural union`` of the two lits-models (their GCR),
* the ``P(I_dept)`` filter restricting regions to one department's items,
* the ``rank`` operator ordering regions by deviation,
* ``top_n`` selections -- the per-department top-10 and the combined top-20.

Run:  python examples/retail_store_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import LitsModel, generate_basket, rank, structural_union, top_n
from repro.core.operators import itemsets_over

SHOES = range(0, 75)
CLOTHES = range(75, 150)
MIN_SUPPORT = 0.02


def make_outlets(n: int, seed: int):
    """Two outlets with overlapping but not identical buying patterns."""
    rng = np.random.default_rng(seed)
    outlet_1 = generate_basket(
        n, n_items=150, avg_transaction_len=8, n_patterns=150,
        avg_pattern_len=4, rng=rng,
    )
    outlet_2 = generate_basket(
        n, n_items=150, avg_transaction_len=8, n_patterns=150,
        avg_pattern_len=4, rng=rng,
    )
    return outlet_1, outlet_2


def main(n_transactions: int = 4_000, seed: int = 42) -> dict:
    outlet_1, outlet_2 = make_outlets(n_transactions, seed)
    model_1 = LitsModel.mine(outlet_1, MIN_SUPPORT, max_len=3)
    model_2 = LitsModel.mine(outlet_2, MIN_SUPPORT, max_len=3)

    # Lambda_1 (structural-union) Lambda_2: the GCR of the two models.
    union = structural_union(model_1.structure, model_2.structure)
    print(f"outlet 1 model: {len(model_1)} itemsets; "
          f"outlet 2 model: {len(model_2)} itemsets; GCR: {len(union)} regions")

    report = {}
    for dept_name, dept_items in (("shoes", SHOES), ("clothes", CLOTHES)):
        # P(I_dept) intersected with the union: regions over this department.
        dept_regions = itemsets_over(union.regions, dept_items)
        ranked = rank(dept_regions, outlet_1, outlet_2)
        print(f"\n[{dept_name}] {len(dept_regions)} regions; "
              f"top 10 by change between outlets:")
        for r in top_n(ranked, 10):
            print(f"  {r.describe()}")
        report[dept_name] = [rr.region.items for rr in top_n(ranked, 10)]

    # The combined expression: top 20 over both departments together.
    both = itemsets_over(union.regions, list(SHOES) + list(CLOTHES))
    combined = top_n(rank(both, outlet_1, outlet_2), 20)
    print(f"\n[combined] top 20 changed itemsets across both departments:")
    for r in combined:
        print(f"  {r.describe()}")
    report["combined"] = [rr.region.items for rr in combined]
    return report


if __name__ == "__main__":
    main()
