"""Approximate query answering from a lits-model (the paper's future work).

Section 8 closes with "we intend to apply our framework to approximate
query answering". This example sketches that idea: a mined lits-model is
a compact summary (structure + measures), so conjunctive support queries
can be answered from the model without touching the data -- exactly when
the queried itemset is one of the model's regions, and approximately
(via the best frequent subset, an upper bound by monotonicity) when not.

The script compares model answers against true supports and reports the
error profile, plus how the FOCUS deviation between two datasets bounds
the drift of the *answers* a cached model would give.

Run:  python examples/approximate_query.py
"""

from __future__ import annotations

import numpy as np

from repro import LitsModel, deviation, generate_basket

MIN_SUPPORT = 0.01


def model_support_estimate(model: LitsModel, items: frozenset[int]) -> float:
    """Support estimate from the model alone.

    Exact when ``items`` is frequent; otherwise the minimum support over
    frequent subsets (an upper bound, by support monotonicity), capped
    at the mining threshold since the itemset itself was infrequent.
    """
    exact = model.support(items)
    if exact is not None:
        return exact
    best = 1.0
    for itemset, support in model.supports.items():
        if itemset <= items:
            best = min(best, support)
    return min(best, model.min_support)


def main(n_transactions: int = 5_000, n_queries: int = 200, seed: int = 13) -> dict:
    rng = np.random.default_rng(seed)
    dataset = generate_basket(
        n_transactions, n_items=120, avg_transaction_len=8,
        n_patterns=150, avg_pattern_len=4, rng=rng,
    )
    model = LitsModel.mine(dataset, MIN_SUPPORT, max_len=3)
    print(f"model summarises {len(dataset)} transactions "
          f"with {len(model)} (itemset, support) pairs")

    # Random conjunctive queries: pairs/triples of items.
    frequent_items = sorted({i for s in model.itemsets for i in s})
    queries = []
    for _ in range(n_queries):
        k = int(rng.integers(2, 4))
        queries.append(frozenset(rng.choice(frequent_items, k, replace=False).tolist()))

    errors = []
    exact_hits = 0
    for query in queries:
        estimate = model_support_estimate(model, query)
        truth = dataset.itemset_selectivity(query)
        if model.support(query) is not None:
            exact_hits += 1
        errors.append(abs(estimate - truth))
    errors = np.array(errors)
    print(f"\n{n_queries} conjunctive support queries:")
    print(f"  answered exactly from the model: {exact_hits}")
    print(f"  mean abs error: {errors.mean():.5f}; "
          f"95th percentile: {np.quantile(errors, 0.95):.5f}")
    print(f"  (errors are bounded by the mining threshold "
          f"ms={MIN_SUPPORT} for infrequent queries)")

    # If the data drifts, the deviation bounds how stale cached answers are.
    drifted = generate_basket(
        n_transactions, n_items=120, avg_transaction_len=8,
        n_patterns=150, avg_pattern_len=5, rng=rng,
    )
    drifted_model = LitsModel.mine(drifted, MIN_SUPPORT, max_len=3)
    from repro.core.aggregate import MAX

    worst_shift = deviation(model, drifted_model, dataset, drifted, g=MAX).value
    print(f"\nafter drift, max per-itemset support shift "
          f"delta_(f_a, g_max) = {worst_shift:.4f}")
    print("=> any cached model answer is stale by at most that much.")
    return {
        "mean_error": float(errors.mean()),
        "exact_hits": exact_hits,
        "worst_shift": worst_shift,
    }


if __name__ == "__main__":
    main()
