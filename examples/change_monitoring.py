"""Change monitoring with dt-models (Section 5.2).

A classifier was trained on last quarter's customer data. Every new
weekly batch is checked against it: *by how much does the old model
misrepresent the new data?* Three instruments, all FOCUS instantiations:

* misclassification error (Theorem 5.2),
* the chi-squared goodness-of-fit statistic over the tree's regions
  (Proposition 5.1), qualified with the bootstrap since decision-tree
  cells violate the textbook X^2 preconditions,
* the full FOCUS deviation between the old and new datasets.

Weeks 1-2 come from the same process as the training data; week 3 drifts
(a different classification function) -- the monitors should stay quiet,
then fire.

Run:  python examples/change_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DtModel,
    chi_squared_statistic,
    deviation,
    generate_classification,
    misclassification_error,
    misclassification_error_via_focus,
    significance_of_statistic,
)
from repro.mining.tree.builder import TreeParams

PARAMS = TreeParams(max_depth=6, min_leaf=25)


def main(n_train: int = 6_000, n_week: int = 1_500, n_boot: int = 15,
         seed: int = 3) -> list[dict]:
    rng = np.random.default_rng(seed)

    training = generate_classification(n_train, function=2, rng=rng)
    model = DtModel.fit(training, PARAMS)
    base_error = misclassification_error(model, training)
    print(f"trained dt-model: {model.n_leaves} leaves, "
          f"training error {base_error:.3f}\n")

    weeks = [
        ("week 1 (same process)", generate_classification(n_week, function=2, rng=rng)),
        ("week 2 (same process)", generate_classification(n_week, function=2, rng=rng)),
        ("week 3 (drifted!)", generate_classification(n_week, function=5, rng=rng)),
    ]

    report = []
    for label, batch in weeks:
        me_direct = misclassification_error(model, batch)
        me_focus = misclassification_error_via_focus(model, batch)
        assert abs(me_direct - me_focus) < 1e-12  # Theorem 5.2 in action

        chi2 = chi_squared_statistic(model, training, batch).value
        chi2_sig = significance_of_statistic(
            training, batch,
            lambda d1, d2: chi_squared_statistic(
                DtModel.fit(d1, PARAMS), d1, d2
            ).value,
            n_boot=n_boot, rng=rng,
        ).significance_percent

        new_model = DtModel.fit(batch, PARAMS)
        delta = deviation(model, new_model, training, batch).value

        flag = "DRIFT" if chi2_sig >= 95 else "ok"
        print(f"{label:24s} ME={me_direct:.3f}  X^2={chi2:9.1f} "
              f"(sig {chi2_sig:5.1f}%)  delta={delta:.4f}  [{flag}]")
        report.append(
            {
                "label": label,
                "me": me_direct,
                "chi2": chi2,
                "chi2_significance": chi2_sig,
                "deviation": delta,
            }
        )

    print("\nexpectation: weeks 1-2 quiet, week 3 flagged -- "
          "ME, X^2 and delta should all jump together (cf. Figure 15).")
    return report


if __name__ == "__main__":
    main()
