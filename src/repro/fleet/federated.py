"""Federated fleet comparison: the matrix from exchanged payloads alone.

The paper's promise is comparing data characteristics *without pooling
the data*. This module is where that becomes operational: every site
packs its model and sketch into kilobyte-scale wire payloads
(:mod:`repro.wire`), ships the bytes, and :class:`SketchFleet` -- built
by :meth:`repro.fleet.FleetDeviationMatrix.from_sketches` -- computes
the all-pairs deviation matrix with **no dataset rows accessible to the
comparer**. The decisions are exact, not approximate:

* **lits fleets** -- a store ships ``(lits-model payload, support-sketch
  payload)``. If every sketch covers the fleet's probe collection
  (:func:`probe_itemsets` -- the union of all stores' itemsets), then
  every pairwise GCR (the union of *two* stores' itemsets) is a
  subvector of both sketches, and the integer counts equal what a
  row-level scan would count -- so
  :func:`~repro.core.deviation.deviation_from_counts` emits bit-equal
  values to the exhaustive oracle. The delta* bound needs only the
  models, so :meth:`SketchFleet.pruned` certifies insignificant pairs
  exactly as the row-level engine does.
* **partition fleets** -- a store ships one partition-sketch payload
  (its dt-/cluster-model travels embedded). Federated exactness needs a
  fleet-shared structure: the GCR of two *identical* partitions is the
  same partition (half-open, disjoint cells), so sketch counts over the
  shared structure are exactly the oracle's GCR counts. Pair
  significance is bootstrappable from counts alone
  (:meth:`SketchFleet.qualify`, via
  :meth:`~repro.stats.resample_plan.CountsResamplePlan.from_sketches`)
  because partition regions are disjoint; lits itemset regions overlap,
  so no counts-only bootstrap exists for them and the certified delta*
  bound is their qualification story.

Every payload byte is CRC-verified before an object is constructed, and
``wire.bytes_shipped`` tallies exactly what crossed the wire -- the
federated sibling of the storage layer's ``storage.bytes_shipped``.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro import obs
from repro._typing import ExecutorLike
from repro.core.aggregate import MAX, SUM, AggregateFunction
from repro.core.deviation import deviation_from_counts
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.gcr import gcr
from repro.core.lits import LitsModel
from repro.core.upper_bound import upper_bound_deviation
from repro.errors import IncompatibleModelsError, InvalidParameterError
from repro.fleet.matrix import FleetMatrix
from repro.stats.bootstrap import BootstrapResult
from repro.stats.resample_plan import CountsResamplePlan
from repro.stream.sketch import (
    PartitionSketch,
    SupportSketch,
    canonical_itemsets,
)
from repro.wire.format import (
    KIND_LITS_MODEL,
    KIND_PARTITION_SKETCH,
    KIND_SUPPORT_SKETCH,
    read_envelope,
)
from repro.wire.models import model_from_envelope
from repro.wire.sketches import (
    PartitionModel,
    _partition_from_envelope,
    _support_from_envelope,
)

#: One store's shipment: a partition-sketch payload, or a (lits-model
#: payload, support-sketch payload) pair.
StorePayload = Union[bytes, tuple[bytes, bytes]]


def probe_itemsets(
    models: Sequence[LitsModel],
) -> tuple[frozenset[int], ...]:
    """The fleet's probe collection: the union of all stores' itemsets.

    A sketch over this collection covers every pairwise GCR (each GCR is
    the union of *two* stores' itemsets), so one sketch per store makes
    every pair exactly comparable. Sites learn which itemsets to count
    from the fleet's models -- model payloads are what travels first.
    """
    return canonical_itemsets(
        s for m in models for s in m.structure.itemsets
    )


class SketchFleet:
    """All-pairs deviation over a fleet reconstructed from payloads.

    Build via :meth:`repro.fleet.FleetDeviationMatrix.from_sketches`.
    The API mirrors the row-level engine where the mirror is sound:
    :meth:`exhaustive` (every pair exact from sketch counts),
    :meth:`pruned` (delta*-certified pruning, lits fleets), plus the
    federated-only :meth:`qualify` (counts-bootstrap significance,
    partition fleets).
    """

    def __init__(
        self,
        payloads: Sequence[StorePayload],
        names: Sequence[str] | None = None,
        *,
        f: DifferenceFunction = ABSOLUTE,
        g: AggregateFunction = SUM,
    ) -> None:
        payloads = list(payloads)
        if not payloads:
            raise InvalidParameterError(
                "cannot build a fleet from zero payloads: give at least "
                "one store's shipment"
            )
        if names is None:
            names = [f"store-{i}" for i in range(len(payloads))]
        names = [str(n) for n in names]
        if len(names) != len(payloads):
            raise InvalidParameterError(
                f"names must align with the payloads: got {len(names)} "
                f"names for {len(payloads)} stores"
            )
        if len(set(names)) != len(names):
            raise InvalidParameterError("store names must be unique")
        self.names = tuple(names)
        self._f = f
        self._g = g
        self._bounds: np.ndarray | None = None

        kinds: set[str] = set()
        bytes_per_store: list[int] = []
        lits_models: list[LitsModel] = []
        support_sketches: list[SupportSketch] = []
        partition_models: list[PartitionModel] = []
        partition_sketches: list[PartitionSketch] = []
        for name, shipment in zip(self.names, payloads):
            if isinstance(shipment, (bytes, bytearray)):
                sketch, model = self._unpack_partition(name, bytes(shipment))
                partition_sketches.append(sketch)
                partition_models.append(model)
                bytes_per_store.append(len(shipment))
                kinds.add("partition")
            elif (
                isinstance(shipment, tuple)
                and len(shipment) == 2
                and all(isinstance(p, (bytes, bytearray)) for p in shipment)
            ):
                model_payload, sketch_payload = (
                    bytes(shipment[0]), bytes(shipment[1]),
                )
                model, sketch = self._unpack_lits(
                    name, model_payload, sketch_payload
                )
                lits_models.append(model)
                support_sketches.append(sketch)
                bytes_per_store.append(len(model_payload) + len(sketch_payload))
                kinds.add("lits")
            else:
                raise InvalidParameterError(
                    f"store {name!r}: a shipment is either one "
                    "partition-sketch payload (bytes) or a (lits-model "
                    "payload, support-sketch payload) pair of bytes, got "
                    f"{type(shipment).__name__}"
                )
        if len(kinds) > 1:
            raise IncompatibleModelsError(
                "a fleet must hold one model kind; got both lits and "
                "partition shipments (deviation between different model "
                "classes is undefined)"
            )
        self.kind = kinds.pop()
        #: Exactly what crossed the wire, per store.
        self.payload_bytes = tuple(bytes_per_store)
        obs.metrics().inc("wire.bytes_shipped", sum(bytes_per_store))

        if self.kind == "lits":
            universes = {m.n_items for m in lits_models}
            if len(universes) > 1:
                raise IncompatibleModelsError(
                    f"lits fleet stores disagree on the item universe: "
                    f"n_items in {sorted(universes)}"
                )
            self._models: list[LitsModel] | list[PartitionModel] = lits_models
            self._sketches: (
                list[SupportSketch] | list[PartitionSketch]
            ) = support_sketches
            self._positions = [
                {itemset: pos for pos, itemset in enumerate(s.itemsets)}
                for s in support_sketches
            ]
        else:
            shared = {s.key for s in partition_sketches}
            if len(shared) > 1:
                raise IncompatibleModelsError(
                    "federated partition comparison needs a fleet-shared "
                    f"structure; the {len(partition_sketches)} sketches "
                    f"measure {len(shared)} different partitions. Agree on "
                    "one reference model, ship its payload to every site, "
                    "and sketch each site's rows over that structure."
                )
            self._models = partition_models
            self._sketches = partition_sketches
            self._positions = []

    # ------------------------------------------------------------------ #
    # Payload decoding
    # ------------------------------------------------------------------ #

    @staticmethod
    def _unpack_partition(
        name: str, payload: bytes
    ) -> tuple[PartitionSketch, PartitionModel]:
        envelope = read_envelope(payload)
        if envelope.kind != KIND_PARTITION_SKETCH:
            raise InvalidParameterError(
                f"store {name!r}: a single-payload shipment must be a "
                f"partition-sketch, got a {envelope.kind_name} (lits "
                "stores ship a (model, sketch) payload pair)"
            )
        return _partition_from_envelope(envelope)

    @staticmethod
    def _unpack_lits(
        name: str, model_payload: bytes, sketch_payload: bytes
    ) -> tuple[LitsModel, SupportSketch]:
        model_envelope = read_envelope(model_payload)
        if model_envelope.kind != KIND_LITS_MODEL:
            raise InvalidParameterError(
                f"store {name!r}: the first payload of a pair must be a "
                f"lits-model, got a {model_envelope.kind_name}"
            )
        model = model_from_envelope(model_envelope)
        assert isinstance(model, LitsModel)
        sketch_envelope = read_envelope(sketch_payload)
        if sketch_envelope.kind != KIND_SUPPORT_SKETCH:
            raise InvalidParameterError(
                f"store {name!r}: the second payload of a pair must be a "
                f"support-sketch, got a {sketch_envelope.kind_name}"
            )
        sketch = _support_from_envelope(sketch_envelope)
        if sketch.n_items != model.n_items:
            raise IncompatibleModelsError(
                f"store {name!r}: its sketch counts a {sketch.n_items}-item "
                f"universe but its model was mined over {model.n_items} "
                "items"
            )
        return model, sketch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._models)

    @property
    def models(self) -> tuple[LitsModel, ...] | tuple[PartitionModel, ...]:
        """The reconstructed per-store models."""
        return tuple(self._models)

    @property
    def sketches(
        self,
    ) -> tuple[SupportSketch, ...] | tuple[PartitionSketch, ...]:
        """The reconstructed per-store sketches."""
        return tuple(self._sketches)

    def _index_of(self, store: str | int) -> int:
        if isinstance(store, str):
            try:
                return self.names.index(store)
            except ValueError:
                raise InvalidParameterError(
                    f"unknown store {store!r}; fleet stores are {self.names}"
                ) from None
        i = int(store)
        if not 0 <= i < len(self._models):
            raise InvalidParameterError(
                f"store index {i} out of range for a "
                f"{len(self._models)}-store fleet"
            )
        return i

    # ------------------------------------------------------------------ #
    # Exact pair values from sketch counts
    # ------------------------------------------------------------------ #

    def _lits_counts(
        self, store: int, itemsets: tuple[frozenset[int], ...]
    ) -> np.ndarray:
        """The store's exact counts of a GCR's itemsets (subvector pick)."""
        positions = self._positions[store]
        sketch = self._sketches[store]
        assert isinstance(sketch, SupportSketch)
        try:
            picks = [positions[s] for s in itemsets]
        except KeyError as exc:
            missing: frozenset[int] = exc.args[0]
            raise IncompatibleModelsError(
                f"store {self.names[store]!r}'s sketch does not cover "
                f"itemset {sorted(missing)}, which this pair's GCR needs; "
                "sketch every store over probe_itemsets(models) (the "
                "union of all stores' itemsets) so any pair is comparable"
            ) from None
        return sketch.counts[np.asarray(picks, dtype=np.int64)]

    def _exact_value(self, i: int, j: int) -> float:
        """One pair's exact deviation, computed from sketches alone."""
        if self.kind == "lits":
            model_i, model_j = self._models[i], self._models[j]
            assert isinstance(model_i, LitsModel)
            assert isinstance(model_j, LitsModel)
            structure = gcr(model_i.structure, model_j.structure)
            counts1 = self._lits_counts(i, structure.itemsets)
            counts2 = self._lits_counts(j, structure.itemsets)
        else:
            sketch_i, sketch_j = self._sketches[i], self._sketches[j]
            assert isinstance(sketch_i, PartitionSketch)
            assert isinstance(sketch_j, PartitionSketch)
            # the GCR of two identical partitions is that partition with
            # its regions in the original order (disjoint half-open
            # cells), so the shared structure *is* the pair's GCR and the
            # sketch counts are its exact measures
            structure = sketch_i.plan.structure
            counts1, counts2 = sketch_i.counts, sketch_j.counts
        result = deviation_from_counts(
            structure,
            counts1,
            counts2,
            self._sketches[i].n_rows,
            self._sketches[j].n_rows,
            f=self._f,
            g=self._g,
        )
        return float(result.value)

    def pair(self, store_a: str | int, store_b: str | int) -> float:
        """The exact deviation of one pair, from the payloads alone."""
        i, j = sorted((self._index_of(store_a), self._index_of(store_b)))
        if i == j:
            return 0.0
        return self._exact_value(i, j)

    # ------------------------------------------------------------------ #
    # Matrices
    # ------------------------------------------------------------------ #

    def bound_matrix(self) -> np.ndarray:
        """The pairwise delta* matrix from the shipped models (cached)."""
        if self.kind != "lits":
            raise IncompatibleModelsError(
                "the delta* upper bound (Definition 4.1) exists only for "
                "lits-models; partition fleets use exhaustive() and "
                "qualify()"
            )
        if self._bounds is None:
            n = len(self._models)
            out = np.zeros((n, n))
            with obs.metrics().span("fleet.bound_matrix"):
                for i in range(n):
                    for j in range(i + 1, n):
                        out[i, j] = out[j, i] = upper_bound_deviation(
                            self._models[i], self._models[j], g=self._g
                        ).value
            obs.metrics().inc("fleet.bounds.filled", n * (n - 1) // 2)
            self._bounds = out
        return self._bounds

    def _assemble(
        self,
        exact: dict[tuple[int, int], float],
        bounds: np.ndarray | None,
        threshold: float | None,
    ) -> FleetMatrix:
        n = len(self._models)
        values = np.zeros((n, n))
        exact_mask = np.zeros((n, n), dtype=bool)
        np.fill_diagonal(exact_mask, True)
        tally = obs.MetricsRegistry()
        for i in range(n):
            for j in range(i + 1, n):
                if (i, j) in exact:
                    value = exact[(i, j)]
                    exact_mask[i, j] = exact_mask[j, i] = True
                    tally.inc("fleet.pairs.sketch_exact")
                else:
                    assert bounds is not None
                    value = bounds[i, j]
                    tally.inc("fleet.pairs.pruned")
                values[i, j] = values[j, i] = value
        obs.metrics().absorb(tally)
        return FleetMatrix(
            names=self.names,
            values=values,
            exact_mask=exact_mask,
            kind=self.kind,
            f_name=self._f.name,
            g_name=self._g.name,
            bounds=None if bounds is None else bounds.copy(),
            threshold=threshold,
            metrics=tally.snapshot()["counters"],
        )

    def exhaustive(self) -> FleetMatrix:
        """Every pair exact, from sketch counts -- no rows anywhere.

        Reproduces the row-level engine's ``exhaustive()`` values
        bit-for-bit (same ``deviation_from_counts`` path over the same
        integer counts), which the test suite pins against the oracle.
        """
        n = len(self._models)
        exact = {
            (i, j): self._exact_value(i, j)
            for i in range(n)
            for j in range(i + 1, n)
        }
        return self._assemble(exact, None, threshold=None)

    def pruned(self, threshold: float) -> FleetMatrix:
        """delta*-pruned federated matrix (lits fleets).

        Pairs whose bound is at or below ``threshold`` are certified
        from the models alone and never touch the sketches; the rest are
        computed exactly from sketch counts. Threshold decisions agree
        with :meth:`exhaustive` -- the bound majorises the exact value.
        """
        threshold = float(threshold)
        if not np.isfinite(threshold):
            raise InvalidParameterError(
                f"threshold must be finite, got {threshold}"
            )
        if self._f.name != ABSOLUTE.name or self._g.name not in (
            SUM.name, MAX.name,
        ):
            raise InvalidParameterError(
                "delta* pruning is only sound for the f_a difference with "
                f"g_sum or g_max (Theorem 4.2); this fleet uses "
                f"f={self._f.name}, g={self._g.name} -- use exhaustive()"
            )
        bounds = self.bound_matrix()  # raises for partition fleets
        n = len(self._models)
        exact = {
            (i, j): self._exact_value(i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if bounds[i, j] > threshold
        }
        return self._assemble(exact, bounds, threshold=threshold)

    # ------------------------------------------------------------------ #
    # Qualification
    # ------------------------------------------------------------------ #

    def qualify(
        self,
        store_a: str | int,
        store_b: str | int,
        n_boot: int = 1000,
        rng: np.random.Generator | None = None,
        *,
        seed: int | None = None,
        executor: ExecutorLike = "serial",
        n_blocks: int = 1,
    ) -> BootstrapResult:
        """Bootstrap one pair's significance from the sketches alone.

        Partition fleets only: disjoint regions make the pooled counts a
        sufficient statistic for the resampling null
        (:class:`~repro.stats.resample_plan.CountsResamplePlan`), so the
        comparer can attach a p-value without any site revealing a row.
        Lits itemset regions overlap -- their counts do not determine
        the null -- so for lits fleets the certified delta* bound
        (:meth:`pruned`) is the qualification mechanism and this method
        raises.
        """
        if self.kind != "partition":
            raise InvalidParameterError(
                "counts-only bootstrap qualification needs disjoint "
                "regions; lits itemset regions overlap, so qualify() is "
                "partition-only -- for lits fleets the certified delta* "
                "bound (pruned()) is the qualification mechanism"
            )
        i, j = self._index_of(store_a), self._index_of(store_b)
        if i == j:
            raise InvalidParameterError(
                "qualify() compares two distinct stores"
            )
        sketch_i, sketch_j = self._sketches[i], self._sketches[j]
        assert isinstance(sketch_i, PartitionSketch)
        assert isinstance(sketch_j, PartitionSketch)
        plan = CountsResamplePlan.from_sketches(sketch_i, sketch_j)
        return plan.significance(
            n_boot,
            rng,
            f=self._f,
            g=self._g,
            seed=seed,
            executor=executor,
            n_blocks=n_blocks,
        )
