"""Fleet-scale pairwise deviation: delta*-pruned all-pairs matrices.

The paper's marketing scenario at production scale: ``N`` store
datasets, all ``N (N - 1) / 2`` pairwise deviations, computed by
filling the no-scan delta* bound matrix first and exactly re-scanning
only the pairs the bound cannot certify -- with every dataset scanned
once per GCR family (not once per pair), optional thread/process
fan-out, and incremental single-store updates when a log appends.

* :mod:`repro.fleet.matrix` -- :class:`FleetDeviationMatrix` (the
  engine) and :class:`FleetMatrix` (the result);
* :mod:`repro.fleet.counting` -- per-store memoised counting state;
* :mod:`repro.fleet.analysis` -- grouping (threshold components),
  report assembly, and CSV export;
* :mod:`repro.fleet.federated` -- :class:`SketchFleet`, the same matrix
  computed purely from exchanged wire payloads (no rows at the
  comparer); built via :meth:`FleetDeviationMatrix.from_sketches`.
"""

from repro.fleet.analysis import components, fleet_report, matrix_to_csv
from repro.fleet.counting import (
    LitsStoreCounter,
    prime_lits_counters,
    prime_partition_passes,
)
from repro.fleet.federated import SketchFleet, probe_itemsets
from repro.fleet.matrix import FleetDeviationMatrix, FleetMatrix

__all__ = [
    "FleetDeviationMatrix",
    "FleetMatrix",
    "LitsStoreCounter",
    "SketchFleet",
    "components",
    "fleet_report",
    "matrix_to_csv",
    "prime_lits_counters",
    "prime_partition_passes",
    "probe_itemsets",
]
