"""Fleet analysis products: grouping, embedding, and serialisation.

Downstream of the :class:`~repro.fleet.matrix.FleetMatrix` sit the
paper's two fleet deliverables -- the k-dimensional embedding "for
visually comparing their relative differences" and the grouping that
earmarks stores "for the same marketing strategy" -- plus the
machine-readable exports the ``repro fleet`` CLI emits.

:func:`components` is the grouping mode that pairs exactly with delta*
pruning: it joins stores whose deviation is at most a threshold, and a
pruned entry (which is an upper bound at most the threshold) decides
that edge identically to the exact value, so the groups computed from a
pruned matrix equal the groups from the exhaustive oracle.
"""

from __future__ import annotations

import io
from typing import Any, Sequence

import numpy as np

from repro.errors import InvalidParameterError


def components(
    distances: np.ndarray,
    threshold: float,
    names: Sequence[str] | None = None,
) -> dict[int, list[str | int]]:
    """Connected components of the ``distance <= threshold`` graph.

    Stores are grouped transitively: two stores share a group when a
    chain of pairwise deviations at or below ``threshold`` links them
    (single-linkage clustering cut at ``threshold``). Groups are
    numbered by their smallest member index.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.shape[0]
    if distances.ndim != 2 or distances.shape != (n, n):
        raise InvalidParameterError(
            f"distance matrix must be square, got shape {distances.shape}"
        )
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i in range(n):
        for j in range(i + 1, n):
            if distances[i, j] <= threshold:
                ra, rb = find(i), find(j)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)

    roots: dict[int, list[int]] = {}
    for i in range(n):
        roots.setdefault(find(i), []).append(i)
    out: dict[int, list[str | int]] = {}
    for group, (_, members) in enumerate(sorted(roots.items())):
        out[group] = [
            names[m] if names is not None else m for m in members
        ]
    return out


def fleet_report(
    matrix: Any,
    k: int = 2,
    n_groups: int | None = None,
    linkage: str = "average",
) -> dict[str, Any]:
    """A JSON-able report of one fleet measurement.

    Contains the store names, the deviation matrix with its exactness
    mask, the delta* bound matrix when available, the ``k``-dimensional
    MDS embedding, the groups (agglomerative when ``n_groups`` is
    given, else threshold components when the matrix was pruned), and
    the pruning statistics.
    """
    report: dict[str, Any] = {
        "kind": matrix.kind,
        "f": matrix.f_name,
        "g": matrix.g_name,
        "names": list(matrix.names),
        "matrix": matrix.values.tolist(),
        "exact": matrix.exact_mask.tolist(),
        # n_scanned / n_model_only / n_pruned are views of the matrix's
        # obs counter snapshot (also exported whole under "metrics"), so
        # this report, the CLI, and `--metrics` share one source of
        # truth.
        "pruning": {
            "threshold": matrix.threshold,
            "n_pairs": matrix.n_pairs,
            "n_scanned": matrix.n_scanned,
            "n_model_only": matrix.n_model_only,
            "n_sketch_exact": matrix.n_sketch_exact,
            "n_pruned": matrix.n_pruned,
        },
        "metrics": dict(matrix.metrics),
    }
    if matrix.bounds is not None:
        report["bounds"] = matrix.bounds.tolist()
    report["embedding"] = matrix.embedding(k=k).tolist()
    if n_groups is not None:
        groups = matrix.groups(n_groups, linkage=linkage)
    elif matrix.threshold is not None:
        groups = matrix.components()
    else:
        groups = None
    if groups is not None:
        report["groups"] = {str(g): members for g, members in groups.items()}
    return report


def matrix_to_csv(matrix: Any) -> str:
    """The deviation matrix as CSV: a header row, then one row per store.

    Each data row is ``name, v_0, ..., v_{n-1}``; pruned (bound-valued)
    entries are suffixed with ``*`` so the provenance survives export.
    """
    buf = io.StringIO()
    buf.write("store," + ",".join(matrix.names) + "\n")
    for i, name in enumerate(matrix.names):
        cells = [
            f"{matrix.values[i, j]:.10g}"
            + ("" if matrix.exact_mask[i, j] else "*")
            for j in range(matrix.n_stores)
        ]
        buf.write(name + "," + ",".join(cells) + "\n")
    return buf.getvalue()
