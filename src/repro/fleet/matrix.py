"""Fleet-scale all-pairs deviation with delta*-based pruning.

The paper's headline marketing scenario -- "based on the deviation
between pairs of datasets, a set of stores can be grouped together and
earmarked for the same marketing strategy" -- is an all-pairs workload:
``N`` stores, ``N (N - 1) / 2`` deviations. Computed naively that is a
dataset scan per *pair*; this engine restores the paper's intended
economics:

1. **bound first** -- the delta* upper bound (Theorem 4.2) needs only
   the models, so the full bound matrix costs zero dataset scans;
2. **prune** -- a pair whose bound is at or below the caller's
   significance threshold is *certified* to deviate by at most that
   much ("analyze the data thoroughly only if the current snapshot
   differs significantly"); only pairs whose bound crosses the
   threshold are re-scanned exactly, and the exhaustive path is kept as
   the oracle;
3. **scan once per store** -- every exact pair reuses its two stores'
   memoised counting state (:mod:`repro.fleet.counting`), so each
   dataset is scanned once per GCR family, not once per pair;
4. **fan out** -- the scans ride the serial/thread/process executors of
   :mod:`repro.stream.executor`.

Pruned entries report the delta* bound itself, flagged by
``exact_mask``. Because the bound majorises the exact deviation, every
threshold decision (``deviation <= threshold``?) agrees exactly with
the exhaustive matrix -- which is why :meth:`FleetMatrix.components`
grouping at the pruning threshold is exact despite the skipped scans.

Both lits- and partition-model fleets are supported; delta* exists only
for lits-models, so partition fleets use the exhaustive path (their
per-store reuse comes from the memoised assigner passes). Appendable
stores (:class:`~repro.stream.chunks.TransactionLog` /
:class:`~repro.stream.chunks.TabularLog`) make the matrix incremental:
after appending, :meth:`FleetDeviationMatrix.update` re-mines only that
store's model and recomputes only its row/column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro import obs

from repro._typing import ExecutorLike, ModelBuilder, ModelLike
from repro.core.aggregate import MAX, SUM, AggregateFunction
from repro.core.deviation import _counts_from_models, deviation_from_counts
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.gcr import gcr
from repro.core.lits import LitsModel
from repro.core.model import PartitionStructure
from repro.core.upper_bound import upper_bound_deviation
from repro.errors import IncompatibleModelsError, InvalidParameterError
from repro.fleet.counting import (
    LitsStoreCounter,
    prime_lits_counters,
    prime_partition_passes,
)
from repro.stream.executor import get_executor

if TYPE_CHECKING:  # circular at runtime: federated builds FleetMatrix
    from repro.fleet.federated import SketchFleet

#: How a cached exact pair value was obtained.
_SCAN, _MODEL_ONLY = "scan", "model"


def _model_kind(model: ModelLike) -> str:
    """``"lits"`` / ``"partition"`` / the class name for anything else."""
    if isinstance(model, LitsModel):
        return "lits"
    if isinstance(getattr(model, "structure", None), PartitionStructure):
        return "partition"
    return type(model).__name__


@dataclass(frozen=True)
class FleetMatrix:
    """An all-pairs deviation matrix plus its provenance.

    ``values[i, j]`` is the exact deviation wherever ``exact_mask`` is
    true; elsewhere it is the pair's delta* bound (an upper bound on the
    exact value, itself at most ``threshold``). The matrix is symmetric
    with a zero diagonal.

    ``metrics`` is the matrix's :mod:`repro.obs` counter snapshot --
    the single source of truth for the pruning statistics; the
    ``n_scanned`` / ``n_model_only`` / ``n_pruned`` properties,
    :meth:`to_report`, and the CLI all read from it.
    """

    names: tuple[str, ...]
    values: np.ndarray
    exact_mask: np.ndarray
    kind: str
    f_name: str
    g_name: str
    bounds: np.ndarray | None = None
    threshold: float | None = None
    metrics: Mapping[str, int] = field(default_factory=dict)

    @property
    def n_scanned(self) -> int:
        """Pairs measured by a real dataset scan."""
        return int(self.metrics.get("fleet.pairs.scanned", 0))

    @property
    def n_model_only(self) -> int:
        """Pairs measured exactly from stored model measures (no scan)."""
        return int(self.metrics.get("fleet.pairs.model_only", 0))

    @property
    def n_pruned(self) -> int:
        """Pairs certified by the delta* bound and never scanned."""
        return int(self.metrics.get("fleet.pairs.pruned", 0))

    @property
    def n_sketch_exact(self) -> int:
        """Pairs measured exactly from exchanged sketch payloads.

        Non-zero only for matrices built by the federated path
        (:meth:`FleetDeviationMatrix.from_sketches`), where no dataset
        rows are accessible to the comparer.
        """
        return int(self.metrics.get("fleet.pairs.sketch_exact", 0))

    @property
    def n_stores(self) -> int:
        return len(self.names)

    @property
    def n_pairs(self) -> int:
        n = self.n_stores
        return n * (n - 1) // 2

    def embedding(self, k: int = 2) -> np.ndarray:
        """Classical MDS coordinates of the stores (``(n, k)``).

        ``n`` points embed exactly in at most ``n - 1`` dimensions, so
        for tiny fleets the extra requested axes carry no information;
        they are zero-padded rather than rejected (a 2-store fleet in
        the default ``k=2`` is a line plus a zero column).
        """
        from repro.core.embedding import classical_mds

        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        n = self.n_stores
        if n == 1:
            return np.zeros((1, k))
        k_eff = min(k, n - 1)
        coords = classical_mds(self.values, k=k_eff)
        if k_eff < k:
            coords = np.pad(coords, ((0, 0), (0, k - k_eff)))
        return coords

    def groups(
        self, n_groups: int, linkage: str = "average"
    ) -> dict[int, list[str | int]]:
        """Agglomerative grouping into ``n_groups`` marketing strategies."""
        from repro.core.grouping import group_stores

        if self.n_stores == 1:
            if n_groups != 1:
                raise InvalidParameterError(
                    "a single-store fleet only supports n_groups=1"
                )
            return {0: [self.names[0]]}
        return group_stores(self.values, n_groups, linkage, names=self.names)

    def components(
        self, threshold: float | None = None
    ) -> dict[int, list[str | int]]:
        """Connected components under ``deviation <= threshold``.

        At the pruning threshold this grouping is *exact*: a pruned
        entry is certified at or below the threshold (hence an edge)
        and every other entry is the exact deviation. See
        :mod:`repro.fleet.analysis`.
        """
        from repro.fleet.analysis import components

        if threshold is None:
            threshold = self.threshold
        if threshold is None:
            raise InvalidParameterError(
                "components() needs a threshold (none was recorded on "
                "this matrix; pass one explicitly)"
            )
        return components(self.values, threshold, names=self.names)

    def to_report(
        self, k: int = 2, n_groups: int | None = None, linkage: str = "average"
    ) -> dict[str, Any]:
        """JSON-able report: matrix + embedding + groups + pruning stats."""
        from repro.fleet.analysis import fleet_report

        return fleet_report(self, k=k, n_groups=n_groups, linkage=linkage)

    def to_csv(self) -> str:
        """The deviation matrix as CSV (header row + one row per store)."""
        from repro.fleet.analysis import matrix_to_csv

        return matrix_to_csv(self)


class FleetDeviationMatrix:
    """All-pairs deviation engine over an aligned fleet of stores.

    Parameters
    ----------
    models, datasets:
        The per-store models and the datasets that induced them,
        aligned. All stores must share one model kind (lits or
        partition); mixing raises :class:`IncompatibleModelsError`.
        Datasets may be appendable logs -- see :meth:`update`.
    names:
        Optional store names (default ``store-0`` ... ``store-N-1``).
    f, g:
        Difference and aggregate functions for the exact deviations.
        Pruning requires ``f_a`` with ``g_sum`` or ``g_max`` -- the
        combinations delta* provably majorises.
    executor:
        Backend for fanning the per-store scans: ``"serial"``,
        ``"thread"``, ``"process"``, or an object with ``.map``.
    model_builder:
        Optional ``dataset -> model`` callable so :meth:`update` can
        re-mine a store after its log grew.
    """

    def __init__(
        self,
        models: Sequence[ModelLike],
        datasets: Sequence[Any],
        names: Sequence[str] | None = None,
        *,
        f: DifferenceFunction = ABSOLUTE,
        g: AggregateFunction = SUM,
        executor: ExecutorLike = "serial",
        model_builder: ModelBuilder | None = None,
    ) -> None:
        models = list(models)
        datasets = list(datasets)
        if not models:
            raise InvalidParameterError(
                "cannot build a fleet matrix over an empty fleet: give at "
                "least one (model, dataset) store"
            )
        if len(models) != len(datasets):
            raise InvalidParameterError(
                f"models and datasets must align store-for-store: got "
                f"{len(models)} models vs {len(datasets)} datasets"
            )
        kinds = {_model_kind(m) for m in models}
        if len(kinds) > 1:
            raise IncompatibleModelsError(
                f"a fleet must hold one model kind; got {sorted(kinds)} "
                "(deviation between different model classes is undefined)"
            )
        self.kind = kinds.pop()
        if self.kind not in ("lits", "partition"):
            raise IncompatibleModelsError(
                f"unsupported fleet model kind {self.kind!r}; expected "
                "lits-models or partition (dt-/cluster-) models"
            )
        if names is None:
            names = [f"store-{i}" for i in range(len(models))]
        names = [str(n) for n in names]
        if len(names) != len(models):
            raise InvalidParameterError(
                f"names must align with the fleet: got {len(names)} names "
                f"for {len(models)} stores"
            )
        if len(set(names)) != len(names):
            raise InvalidParameterError("store names must be unique")
        if self.kind == "lits":
            universes = {m.n_items for m in models}
            if len(universes) > 1:
                raise IncompatibleModelsError(
                    f"lits fleet stores disagree on the item universe: "
                    f"n_items in {sorted(universes)}"
                )

        self._models = models
        self._datasets = datasets
        self.names = tuple(names)
        self._f = f
        self._g = g
        # Resolved once: pooled executors reuse their workers across
        # every matrix computation of this engine (per-call resolution
        # would spawn and abandon a pool per call).
        self._executor = get_executor(executor)
        self._model_builder = model_builder
        self._counters = (
            [LitsStoreCounter(d) for d in datasets]
            if self.kind == "lits"
            else []
        )
        self._n_rows = [len(d) for d in datasets]
        #: Rows each store had when its *model* was supplied. A store
        #: whose log outgrew this is "stale": its model no longer
        #: describes its data, so neither the delta* bound nor the
        #: stored-measures fast path may speak for it (see pruned()).
        self._model_rows = [len(d) for d in datasets]
        #: (i, j) i<j -> (exact value, _SCAN | _MODEL_ONLY)
        self._exact: dict[tuple[int, int], tuple[float, str]] = {}
        self._bounds: np.ndarray | None = None
        self.n_pair_computations = 0

    @classmethod
    def from_sketches(
        cls,
        payloads: "Sequence[bytes | tuple[bytes, bytes]]",
        names: Sequence[str] | None = None,
        *,
        f: DifferenceFunction = ABSOLUTE,
        g: AggregateFunction = SUM,
    ) -> "SketchFleet":
        """A federated fleet, from exchanged wire payloads alone.

        Each store's shipment is either one partition-sketch payload
        (bytes; its dt-/cluster-model travels embedded) or a
        ``(lits-model payload, support-sketch payload)`` pair. The
        returned :class:`~repro.fleet.federated.SketchFleet` computes
        the same exact deviations and the same delta*-certified pruning
        decisions as this row-level engine, but no dataset rows are
        accessible to the comparer -- the kilobyte payloads are all that
        crossed the wire. See :mod:`repro.fleet.federated`.
        """
        from repro.fleet.federated import SketchFleet

        return SketchFleet(payloads, names, f=f, g=g)

    def close(self) -> None:
        """Release the engine's executor pool, if it has one.

        A no-op for the serial backend. An engine built from a backend
        *name* owns the pool it resolved; one handed an executor
        instance shares its owner's (``shutdown`` is idempotent, and
        pooled backends respawn workers lazily if reused).
        """
        shutdown = getattr(self._executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._models)

    @property
    def models(self) -> tuple[ModelLike, ...]:
        return tuple(self._models)

    @property
    def datasets(self) -> tuple[Any, ...]:
        return tuple(self._datasets)

    def scan_counts(self) -> list[int]:
        """Batched scans performed per store so far (lits fleets)."""
        return [c.n_scans for c in self._counters]

    def _index_of(self, store: str | int) -> int:
        if isinstance(store, str):
            try:
                return self.names.index(store)
            except ValueError:
                raise InvalidParameterError(
                    f"unknown store {store!r}; fleet stores are {self.names}"
                ) from None
        i = int(store)
        if not 0 <= i < len(self._models):
            raise InvalidParameterError(
                f"store index {i} out of range for a {len(self._models)}-store "
                "fleet"
            )
        return i

    # ------------------------------------------------------------------ #
    # The delta* bound matrix (no dataset scans)
    # ------------------------------------------------------------------ #

    def bound_matrix(self) -> np.ndarray:
        """The pairwise delta* matrix, from the models alone (cached)."""
        if self.kind != "lits":
            raise IncompatibleModelsError(
                "the delta* upper bound (Definition 4.1) exists only for "
                "lits-models; partition fleets must use exhaustive()"
            )
        if self._bounds is None:
            n = len(self._models)
            out = np.zeros((n, n))
            with obs.metrics().span("fleet.bound_matrix"):
                for i in range(n):
                    for j in range(i + 1, n):
                        out[i, j] = out[j, i] = upper_bound_deviation(
                            self._models[i], self._models[j], g=self._g
                        ).value
            obs.metrics().inc("fleet.bounds.filled", n * (n - 1) // 2)
            self._bounds = out
        return self._bounds

    def _refresh_bounds_row(self, i: int) -> None:
        if self._bounds is None:
            return
        for j in range(len(self._models)):
            if j == i:
                continue
            value = upper_bound_deviation(
                self._models[i], self._models[j], g=self._g
            ).value
            self._bounds[i, j] = self._bounds[j, i] = value
        obs.metrics().inc("fleet.bounds.filled", len(self._models) - 1)

    # ------------------------------------------------------------------ #
    # Exact computation with per-store scan reuse
    # ------------------------------------------------------------------ #

    def _refresh_grown_stores(self) -> None:
        """Invalidate cached pair values of stores whose log grew.

        The store's *model* is kept as-is (deviation of the stored model
        against the grown snapshot is the monitoring view); call
        :meth:`update` to re-mine it.
        """
        for i, dataset in enumerate(self._datasets):
            if len(dataset) != self._n_rows[i]:
                self._invalidate_store(i)

    def _invalidate_store(self, i: int) -> None:
        self._exact = {
            pair: v for pair, v in self._exact.items() if i not in pair
        }
        if self._counters:
            self._counters[i].reset()
        self._n_rows[i] = len(self._datasets[i])

    def _stale_stores(self) -> set[int]:
        """Stores whose dataset grew past the rows their model was built on."""
        return {
            i
            for i, d in enumerate(self._datasets)
            if len(d) != self._model_rows[i]
        }

    def _ensure_exact(self, pairs: Sequence[tuple[int, int]]) -> None:
        """Compute and cache the exact deviation of every listed pair."""
        missing = [p for p in pairs if p not in self._exact]
        if not missing:
            return
        structures = {
            (i, j): gcr(self._models[i].structure, self._models[j].structure)
            for i, j in missing
        }
        if self.kind == "lits":
            self._ensure_exact_lits(missing, structures)
        else:
            self._ensure_exact_partition(missing, structures)
        self.n_pair_computations += len(missing)

    def _ensure_exact_lits(
        self,
        missing: Sequence[tuple[int, int]],
        structures: Mapping[tuple[int, int], Any],
    ) -> None:
        models, counters = self._models, self._counters
        stale = self._stale_stores()
        model_only: dict[tuple[int, int], tuple[Any, Any]] = {}
        needed: dict[int, dict[frozenset[int], None]] = {}
        for (i, j), s in structures.items():
            n1 = counters[i].n_rows
            n2 = counters[j].n_rows
            # The stored-measures fast path (Section 7.1) speaks for the
            # datasets the models were induced from; a store whose log
            # grew past its model must be measured by a real scan.
            fast = (
                None
                if i in stale or j in stale
                else _counts_from_models(models[i], models[j], s, n1, n2)
            )
            if fast is not None:
                model_only[(i, j)] = fast
                continue
            for store in (i, j):
                needed.setdefault(store, {}).update(
                    dict.fromkeys(s.itemsets)
                )
        prime_lits_counters(
            counters,
            {i: list(its) for i, its in needed.items()},
            executor=self._executor,
        )
        for (i, j), s in structures.items():
            n1, n2 = counters[i].n_rows, counters[j].n_rows
            if (i, j) in model_only:
                counts1, counts2 = model_only[(i, j)]
                tag = _MODEL_ONLY
            else:
                counts1 = counters[i].vector(s.itemsets)
                counts2 = counters[j].vector(s.itemsets)
                tag = _SCAN
            result = deviation_from_counts(
                s, counts1, counts2, n1, n2, f=self._f, g=self._g
            )
            self._exact[(i, j)] = (result.value, tag)

    def _ensure_exact_partition(
        self,
        missing: Sequence[tuple[int, int]],
        structures: Mapping[tuple[int, int], Any],
    ) -> None:
        datasets = self._datasets
        stores = {i for pair in missing for i in pair}
        prime_partition_passes(
            self._models, datasets, stores, executor=self._executor
        )
        # Identical GCR structures share each store's measured counts
        # (the deviation_many trick, keyed order-sensitively).
        counts_by: dict[tuple[int, object], np.ndarray] = {}
        for (i, j), s in structures.items():
            key = s.counts_key
            counts: list[np.ndarray] = []
            for store in (i, j):
                cached = counts_by.get((store, key))
                if cached is None:
                    cached = np.asarray(s.counts(datasets[store]))
                    counts_by[(store, key)] = cached
                counts.append(cached)
            result = deviation_from_counts(
                s, counts[0], counts[1], len(datasets[i]), len(datasets[j]),
                f=self._f, g=self._g,
            )
            self._exact[(i, j)] = (result.value, _SCAN)

    def pair(self, store_a: str | int, store_b: str | int) -> float:
        """The exact deviation of one pair (computed or cached)."""
        i, j = sorted((self._index_of(store_a), self._index_of(store_b)))
        if i == j:
            return 0.0
        self._refresh_grown_stores()
        self._ensure_exact([(i, j)])
        return self._exact[(i, j)][0]

    # ------------------------------------------------------------------ #
    # Matrices
    # ------------------------------------------------------------------ #

    def _assemble(
        self,
        exact_pairs: Sequence[tuple[int, int]],
        bounds: np.ndarray | None,
        threshold: float | None,
    ) -> FleetMatrix:
        n = len(self._models)
        values = np.zeros((n, n))
        exact_mask = np.zeros((n, n), dtype=bool)
        np.fill_diagonal(exact_mask, True)
        # Tally through an obs registry so the matrix's pruning stats
        # and any ambient `--metrics` collection share one counting
        # path (satellite of the repro.obs wiring).
        tally = obs.MetricsRegistry()
        exact_set = set(exact_pairs)
        for i in range(n):
            for j in range(i + 1, n):
                if (i, j) in exact_set:
                    value, tag = self._exact[(i, j)]
                    exact_mask[i, j] = exact_mask[j, i] = True
                    tally.inc(
                        "fleet.pairs.model_only"
                        if tag == _MODEL_ONLY
                        else "fleet.pairs.scanned"
                    )
                else:
                    assert bounds is not None
                    value = bounds[i, j]
                    tally.inc("fleet.pairs.pruned")
                values[i, j] = values[j, i] = value
        obs.metrics().absorb(tally)
        return FleetMatrix(
            names=self.names,
            values=values,
            exact_mask=exact_mask,
            kind=self.kind,
            f_name=self._f.name,
            g_name=self._g.name,
            bounds=None if bounds is None else bounds.copy(),
            threshold=threshold,
            metrics=tally.snapshot()["counters"],
        )

    def exhaustive(self) -> FleetMatrix:
        """The oracle: every pair computed exactly (scans memoised).

        The result never carries a bound matrix -- exhaustive output is
        about exact values, and attaching bounds only when an earlier
        call happened to compute them would make the report schema
        depend on call history. Use :meth:`bound_matrix` or
        :meth:`pruned` when the bounds are the point.
        """
        self._refresh_grown_stores()
        n = len(self._models)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        self._ensure_exact(pairs)
        return self._assemble(pairs, None, threshold=None)

    def pruned(self, threshold: float) -> FleetMatrix:
        """delta*-pruned matrix: scan only pairs the bound cannot clear.

        A pair whose delta* bound is at or below ``threshold`` is
        certified insignificant at that level (its exact deviation is at
        most the bound, Theorem 4.2) and is **not** scanned; its entry
        reports the bound with ``exact_mask`` false. Every other pair is
        computed exactly. All ``<= threshold`` decisions therefore agree
        with :meth:`exhaustive`; with a threshold below every off-
        diagonal bound nothing is pruned and the matrices are equal.

        A store whose log grew past its model (appended without
        :meth:`update`) is never certified: its delta* bound describes
        the rows its model was mined from, not the grown snapshot, so
        every pair involving it is scanned exactly regardless of the
        bound -- which keeps the agreement guarantee intact.
        """
        threshold = float(threshold)
        if not np.isfinite(threshold):
            raise InvalidParameterError(
                f"threshold must be finite, got {threshold}"
            )
        if self._f.name != ABSOLUTE.name or self._g.name not in (
            SUM.name, MAX.name,
        ):
            raise InvalidParameterError(
                "delta* pruning is only sound for the f_a difference with "
                f"g_sum or g_max (Theorem 4.2); this fleet uses "
                f"f={self._f.name}, g={self._g.name} -- use exhaustive()"
            )
        bounds = self.bound_matrix()  # raises for partition fleets
        self._refresh_grown_stores()
        stale = self._stale_stores()
        n = len(self._models)
        pairs = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if bounds[i, j] > threshold or i in stale or j in stale
        ]
        self._ensure_exact(pairs)
        return self._assemble(pairs, bounds, threshold=threshold)

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #

    def update(
        self, store: str | int, *, model: ModelLike | None = None
    ) -> ModelLike:
        """Refresh one store after its log appended; returns its new model.

        Re-mines the store's model (``model_builder``, unless ``model``
        is given), drops the cached pair values and counting memo of
        that store *only*, and refreshes its row/column of the bound
        matrix. The next matrix call recomputes ``N - 1`` pairs instead
        of ``N (N - 1) / 2``.
        """
        i = self._index_of(store)
        if model is None:
            if self._model_builder is None:
                raise InvalidParameterError(
                    "update() needs a model: pass model=... or construct "
                    "the fleet with model_builder="
                )
            model = self._model_builder(self._datasets[i])
        if _model_kind(model) != self.kind:
            raise IncompatibleModelsError(
                f"update would change store {self.names[i]!r} from a "
                f"{self.kind} model to {_model_kind(model)}; a fleet holds "
                "one model kind"
            )
        self._models[i] = model
        self._invalidate_store(i)
        self._model_rows[i] = len(self._datasets[i])
        self._refresh_bounds_row(i)
        return model
