"""Per-store counting state for all-pairs fleet measurement.

The all-pairs workload has a wasteful naive shape: computing
``deviation(M_i, M_j, D_i, D_j)`` pair by pair scans every dataset once
per *pair*, i.e. ``N - 1`` times each. But for lits-models the GCR of a
pair is just the union of the two itemset collections, so the counts a
store contributes to **all** of its pairings are supports of itemsets
drawn from one fleet-wide family. :class:`LitsStoreCounter` exploits
that: it memoises ``itemset -> absolute count`` per store and answers
:meth:`prime` requests for whatever is still missing with **one**
batched :meth:`~repro.data.transactions.BitmapIndex.support_counts`
pass -- so an N-store matrix scans each dataset once per GCR family,
not once per pair (``n_scans`` proves it).

Partition (dt-/cluster-) fleets get the same property for free from the
memoised assigner passes of :mod:`repro.core.partition_plan`: every GCR
overlay re-uses each store's base ``row -> cell`` pass, so
:func:`prime_partition_passes` only has to force those base passes --
optionally in parallel -- before the per-pair overlay lookups run.

Both priming steps fan out over the :mod:`repro.stream.executor`
backends. Support-counting payloads (a bitmap index plus an itemset
list) pickle cleanly, so lits fleets can use the process pool; GCR
overlay assigners are closures, so partition fleets are limited to the
serial and thread backends.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro._typing import DatasetLike, ExecutorLike
from repro.core.partition_plan import cell_assignments
from repro.errors import InvalidParameterError
from repro.obs import MetricsRegistry, enabled, metrics, use_registry
from repro.stream.executor import (
    _merge_worker_registries,
    get_executor,
    process_backed,
)


class LitsStoreCounter:
    """Memoised ``itemset -> absolute count`` for one store's dataset.

    The memo survives across matrix computations (exhaustive after
    pruned, incremental updates), so a pair is never the reason a store
    is re-scanned: only genuinely new itemsets trigger another batched
    pass. If the underlying dataset grew (an appendable
    :class:`~repro.stream.chunks.TransactionLog`), the memo self-heals:
    the next :meth:`prime` notices the length change and recounts.
    """

    __slots__ = ("dataset", "n_scans", "_counts", "_n_rows")

    def __init__(self, dataset: DatasetLike) -> None:
        self.dataset = dataset
        self.n_scans = 0
        self._counts: dict[frozenset[int], int] = {}
        self._n_rows = len(dataset)

    @property
    def n_rows(self) -> int:
        """Row count the memoised counts refer to."""
        return self._n_rows

    def reset(self) -> None:
        """Drop the memo (the store's data or model changed)."""
        self._counts.clear()
        self._n_rows = len(self.dataset)

    def missing(self, itemsets: Iterable[frozenset[int]]) -> list[frozenset[int]]:
        """The itemsets not yet memoised, in first-seen order."""
        if len(self.dataset) != self._n_rows:
            self.reset()
            return list(dict.fromkeys(itemsets))
        counts = self._counts
        return list(dict.fromkeys(s for s in itemsets if s not in counts))

    def prime(self, itemsets: Iterable[frozenset[int]]) -> None:
        """Memoise every missing itemset with one batched scan."""
        missing = self.missing(itemsets)
        if missing:
            self.absorb(missing, self.dataset.index.support_counts(missing))

    def absorb(
        self, itemsets: Sequence[frozenset[int]], counts: np.ndarray
    ) -> None:
        """Record the result of a (possibly remote) batched scan."""
        self.n_scans += 1
        metrics().inc("fleet.store.scans")
        self._counts.update(zip(itemsets, (int(c) for c in counts)))

    def vector(self, itemsets: Sequence[frozenset[int]]) -> np.ndarray:
        """The memoised counts of ``itemsets`` as an aligned vector."""
        counts = self._counts
        return np.array([counts[s] for s in itemsets], dtype=np.int64)


def _count_support_payload(
    payload: tuple[Any, ...],
) -> np.ndarray | tuple[np.ndarray, MetricsRegistry]:
    """Top-level map worker (picklable for the process backend).

    With the collect flag set, the scan runs under a fresh per-store
    registry (span ``fleet.store.scan`` + the bitmap counters) that
    travels back with the counts, exactly like the stream shard
    workers.
    """
    index, itemsets, collect = payload
    if not collect:
        return index.support_counts(itemsets)
    local = MetricsRegistry()
    with use_registry(local):
        with local.span("fleet.store.scan"):
            counts = index.support_counts(itemsets)
    return counts, local


def prime_lits_counters(
    counters: Sequence[LitsStoreCounter],
    needed: Mapping[int, Sequence[frozenset[int]]],
    executor: ExecutorLike = "serial",
) -> None:
    """Fill every counter's missing itemsets, one batched scan per store.

    ``needed`` maps a store index to the itemsets its pairings require;
    the scans (one per store with anything missing) fan out across the
    executor and the results are absorbed into the counters in-process.
    """
    missing = {
        i: counters[i].missing(itemsets) for i, itemsets in needed.items()
    }
    todo = [i for i, m in missing.items() if m]
    if not todo:
        return
    collect = enabled()
    payloads = [(counters[i].dataset.index, missing[i], collect) for i in todo]
    # a backend *name* resolves to a runner this call owns and releases;
    # an executor *instance* stays open for its owner to reuse
    runner = get_executor(executor)
    owns_runner = isinstance(executor, str)
    if process_backed(runner):
        # mmap-backed indexes pickle as stripe handles (zero row bytes
        # on the wire); RAM indexes ship their whole packed buffer
        metrics().inc(
            "storage.bytes_shipped",
            sum(
                0 if index.handle() is not None else index._buf.nbytes
                for index, _, _ in payloads
            ),
        )
    try:
        results = runner.map(_count_support_payload, payloads)
    finally:
        if owns_runner:
            shutdown = getattr(runner, "shutdown", None)
            if shutdown is not None:
                shutdown()
    if collect:
        results = _merge_worker_registries(results)
    for i, counts in zip(todo, results):
        counters[i].absorb(missing[i], counts)


def prime_partition_passes(
    models: Sequence[Any],
    datasets: Sequence[Any],
    indices: Iterable[int],
    executor: ExecutorLike = "serial",
) -> None:
    """Force each store's base ``row -> cell`` assigner pass, memoised.

    Every GCR overlay a store participates in composes its *base*
    assigner, and :func:`repro.core.partition_plan.cell_assignments`
    memoises that pass per dataset -- so forcing the base passes up
    front (in parallel, when the executor allows) leaves the per-pair
    overlay measurement as pure table lookups plus ``bincount``.
    """
    # a backend *name* resolves to a runner this call owns and releases;
    # an executor *instance* stays open for its owner to reuse
    runner = get_executor(executor)
    owns_runner = isinstance(executor, str)
    try:
        if process_backed(runner) and not getattr(runner, "degradable", False):
            # a degradable supervised fan is allowed through: its process
            # rung will break on the unpicklable closures and the ladder
            # lands the work on the thread/serial rungs below
            raise InvalidParameterError(
                "the process executor cannot fan out partition fleets (GCR "
                "overlay assigners are closures and the assignment memo "
                "lives in-process); use the serial or thread executor"
            )

        collect = enabled()

        def _prime(i: int) -> MetricsRegistry | None:
            # serial/thread only (guarded above), so a closure is fine;
            # worker threads do not see the caller's registry, hence the
            # same collect-and-return pattern as the shard workers
            if not collect:
                cell_assignments(models[i].structure.assigner, datasets[i])
                return None
            local = MetricsRegistry()
            with use_registry(local):
                with local.span("fleet.store.assign"):
                    cell_assignments(
                        models[i].structure.assigner, datasets[i]
                    )
            return local

        regs = runner.map(_prime, list(dict.fromkeys(indices)))
        if collect:
            sink = metrics()
            for local in regs:
                if local is not None:
                    sink.absorb(local)
    finally:
        if owns_runner:
            shutdown = getattr(runner, "shutdown", None)
            if shutdown is not None:
                shutdown()
