"""Itemset utilities shared by the miner, the lits-models, and the tests.

An itemset is represented as a ``frozenset[int]`` throughout the library;
this module adds canonical ordering helpers, a brute-force support oracle
(used by the test-suite to validate Apriori and the bitmap index), and
bulk support counting against a :class:`~repro.data.transactions.TransactionDataset`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro.data.transactions import TransactionDataset

Itemset = frozenset


def canonical(items: Iterable[int]) -> frozenset[int]:
    """The canonical frozenset form of an itemset."""
    return frozenset(int(i) for i in items)


def sort_itemsets(itemsets: Iterable[frozenset[int]]) -> list[frozenset[int]]:
    """Deterministic ordering: by size, then lexicographic on sorted items."""
    return sorted(itemsets, key=lambda s: (len(s), tuple(sorted(s))))


def support_counts(
    dataset: TransactionDataset, itemsets: Sequence[frozenset[int]]
) -> np.ndarray:
    """Absolute support counts of ``itemsets`` in one batched index pass."""
    return dataset.index.support_counts(itemsets)


def frequent_items(dataset: TransactionDataset, min_count: int) -> dict[int, int]:
    """Items meeting ``min_count``, from one vectorised popcount pass.

    The shared pass-1 of both level-wise miners (Apriori, FP-growth).
    """
    counts = dataset.index.item_support_counts()
    return {
        item: int(c) for item, c in enumerate(counts) if c >= min_count
    }


def supports(
    dataset: TransactionDataset, itemsets: Sequence[frozenset[int]]
) -> np.ndarray:
    """Relative supports (selectivities) of ``itemsets``."""
    n = len(dataset)
    counts = support_counts(dataset, itemsets)
    if n == 0:
        return np.zeros(len(itemsets))
    return counts / n


def brute_force_support_count(
    dataset: TransactionDataset, items: Iterable[int]
) -> int:
    """Reference implementation: subset test per transaction."""
    target = set(items)
    return sum(1 for t in dataset if target <= set(t))


def brute_force_frequent(
    dataset: TransactionDataset, min_support: float, max_len: int | None = None
) -> dict[frozenset[int], float]:
    """Reference frequent-itemset miner by exhaustive enumeration.

    Only feasible for tiny item universes; the tests use it as the oracle
    against which Apriori is checked.
    """
    n = len(dataset)
    if n == 0:
        return {}
    present = sorted({i for t in dataset for i in t})
    limit = max_len if max_len is not None else len(present)
    out: dict[frozenset[int], float] = {}
    for k in range(1, limit + 1):
        found_any = False
        for combo in combinations(present, k):
            count = brute_force_support_count(dataset, combo)
            support = count / n
            if support >= min_support:
                out[frozenset(combo)] = support
                found_any = True
        if not found_any:
            break
    return out
