"""Mining substrates: Apriori, FP-growth, decision trees, and clustering."""

from repro.mining.apriori import apriori, apriori_from_index
from repro.mining.fpgrowth import fpgrowth
from repro.mining.itemsets import (
    brute_force_frequent,
    brute_force_support_count,
    frequent_items,
    sort_itemsets,
    support_counts,
    supports,
)

__all__ = [
    "apriori",
    "apriori_from_index",
    "brute_force_frequent",
    "brute_force_support_count",
    "fpgrowth",
    "frequent_items",
    "sort_itemsets",
    "support_counts",
    "supports",
]
