"""The Apriori frequent-itemset miner (Agrawal & Srikant, VLDB 1994).

This is the algorithm the paper uses to compute lits-models
(Section 6.1.1: "We used the Apriori algorithm [5] to compute the set of
frequent itemsets"). Level-wise search: frequent ``k``-itemsets are
joined on their ``(k-1)``-prefix to form candidates, candidates with any
infrequent subset are pruned, and the survivors are counted against the
dataset's bitmap index -- one batched support-counting pass per level,
with the index's intersection-bits cache resolving each level-``k``
candidate from its memoised level-``(k-1)`` prefix bitmap.
"""

from __future__ import annotations

import numpy as np

from repro.data.transactions import BitmapIndex, TransactionDataset
from repro.errors import InvalidParameterError


def _frequent_singletons(
    index: BitmapIndex, min_count: int
) -> dict[frozenset[int], int]:
    """Counts of all single items meeting the support threshold."""
    counts = index.item_support_counts()
    return {
        frozenset((item,)): int(c)
        for item, c in enumerate(counts)
        if c >= min_count
    }


def _generate_candidates(
    frequent_k: list[tuple[int, ...]], frequent_set: set[frozenset[int]]
) -> list[tuple[int, ...]]:
    """Join step + prune step of Apriori candidate generation.

    ``frequent_k`` holds the frequent k-itemsets as sorted tuples; two are
    joined when they share their first ``k-1`` items. A candidate
    survives only if every k-subset is frequent.
    """
    candidates: list[tuple[int, ...]] = []
    frequent_sorted = sorted(frequent_k)
    n = len(frequent_sorted)
    for i in range(n):
        a = frequent_sorted[i]
        prefix = a[:-1]
        for j in range(i + 1, n):
            b = frequent_sorted[j]
            if b[:-1] != prefix:
                break  # sorted order: no further joins share this prefix
            candidate = a + (b[-1],)
            # Prune: all k-subsets must be frequent. Subsets missing the
            # last one or two items are the joined pair, already known.
            if all(
                frozenset(candidate[:m] + candidate[m + 1 :]) in frequent_set
                for m in range(len(candidate) - 2)
            ):
                candidates.append(candidate)
    return candidates


def apriori(
    dataset: TransactionDataset,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], float]:
    """Mine all itemsets with support >= ``min_support``.

    Parameters
    ----------
    dataset:
        The transaction dataset (anything exposing ``len`` and a bitmap
        ``index`` -- an immutable :class:`TransactionDataset` or a
        growing :class:`repro.stream.chunks.TransactionLog`).
    min_support:
        Relative minimum support in ``(0, 1]`` (the paper's ``ms``).
    max_len:
        Optional cap on itemset size (``None`` = unbounded).

    Returns
    -------
    dict
        Mapping itemset -> relative support. Empty for an empty dataset.
    """
    if len(dataset) == 0:
        if not 0.0 < min_support <= 1.0:
            raise InvalidParameterError(
                f"min_support must be in (0, 1], got {min_support}"
            )
        return {}
    return apriori_from_index(dataset.index, min_support, max_len=max_len)


def apriori_from_index(
    index: BitmapIndex,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], float]:
    """Level-wise mining straight off a (possibly incremental) index.

    The streaming layer keeps one :class:`BitmapIndex` alive and
    appends to it as rows arrive; re-mining after an append runs over
    the extended stripes without any rebuild, so this entry point takes
    the index itself rather than a dataset.
    """
    if not 0.0 < min_support <= 1.0:
        raise InvalidParameterError(
            f"min_support must be in (0, 1], got {min_support}"
        )
    n = index.n_transactions
    if n == 0:
        return {}
    # A set is frequent iff count/n >= min_support, i.e. count >= ceil(ms*n).
    min_count = int(np.ceil(min_support * n))
    min_count = max(min_count, 1)

    result_counts: dict[frozenset[int], int] = {}
    level = _frequent_singletons(index, min_count)
    result_counts.update(level)

    k = 1
    try:
        while level and (max_len is None or k < max_len):
            frequent_k = [tuple(sorted(s)) for s in level]
            frequent_set = set(level)
            candidates = _generate_candidates(frequent_k, frequent_set)
            level = {}
            if candidates:
                # One batched pass per level; cache=True memoises each
                # candidate's intersection bitmap so the next level's
                # candidates resolve from their k-prefix with a single AND.
                counts = index.support_counts(candidates, cache=True)
                level = {
                    frozenset(candidate): int(count)
                    for candidate, count in zip(candidates, counts)
                    if count >= min_count
                }
                # Only frequent k-itemsets can prefix level-(k+1)
                # candidates; drop the rest of the memo (and its pinned
                # batch buffers).
                index.retain_cache(level.keys())
            result_counts.update(level)
            k += 1
    finally:
        index.clear_cache()

    return {s: c / n for s, c in result_counts.items()}
