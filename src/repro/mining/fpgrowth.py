"""FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).

A second, candidate-generation-free miner for lits-models. The paper's
experiments use Apriori; FP-growth produces the identical model (the
test-suite asserts equality on random inputs), so it slots into every
FOCUS pipeline through :meth:`repro.core.lits.LitsModel` -- useful when
the pattern distribution makes Apriori's candidate space explode.

Implementation: a standard FP-tree with header-table node links;
conditional pattern bases are mined recursively, with the usual
single-path shortcut (a chain tree yields all subsets directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.mining.itemsets import frequent_items


@dataclass
class _FPNode:
    """One FP-tree node: an item with a count and tree/header links."""

    item: int
    count: int = 0
    parent: "_FPNode | None" = None
    children: dict[int, "_FPNode"] = field(default_factory=dict)
    next_link: "_FPNode | None" = None  # header-table chain


class _FPTree:
    """An FP-tree over (ordered) item lists with a header table."""

    def __init__(self) -> None:
        self.root = _FPNode(item=-1)
        self.header: dict[int, _FPNode] = {}
        self.counts: dict[int, int] = {}

    def insert(self, items: list[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item=item, parent=node)
                node.children[item] = child
                # Push onto the header chain for this item.
                child.next_link = self.header.get(item)
                self.header[item] = child
            child.count += count
            node = child
        for item in items:
            self.counts[item] = self.counts.get(item, 0) + count

    def node_chain(self, item: int):
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.next_link

    def is_single_path(self) -> tuple[bool, list[tuple[int, int]]]:
        """Whether the tree is one chain; if so, its (item, count) path."""
        path: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return False, []
            node = next(iter(node.children.values()))
            path.append((node.item, node.count))
        return True, path


def _build_tree(
    item_lists: list[tuple[list[int], int]],
) -> _FPTree:
    tree = _FPTree()
    for items, count in item_lists:
        if items:
            tree.insert(items, count)
    return tree


def _mine_tree(
    tree: _FPTree,
    suffix: tuple[int, ...],
    min_count: int,
    max_len: int | None,
    out: dict[frozenset[int], int],
) -> None:
    single, path = tree.is_single_path()
    if single:
        # Every subset of the path, combined with the suffix, is frequent
        # with the minimum count along the chosen items.
        eligible = [(item, count) for item, count in path if count >= min_count]
        limit = len(eligible)
        if max_len is not None:
            limit = min(limit, max_len - len(suffix))
        for k in range(1, limit + 1):
            for combo in combinations(eligible, k):
                count = min(c for _, c in combo)
                if count >= min_count:
                    itemset = frozenset(suffix) | {i for i, _ in combo}
                    out[itemset] = count
        return

    # General case: mine each header item (ascending frequency order).
    items = sorted(tree.counts, key=lambda i: (tree.counts[i], i))
    for item in items:
        support = tree.counts[item]
        if support < min_count:
            continue
        itemset = frozenset(suffix) | {item}
        out[itemset] = support
        if max_len is not None and len(itemset) >= max_len:
            continue
        # Conditional pattern base: prefix paths of every node for `item`.
        conditional: list[tuple[list[int], int]] = []
        for node in tree.node_chain(item):
            prefix: list[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                prefix.append(parent.item)
                parent = parent.parent
            if prefix:
                conditional.append((list(reversed(prefix)), node.count))
        if not conditional:
            continue
        # Keep only items frequent within the conditional base.
        cond_counts: dict[int, int] = {}
        for prefix, count in conditional:
            for i in prefix:
                cond_counts[i] = cond_counts.get(i, 0) + count
        keep = {i for i, c in cond_counts.items() if c >= min_count}
        filtered = [
            ([i for i in prefix if i in keep], count)
            for prefix, count in conditional
        ]
        filtered = [(p, c) for p, c in filtered if p]
        if not filtered:
            continue
        subtree = _build_tree(filtered)
        _mine_tree(subtree, tuple(itemset), min_count, max_len, out)


def fpgrowth(
    dataset: TransactionDataset,
    min_support: float,
    max_len: int | None = None,
) -> dict[frozenset[int], float]:
    """Mine all itemsets with support >= ``min_support`` via FP-growth.

    Drop-in equivalent of :func:`repro.mining.apriori.apriori`: same
    arguments, same result mapping (itemset -> relative support).
    """
    if not 0.0 < min_support <= 1.0:
        raise InvalidParameterError(
            f"min_support must be in (0, 1], got {min_support}"
        )
    n = len(dataset)
    if n == 0:
        return {}
    min_count = max(int(np.ceil(min_support * n)), 1)

    # Pass 1: frequent single items (shared batched pass with Apriori),
    # in descending frequency order.
    frequent = frequent_items(dataset, min_count)
    if not frequent:
        return {}
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent, key=lambda i: (-frequent[i], i))
        )
    }

    # Pass 2: insert ordered, filtered transactions.
    item_lists = [
        (sorted((i for i in txn if i in frequent), key=order.__getitem__), 1)
        for txn in dataset
    ]
    tree = _build_tree(item_lists)

    out: dict[frozenset[int], int] = {}
    _mine_tree(tree, (), min_count, max_len, out)
    return {itemset: count / n for itemset, count in out.items()}
