"""CART-style decision-tree construction (Breiman et al. 1984).

The paper builds its dt-models with "a scalable version of the widely
studied CART algorithm implemented in the RainForest framework"
(Section 6.1.2). This builder follows the same recipe: greedy top-down
induction, gini (or entropy) impurity, binary splits on numeric
thresholds or categorical value subsets, with the usual stopping rules
(max depth, minimum leaf size, purity, no positive-gain split).

The split search consumes per-node class-count aggregates rather than
raw tuples -- the RainForest AVC idea -- which is what
:func:`repro.mining.tree.splits.best_split` computes vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tabular import TabularDataset
from repro.errors import InvalidParameterError, SchemaError
from repro.mining.tree.splits import best_split
from repro.mining.tree.tree import DecisionTree, Node


@dataclass(frozen=True)
class TreeParams:
    """Hyper-parameters for tree induction.

    ``min_leaf`` is the minimum number of tuples in each child of a
    split; ``min_gain`` is the smallest impurity decrease worth
    splitting on (guards against numerically-zero gains).
    """

    max_depth: int = 10
    min_leaf: int = 25
    min_gain: float = 1e-9
    impurity: str = "gini"

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise InvalidParameterError("max_depth must be >= 0")
        if self.min_leaf < 1:
            raise InvalidParameterError("min_leaf must be >= 1")
        if self.impurity not in ("gini", "entropy"):
            raise InvalidParameterError(
                f"impurity must be 'gini' or 'entropy', got {self.impurity!r}"
            )


def _class_counts(y: np.ndarray, n_classes: int) -> np.ndarray:
    return np.bincount(y, minlength=n_classes).astype(np.int64)


def build_tree(dataset: TabularDataset, params: TreeParams | None = None) -> DecisionTree:
    """Fit a decision tree to a labelled tabular dataset."""
    if dataset.y is None:
        raise SchemaError("decision trees require a labelled dataset")
    if len(dataset) == 0:
        raise InvalidParameterError("cannot fit a tree to an empty dataset")
    params = params or TreeParams()
    space = dataset.space
    n_classes = space.n_classes
    labels = np.asarray(dataset.y)
    # Class labels may be arbitrary ints; map them to 0..k-1 for counting.
    label_to_code = {label: i for i, label in enumerate(space.class_labels)}
    coded = np.array([label_to_code[int(v)] for v in labels], dtype=np.int64)

    columns = dataset.columns

    def grow(idx: np.ndarray, depth: int) -> Node:
        y_node = coded[idx]
        counts = _class_counts(y_node, n_classes)
        node = Node(class_counts=counts, depth=depth)
        if (
            depth >= params.max_depth
            or idx.size < 2 * params.min_leaf
            or np.count_nonzero(counts) <= 1
        ):
            return node
        node_columns = {name: col[idx] for name, col in columns.items()}
        split = best_split(
            space.attributes,
            node_columns,
            y_node,
            n_classes,
            params.min_leaf,
            params.impurity,
        )
        if split is None or split.gain < params.min_gain:
            return node
        left_mask = split.left_mask(node_columns[split.attribute])
        node.split = split
        node.left = grow(idx[left_mask], depth + 1)
        node.right = grow(idx[~left_mask], depth + 1)
        return node

    root = grow(np.arange(len(dataset), dtype=np.int64), 0)
    return DecisionTree(space=space, root=root)
