"""Decision-tree structure: nodes, prediction, and leaf partitions.

A fitted :class:`DecisionTree` exposes exactly what FOCUS needs from a
dt-model (Section 2.1):

* ``predict`` -- majority-class prediction per tuple (used by the
  misclassification-error instantiation, Section 5.2.1);
* ``leaf_assign`` -- vectorised tuple -> leaf-id mapping (the fast path
  for measuring GCR regions in one scan);
* ``leaf_predicates`` -- the conjunctive predicate of each leaf, whose
  cross product with the class labels forms the structural component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.attribute import Attribute, AttributeSpace
from repro.core.predicate import Conjunction, Interval, ValueSet
from repro.errors import NotFittedError
from repro.mining.tree.splits import CategoricalSplit, NumericSplit, Split


@dataclass
class Node:
    """A tree node; internal nodes carry a split, leaves a class histogram."""

    class_counts: np.ndarray
    split: Split | None = None
    left: "Node | None" = None
    right: "Node | None" = None
    leaf_id: int = -1
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    @property
    def prediction(self) -> int:
        return int(np.argmax(self.class_counts))

    @property
    def n_tuples(self) -> int:
        return int(self.class_counts.sum())


@dataclass
class DecisionTree:
    """A fitted binary decision tree over an :class:`AttributeSpace`."""

    space: AttributeSpace
    root: Node
    leaves: list[Node] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.leaves:
            self._collect_leaves()

    def _collect_leaves(self) -> None:
        self.leaves = []

        def walk(node: Node) -> None:
            if node.is_leaf:
                node.leaf_id = len(self.leaves)
                self.leaves.append(node)
            else:
                assert node.left is not None and node.right is not None
                walk(node.left)
                walk(node.right)

        walk(self.root)

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def depth(self) -> int:
        def walk(node: Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    @property
    def n_classes(self) -> int:
        return self.space.n_classes

    # ------------------------------------------------------------------ #
    # Vectorised evaluation
    # ------------------------------------------------------------------ #

    def leaf_assign(self, columns: Mapping[str, np.ndarray], n_rows: int) -> np.ndarray:
        """Leaf id for each row, computed with masked descents."""
        if not self.leaves:
            raise NotFittedError("tree has no leaves")
        out = np.empty(n_rows, dtype=np.int64)
        stack: list[tuple[Node, np.ndarray]] = [
            (self.root, np.arange(n_rows, dtype=np.int64))
        ]
        while stack:
            node, idx = stack.pop()
            if node.is_leaf:
                out[idx] = node.leaf_id
                continue
            assert node.split is not None
            assert node.left is not None and node.right is not None
            column = columns[node.split.attribute][idx]
            left_mask = node.split.left_mask(column)
            stack.append((node.left, idx[left_mask]))
            stack.append((node.right, idx[~left_mask]))
        return out

    def assign_dataset(self, dataset) -> np.ndarray:
        """Leaf id per row of a :class:`TabularDataset`."""
        return self.leaf_assign(dataset.columns, dataset.n_rows)

    def predict(self, dataset) -> np.ndarray:
        """Majority-class prediction per row (in the space's label alphabet).

        Leaf histograms are indexed by class *position*; predictions are
        translated back to the actual labels of ``space.class_labels``.
        """
        leaf_ids = self.assign_dataset(dataset)
        labels = np.array(self.space.class_labels, dtype=np.int64)
        predictions = np.array(
            [labels[leaf.prediction] for leaf in self.leaves], dtype=np.int64
        )
        return predictions[leaf_ids]

    # ------------------------------------------------------------------ #
    # Structural component
    # ------------------------------------------------------------------ #

    def leaf_predicates(self) -> list[Conjunction]:
        """The box predicate of each leaf, indexed by leaf id.

        The boxes partition the attribute space: each split sends
        ``x < t`` left and ``x >= t`` right (numeric), or
        ``x in S`` left and ``x in domain \\ S`` right (categorical).
        """
        predicates: list[Conjunction | None] = [None] * self.n_leaves

        def attr(name: str) -> Attribute:
            return self.space.attribute(name)

        def walk(node: Node, predicate: Conjunction) -> None:
            if node.is_leaf:
                predicates[node.leaf_id] = predicate
                return
            assert node.split is not None
            assert node.left is not None and node.right is not None
            split = node.split
            if isinstance(split, NumericSplit):
                left_c = Conjunction({split.attribute: Interval(hi=split.threshold)})
                right_c = Conjunction({split.attribute: Interval(lo=split.threshold)})
            else:
                assert isinstance(split, CategoricalSplit)
                domain = frozenset(attr(split.attribute).values)
                left_c = Conjunction({split.attribute: ValueSet(split.left_values)})
                right_c = Conjunction(
                    {split.attribute: ValueSet(domain - split.left_values)}
                )
            walk(node.left, predicate.intersect(left_c))
            walk(node.right, predicate.intersect(right_c))

        walk(self.root, Conjunction())
        assert all(p is not None for p in predicates)
        return predicates  # type: ignore[return-value]

    def leaf_class_fractions(self) -> np.ndarray:
        """``(n_leaves, n_classes)`` matrix of training-tuple fractions.

        Row ``i`` holds the fraction of *all* training tuples that fall in
        leaf ``i`` with each class -- exactly the per-leaf measure pairs the
        paper draws beside each leaf in Figure 1.
        """
        total = max(self.root.n_tuples, 1)
        out = np.zeros((self.n_leaves, self.n_classes))
        for leaf in self.leaves:
            out[leaf.leaf_id] = leaf.class_counts / total
        return out

    def describe(self) -> str:
        """An indented textual rendering of the tree."""
        lines: list[str] = []

        def walk(node: Node, indent: str, tag: str) -> None:
            if node.is_leaf:
                counts = ",".join(str(int(c)) for c in node.class_counts)
                lines.append(
                    f"{indent}{tag}leaf#{node.leaf_id} -> class {node.prediction} "
                    f"[{counts}]"
                )
                return
            assert node.split is not None
            if isinstance(node.split, NumericSplit):
                cond = f"{node.split.attribute} < {node.split.threshold:g}"
            else:
                vals = ",".join(str(v) for v in sorted(node.split.left_values))
                cond = f"{node.split.attribute} in {{{vals}}}"
            lines.append(f"{indent}{tag}if {cond}:")
            assert node.left is not None and node.right is not None
            walk(node.left, indent + "  ", "then ")
            walk(node.right, indent + "  ", "else ")

        walk(self.root, "", "")
        return "\n".join(lines)
