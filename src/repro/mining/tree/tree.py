"""Decision-tree structure: nodes, prediction, and leaf partitions.

A fitted :class:`DecisionTree` exposes exactly what FOCUS needs from a
dt-model (Section 2.1):

* ``predict`` -- majority-class prediction per tuple (used by the
  misclassification-error instantiation, Section 5.2.1);
* ``leaf_assign`` -- vectorised tuple -> leaf-id mapping (the fast path
  for measuring GCR regions in one scan);
* ``leaf_predicates`` -- the conjunctive predicate of each leaf, whose
  cross product with the class labels forms the structural component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.attribute import Attribute, AttributeSpace
from repro.core.predicate import Conjunction, Interval, ValueSet
from repro.errors import NotFittedError
from repro.mining.tree.splits import CategoricalSplit, NumericSplit, Split


@dataclass
class Node:
    """A tree node; internal nodes carry a split, leaves a class histogram."""

    class_counts: np.ndarray
    split: Split | None = None
    left: "Node | None" = None
    right: "Node | None" = None
    leaf_id: int = -1
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    @property
    def prediction(self) -> int:
        return int(np.argmax(self.class_counts))

    @property
    def n_tuples(self) -> int:
        return int(self.class_counts.sum())


@dataclass
class DecisionTree:
    """A fitted binary decision tree over an :class:`AttributeSpace`."""

    space: AttributeSpace
    root: Node
    leaves: list[Node] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.leaves:
            self._collect_leaves()

    def _collect_leaves(self) -> None:
        self.leaves = []

        def walk(node: Node) -> None:
            if node.is_leaf:
                node.leaf_id = len(self.leaves)
                self.leaves.append(node)
            else:
                assert node.left is not None and node.right is not None
                walk(node.left)
                walk(node.right)

        walk(self.root)

    # ------------------------------------------------------------------ #
    # Shape accessors
    # ------------------------------------------------------------------ #

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def depth(self) -> int:
        def walk(node: Node) -> int:
            if node.is_leaf:
                return 0
            assert node.left is not None and node.right is not None
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)

    @property
    def n_classes(self) -> int:
        return self.space.n_classes

    # ------------------------------------------------------------------ #
    # Vectorised evaluation
    # ------------------------------------------------------------------ #

    def leaf_assign(self, columns: Mapping[str, np.ndarray], n_rows: int) -> np.ndarray:
        """Leaf id for each row, via the compiled level-synchronous descent.

        The tree is flattened once (:class:`_FlatTree`) into parallel
        node arrays; every row then descends one level per iteration
        with a handful of whole-column gathers -- O(depth) numpy ops
        total instead of the masked recursion's O(nodes). That floor is
        what makes streaming chunks cheap: assigning a 250-row chunk is
        no longer dominated by per-node call overhead.
        """
        if not self.leaves:
            raise NotFittedError("tree has no leaves")
        flat = self._flat()
        if flat is None:  # uncompilable (huge sparse categorical codes)
            return self.leaf_assign_masked(columns, n_rows)
        return flat.assign(columns, n_rows)

    def leaf_assign_masked(
        self, columns: Mapping[str, np.ndarray], n_rows: int
    ) -> np.ndarray:
        """Reference implementation: per-node masked descents.

        Kept as the oracle the flat descent is property-tested against.
        """
        if not self.leaves:
            raise NotFittedError("tree has no leaves")
        out = np.empty(n_rows, dtype=np.int64)
        stack: list[tuple[Node, np.ndarray]] = [
            (self.root, np.arange(n_rows, dtype=np.int64))
        ]
        while stack:
            node, idx = stack.pop()
            if node.is_leaf:
                out[idx] = node.leaf_id
                continue
            assert node.split is not None
            assert node.left is not None and node.right is not None
            column = columns[node.split.attribute][idx]
            left_mask = node.split.left_mask(column)
            stack.append((node.left, idx[left_mask]))
            stack.append((node.right, idx[~left_mask]))
        return out

    def _flat(self) -> "_FlatTree | None":
        """The compiled descent arrays, built once per tree.

        ``None`` (cached) when the tree cannot be compiled -- splits on
        categorical codes so sparse that a dense membership table would
        be enormous -- in which case the masked descent serves instead.
        """
        flat = getattr(self, "_flat_cache", None)
        if flat is None:
            try:
                flat = _FlatTree(self)
            except _UncompilableTreeError:
                flat = False
            self._flat_cache = flat
        return flat or None

    def assign_dataset(self, dataset) -> np.ndarray:
        """Leaf id per row of a :class:`TabularDataset`."""
        return self.leaf_assign(dataset.columns, dataset.n_rows)

    def predict(self, dataset) -> np.ndarray:
        """Majority-class prediction per row (in the space's label alphabet).

        Leaf histograms are indexed by class *position*; predictions are
        translated back to the actual labels of ``space.class_labels``.
        """
        leaf_ids = self.assign_dataset(dataset)
        labels = np.array(self.space.class_labels, dtype=np.int64)
        predictions = np.array(
            [labels[leaf.prediction] for leaf in self.leaves], dtype=np.int64
        )
        return predictions[leaf_ids]

    # ------------------------------------------------------------------ #
    # Structural component
    # ------------------------------------------------------------------ #

    def leaf_predicates(self) -> list[Conjunction]:
        """The box predicate of each leaf, indexed by leaf id.

        The boxes partition the attribute space: each split sends
        ``x < t`` left and ``x >= t`` right (numeric), or
        ``x in S`` left and ``x in domain \\ S`` right (categorical).
        """
        predicates: list[Conjunction | None] = [None] * self.n_leaves

        def attr(name: str) -> Attribute:
            return self.space.attribute(name)

        def walk(node: Node, predicate: Conjunction) -> None:
            if node.is_leaf:
                predicates[node.leaf_id] = predicate
                return
            assert node.split is not None
            assert node.left is not None and node.right is not None
            split = node.split
            if isinstance(split, NumericSplit):
                left_c = Conjunction({split.attribute: Interval(hi=split.threshold)})
                right_c = Conjunction({split.attribute: Interval(lo=split.threshold)})
            else:
                assert isinstance(split, CategoricalSplit)
                domain = frozenset(attr(split.attribute).values)
                left_c = Conjunction({split.attribute: ValueSet(split.left_values)})
                right_c = Conjunction(
                    {split.attribute: ValueSet(domain - split.left_values)}
                )
            walk(node.left, predicate.intersect(left_c))
            walk(node.right, predicate.intersect(right_c))

        walk(self.root, Conjunction())
        assert all(p is not None for p in predicates)
        return predicates  # type: ignore[return-value]

    def leaf_class_fractions(self) -> np.ndarray:
        """``(n_leaves, n_classes)`` matrix of training-tuple fractions.

        Row ``i`` holds the fraction of *all* training tuples that fall in
        leaf ``i`` with each class -- exactly the per-leaf measure pairs the
        paper draws beside each leaf in Figure 1.
        """
        total = max(self.root.n_tuples, 1)
        out = np.zeros((self.n_leaves, self.n_classes))
        for leaf in self.leaves:
            out[leaf.leaf_id] = leaf.class_counts / total
        return out

    def describe(self) -> str:
        """An indented textual rendering of the tree."""
        lines: list[str] = []

        def walk(node: Node, indent: str, tag: str) -> None:
            if node.is_leaf:
                counts = ",".join(str(int(c)) for c in node.class_counts)
                lines.append(
                    f"{indent}{tag}leaf#{node.leaf_id} -> class {node.prediction} "
                    f"[{counts}]"
                )
                return
            assert node.split is not None
            if isinstance(node.split, NumericSplit):
                cond = f"{node.split.attribute} < {node.split.threshold:g}"
            else:
                vals = ",".join(str(v) for v in sorted(node.split.left_values))
                cond = f"{node.split.attribute} in {{{vals}}}"
            lines.append(f"{indent}{tag}if {cond}:")
            assert node.left is not None and node.right is not None
            walk(node.left, indent + "  ", "then ")
            walk(node.right, indent + "  ", "else ")

        walk(self.root, "", "")
        return "\n".join(lines)


#: Largest bin-grid a tree is compiled onto; beyond it the descent path
#: is used. 2^17 int32 cells is half a megabyte of lookup table.
_GRID_CELL_CAP = 1 << 17

#: Widest categorical code *range* (max - min) a dense membership table
#: covers. Categorical domains are arbitrary integer codes, so a split
#: on e.g. {0, 10**9} would otherwise allocate gigabytes; such trees
#: fall back to the masked descent (np.isin handles them fine).
_CAT_RANGE_CAP = 1 << 16


class _UncompilableTreeError(Exception):
    """Raised during compilation when dense tables would be unreasonable."""


class _FlatTree:
    """A tree compiled for vectorised assignment, two ways.

    **Level-synchronous descent** (always built): nodes are numbered in
    preorder; leaves self-loop (``children == self`` with a ``+inf``
    threshold, so a settled row keeps re-selecting its own node). One
    descent level is a fixed handful of whole-column ops -- gather the
    split column per row, compare, pick a child -- regardless of how
    many nodes that level has, and ``depth`` iterations settle every
    row. Categorical splits are answered from a dense ``(node, code)``
    membership table covering the observed code range; codes outside the
    range fall right, matching ``np.isin``.

    **Grid-code lookup** (built when the split structure is small
    enough): every split threshold of an attribute becomes a bin
    boundary, so each leaf is a union of grid cells. Assignment is then
    one ``searchsorted`` per used attribute, one ``ravel_multi_index``,
    and one table ``take`` -- O(used attributes) numpy calls however
    deep the tree is, which is what keeps small streaming chunks cheap.
    The cell -> leaf table is filled exactly, by running the descent
    once over one representative tuple per cell (splits are constant
    within a cell, so the representative's leaf is the cell's leaf).
    """

    def __init__(self, tree: DecisionTree) -> None:
        nodes: list[Node] = []

        def collect(node: Node) -> None:
            nodes.append(node)
            if not node.is_leaf:
                collect(node.left)
                collect(node.right)

        collect(tree.root)
        index = {id(node): i for i, node in enumerate(nodes)}
        n = len(nodes)

        used: list[str] = []
        used_pos: dict[str, int] = {}
        for node in nodes:
            if node.split is not None and node.split.attribute not in used_pos:
                used_pos[node.split.attribute] = len(used)
                used.append(node.split.attribute)
        self.used_names = tuple(used)

        self.depth = tree.depth
        self.feature = np.zeros(n, dtype=np.int64)
        self.threshold = np.full(n, np.inf)
        #: children[i] = (right, left): indexing with the go-left bool
        #: picks the child in one fused gather (leaves self-loop).
        self.children = np.repeat(
            np.arange(n, dtype=np.int64)[:, None], 2, axis=1
        )
        self.leaf_of = np.zeros(n, dtype=np.int64)

        cat_codes: dict[int, frozenset[int]] = {}
        for i, node in enumerate(nodes):
            if node.is_leaf:
                self.leaf_of[i] = node.leaf_id
                continue
            split = node.split
            self.feature[i] = used_pos[split.attribute]
            self.children[i, 0] = index[id(node.right)]
            self.children[i, 1] = index[id(node.left)]
            if isinstance(split, NumericSplit):
                self.threshold[i] = split.threshold
            else:
                self.threshold[i] = -np.inf  # numeric test says "right"
                cat_codes[i] = frozenset(int(v) for v in split.left_values)

        self.has_categorical = bool(cat_codes)
        if self.has_categorical:
            all_codes = [c for codes in cat_codes.values() for c in codes]
            self.cat_lo = min(all_codes)
            width = max(all_codes) - self.cat_lo + 1
            if width > _CAT_RANGE_CAP:
                raise _UncompilableTreeError(
                    f"categorical code range {width} exceeds the dense-"
                    f"table cap {_CAT_RANGE_CAP}"
                )
            # Width + 1: the last column is an always-False sentinel that
            # out-of-range codes are mapped to once per assign, so the
            # per-level step needs no range check. Rows of non-categorical
            # nodes are all-False too, so no is_cat mask is needed either:
            # a numeric node's membership lookup just returns False.
            self.cat_left = np.zeros((n, width + 1), dtype=bool)
            for i, codes in cat_codes.items():
                for c in codes:
                    self.cat_left[i, c - self.cat_lo] = True

        self._compile_grid(nodes)

    def _compile_grid(self, nodes: list[Node]) -> None:
        """Compile the partition onto a bin grid, if small enough.

        Numeric attributes cut at their split thresholds; categorical
        attributes cut at the half-integers around their observed codes
        (plus open out-of-range bins on both sides, which route right
        exactly like ``np.isin``). Every cell of the resulting grid lies
        on one side of every split, so the cell -> leaf map built from
        representative tuples reproduces the descent exactly.
        """
        self.grid_cuts: list[np.ndarray] | None = None
        cuts_of: dict[str, np.ndarray] = {}
        reps_of: dict[str, np.ndarray] = {}
        for name in self.used_names:
            numeric_ts = [
                node.split.threshold
                for node in nodes
                if isinstance(node.split, NumericSplit)
                and node.split.attribute == name
            ]
            cat_values = [
                v
                for node in nodes
                if isinstance(node.split, CategoricalSplit)
                and node.split.attribute == name
                for v in node.split.left_values
            ]
            if cat_values:
                # Half-integer cuts give one bin per whole code in
                # [lo, hi] plus open out-of-range bins on both ends;
                # representatives must be whole codes (the membership
                # table truncates), out-of-range ones route right.
                lo, hi = min(cat_values), max(cat_values)
                cuts = np.arange(lo, hi + 2, dtype=np.float64) - 0.5
                reps = np.arange(lo - 1, hi + 2, dtype=np.float64)
            else:
                cuts = np.unique(np.asarray(numeric_ts, dtype=np.float64))
                # Bin b >= 1 starts at cuts[b-1] (inclusive under
                # side="right"); bin 0's representative sits below.
                reps = np.concatenate([[cuts[0] - 1.0], cuts])
            cuts_of[name] = cuts
            reps_of[name] = reps
        dims = tuple(len(cuts_of[name]) + 1 for name in self.used_names)
        n_cells = 1
        for d in dims:  # Python ints: no silent int64 overflow
            n_cells *= d
        if not dims or n_cells > _GRID_CELL_CAP:
            return
        mesh = np.meshgrid(*[reps_of[n] for n in self.used_names], indexing="ij")
        cells = np.column_stack([m.ravel() for m in mesh])
        self.grid_leaf = self._descend(cells).astype(np.int32)
        self.grid_cuts = [cuts_of[name] for name in self.used_names]
        self.grid_dims = dims

    def assign(self, columns: Mapping[str, np.ndarray], n_rows: int) -> np.ndarray:
        """Leaf id per row: grid-code lookup, or level descent beyond the cap."""
        if not self.used_names:  # single-leaf tree
            return np.full(n_rows, self.leaf_of[0], dtype=np.int64)
        if self.grid_cuts is not None:
            codes = [
                np.searchsorted(cuts, columns[name], side="right")
                for name, cuts in zip(self.used_names, self.grid_cuts)
            ]
            flat = np.ravel_multi_index(codes, self.grid_dims)
            return self.grid_leaf[flat].astype(np.int64, copy=False)
        X = np.column_stack([columns[name] for name in self.used_names])
        return self._descend(X)

    def assign_matrix(self, X_used: np.ndarray) -> np.ndarray:
        """Leaf id per row of an already-compacted ``(n, used)`` matrix."""
        if not self.used_names:
            return np.full(X_used.shape[0], self.leaf_of[0], dtype=np.int64)
        return self._descend(X_used)

    def _descend(self, X: np.ndarray) -> np.ndarray:
        rows = np.arange(X.shape[0])
        node = np.zeros(X.shape[0], dtype=np.int64)
        if not self.has_categorical:
            for _ in range(self.depth):
                values = X[rows, self.feature[node]]
                go_left = values < self.threshold[node]
                node = self.children[node, go_left.view(np.int8)]
            return self.leaf_of[node]
        # Categorical codes are normalised once: shifted to table
        # positions, with anything outside the table (including numeric
        # columns' values) clamped onto the False sentinel column.
        sentinel = self.cat_left.shape[1] - 1
        with np.errstate(invalid="ignore"):
            C = np.nan_to_num(X, nan=-1.0).astype(np.int64) - self.cat_lo
        C[(C < 0) | (C > sentinel)] = sentinel
        for _ in range(self.depth):
            feat = self.feature[node]
            values = X[rows, feat]
            go_left = values < self.threshold[node]
            go_left |= self.cat_left[node, C[rows, feat]]
            node = self.children[node, go_left.view(np.int8)]
        return self.leaf_of[node]
