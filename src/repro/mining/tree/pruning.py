"""Cost-complexity (weakest-link) pruning, per CART (Breiman et al., ch. 3).

The paper's dt-models come from "a scalable version of the widely
studied CART algorithm"; CART's full recipe prunes the grown tree by
minimising ``R_alpha(T) = R(T) + alpha * |leaves(T)|`` where ``R`` is
the training misclassification count. Increasing ``alpha`` collapses
internal nodes in weakest-link order, producing the nested subtree
sequence ``T_0 > T_1 > ... > {root}``; a validation set (or a fixed
``alpha``) selects the final tree.

Pruned trees remain ordinary :class:`DecisionTree` objects, so every
FOCUS computation (deviation, focussing, monitoring) works on them
unchanged -- pruning is an ablation knob for how fine the dt-model's
structural component is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tabular import TabularDataset
from repro.errors import InvalidParameterError
from repro.mining.tree.tree import DecisionTree, Node


def _copy_subtree(node: Node) -> Node:
    """A deep copy of a subtree (Node is mutable; trees share nothing)."""
    clone = Node(
        class_counts=node.class_counts.copy(),
        split=node.split,
        depth=node.depth,
    )
    if not node.is_leaf:
        assert node.left is not None and node.right is not None
        clone.left = _copy_subtree(node.left)
        clone.right = _copy_subtree(node.right)
    return clone


def _misclassified(node: Node) -> int:
    """Training tuples at this node not of its majority class."""
    return int(node.class_counts.sum() - node.class_counts.max())


def _subtree_stats(node: Node) -> tuple[int, int]:
    """(leaf count, summed leaf misclassification count) of a subtree."""
    if node.is_leaf:
        return 1, _misclassified(node)
    assert node.left is not None and node.right is not None
    l_leaves, l_err = _subtree_stats(node.left)
    r_leaves, r_err = _subtree_stats(node.right)
    return l_leaves + r_leaves, l_err + r_err


def _weakest_link(node: Node) -> tuple[float, Node] | None:
    """The internal node with the smallest g(t) = (R(t) - R(T_t)) / (|T_t|-1)."""
    if node.is_leaf:
        return None
    best: tuple[float, Node] | None = None
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            continue
        leaves, subtree_err = _subtree_stats(current)
        g = (_misclassified(current) - subtree_err) / max(leaves - 1, 1)
        if best is None or g < best[0]:
            best = (g, current)
        assert current.left is not None and current.right is not None
        stack.extend((current.left, current.right))
    return best


def _collapse(node: Node) -> None:
    node.split = None
    node.left = None
    node.right = None


@dataclass(frozen=True)
class PruningStep:
    """One tree of the cost-complexity sequence."""

    alpha: float
    n_leaves: int
    training_error: float
    tree: DecisionTree


def cost_complexity_path(tree: DecisionTree) -> list[PruningStep]:
    """The nested subtree sequence from the full tree down to the root.

    Step 0 is the unpruned tree at ``alpha = 0``; each later step records
    the critical ``alpha`` at which its tree becomes optimal.
    """
    n_total = max(tree.root.n_tuples, 1)
    current = _copy_subtree(tree.root)
    steps: list[PruningStep] = []

    def snapshot(alpha: float) -> None:
        frozen = DecisionTree(space=tree.space, root=_copy_subtree(current))
        _, err = _subtree_stats(current)
        steps.append(
            PruningStep(
                alpha=alpha,
                n_leaves=frozen.n_leaves,
                training_error=err / n_total,
                tree=frozen,
            )
        )

    snapshot(0.0)
    while not current.is_leaf:
        link = _weakest_link(current)
        assert link is not None
        g, node = link
        _collapse(node)
        snapshot(max(g, 0.0))
    return steps


def prune_tree(tree: DecisionTree, alpha: float) -> DecisionTree:
    """The cost-complexity optimal subtree for a fixed ``alpha >= 0``.

    Collapses every weakest link whose ``g(t) <= alpha``, which yields
    the minimiser of ``R(T) + alpha |leaves|`` over the nested sequence.
    """
    if alpha < 0:
        raise InvalidParameterError("alpha must be non-negative")
    root = _copy_subtree(tree.root)
    while not root.is_leaf:
        link = _weakest_link(root)
        assert link is not None
        g, node = link
        if g > alpha:
            break
        _collapse(node)
    return DecisionTree(space=tree.space, root=root)


def prune_by_validation(
    tree: DecisionTree, validation: TabularDataset
) -> DecisionTree:
    """The subtree of the cost-complexity sequence with least validation error.

    Ties prefer the smaller tree (fewer leaves), per the usual CART
    practice.
    """
    if validation.y is None:
        raise InvalidParameterError("validation pruning needs labelled data")
    best_tree = tree
    best_key: tuple[float, int] | None = None
    for step in cost_complexity_path(tree):
        predictions = step.tree.predict(validation)
        error = float(np.mean(predictions != validation.y))
        key = (error, step.n_leaves)
        if best_key is None or key < best_key:
            best_key = key
            best_tree = step.tree
    return best_tree
