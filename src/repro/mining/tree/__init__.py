"""CART-style decision trees (the paper's RainForest/CART substrate)."""

from repro.mining.tree.builder import TreeParams, build_tree
from repro.mining.tree.splits import (
    CategoricalSplit,
    NumericSplit,
    best_categorical_split,
    best_numeric_split,
    best_split,
    entropy,
    gini,
)
from repro.mining.tree.tree import DecisionTree, Node

__all__ = [
    "CategoricalSplit",
    "DecisionTree",
    "Node",
    "NumericSplit",
    "TreeParams",
    "best_categorical_split",
    "best_numeric_split",
    "best_split",
    "build_tree",
    "entropy",
    "gini",
]
