"""Split search for the CART-style decision-tree builder.

Numeric attributes are searched exactly: the column is sorted once, class
counts are prefix-summed, and the impurity of every boundary between
distinct values is evaluated vectorised (the classic CART sweep, here
over RainForest-style sufficient statistics rather than the raw rows).

Categorical attributes use CART's ordering device for two-class problems
(order categories by the class-0 proportion; the optimal gini subset
split is then a prefix split). With more than two classes, one-vs-rest
value splits are searched instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attribute import Attribute


def gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.dot(p, p))


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-(p * np.log2(p)).sum())


IMPURITIES = {"gini": gini, "entropy": entropy}


@dataclass(frozen=True)
class NumericSplit:
    """``x < threshold`` goes left, ``x >= threshold`` goes right."""

    attribute: str
    threshold: float
    gain: float

    def left_mask(self, column: np.ndarray) -> np.ndarray:
        return column < self.threshold


@dataclass(frozen=True)
class CategoricalSplit:
    """``x in left_values`` goes left, everything else right."""

    attribute: str
    left_values: frozenset[int]
    gain: float

    def left_mask(self, column: np.ndarray) -> np.ndarray:
        return np.isin(column, np.array(sorted(self.left_values), dtype=np.float64))


Split = NumericSplit | CategoricalSplit


def _weighted_impurity_curve(
    prefix: np.ndarray, totals: np.ndarray, impurity: str
) -> np.ndarray:
    """Weighted child impurity for every prefix split position.

    ``prefix[i]`` holds the class counts of the first ``i+1`` groups; the
    last row equals ``totals``. Only positions ``0..len-2`` are valid
    split points. Vectorised for gini; entropy falls back to a loop.
    """
    left = prefix[:-1].astype(np.float64)
    right = totals[None, :].astype(np.float64) - left
    n = totals.sum()
    nl = left.sum(axis=1)
    nr = right.sum(axis=1)
    if impurity == "gini":
        with np.errstate(invalid="ignore", divide="ignore"):
            gl = 1.0 - (left**2).sum(axis=1) / np.maximum(nl, 1) ** 2
            gr = 1.0 - (right**2).sum(axis=1) / np.maximum(nr, 1) ** 2
        gl = np.where(nl > 0, gl, 0.0)
        gr = np.where(nr > 0, gr, 0.0)
        return (nl * gl + nr * gr) / n
    values = np.empty(left.shape[0])
    for i in range(left.shape[0]):
        values[i] = (
            nl[i] * entropy(left[i]) + nr[i] * entropy(right[i])
        ) / n
    return values


def best_numeric_split(
    attribute: str,
    column: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    min_leaf: int,
    impurity: str = "gini",
) -> NumericSplit | None:
    """Exact best threshold split of a numeric column, or ``None``."""
    order = np.argsort(column, kind="stable")
    sorted_col = column[order]
    sorted_y = y[order]
    # Group equal values together; splits are only legal between groups.
    boundaries = np.flatnonzero(np.diff(sorted_col) > 0)
    if boundaries.size == 0:
        return None
    one_hot = np.zeros((len(y), n_classes), dtype=np.int64)
    one_hot[np.arange(len(y)), sorted_y] = 1
    cum = one_hot.cumsum(axis=0)
    totals = cum[-1]
    parent = IMPURITIES[impurity](totals)

    prefix = cum[boundaries]  # class counts of the left side at each boundary
    left_sizes = prefix.sum(axis=1)
    right_sizes = len(y) - left_sizes
    child = _weighted_impurity_curve(
        np.vstack([prefix, totals]), totals, impurity
    )
    gains = parent - child
    legal = (left_sizes >= min_leaf) & (right_sizes >= min_leaf)
    gains = np.where(legal, gains, -np.inf)
    best = int(np.argmax(gains))
    if not np.isfinite(gains[best]) or gains[best] <= 0:
        return None
    b = boundaries[best]
    threshold = float((sorted_col[b] + sorted_col[b + 1]) / 2.0)
    return NumericSplit(attribute, threshold, float(gains[best]))


def best_categorical_split(
    attribute: Attribute,
    column: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    min_leaf: int,
    impurity: str = "gini",
) -> CategoricalSplit | None:
    """Best value-subset split of a categorical column, or ``None``."""
    codes = column.astype(np.int64)
    values = np.array(sorted(set(codes.tolist())), dtype=np.int64)
    if values.size < 2:
        return None
    # Class counts per present value.
    counts = np.zeros((values.size, n_classes), dtype=np.int64)
    value_pos = {int(v): i for i, v in enumerate(values)}
    np.add.at(counts, ([value_pos[int(c)] for c in codes], y), 1)
    totals = counts.sum(axis=0)
    parent = IMPURITIES[impurity](totals)

    if n_classes == 2:
        # CART device: order by P(class 0 | value); prefix splits suffice.
        with np.errstate(invalid="ignore", divide="ignore"):
            p0 = counts[:, 0] / np.maximum(counts.sum(axis=1), 1)
        order = np.argsort(p0, kind="stable")
        ordered_counts = counts[order]
        ordered_values = values[order]
        prefix = ordered_counts.cumsum(axis=0)
        child = _weighted_impurity_curve(prefix, totals, impurity)
        left_sizes = prefix[:-1].sum(axis=1)
        right_sizes = len(y) - left_sizes
        gains = parent - child
        legal = (left_sizes >= min_leaf) & (right_sizes >= min_leaf)
        gains = np.where(legal, gains, -np.inf)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]) or gains[best] <= 0:
            return None
        left_values = frozenset(int(v) for v in ordered_values[: best + 1])
        return CategoricalSplit(attribute.name, left_values, float(gains[best]))

    # Multi-class: one value versus the rest.
    best_split: CategoricalSplit | None = None
    for i, v in enumerate(values):
        left = counts[i]
        right = totals - left
        nl, nr = left.sum(), right.sum()
        if nl < min_leaf or nr < min_leaf:
            continue
        child = (
            nl * IMPURITIES[impurity](left) + nr * IMPURITIES[impurity](right)
        ) / len(y)
        gain = parent - child
        if gain > 0 and (best_split is None or gain > best_split.gain):
            best_split = CategoricalSplit(
                attribute.name, frozenset((int(v),)), float(gain)
            )
    return best_split


def best_split(
    attributes: tuple[Attribute, ...],
    columns: dict[str, np.ndarray],
    y: np.ndarray,
    n_classes: int,
    min_leaf: int,
    impurity: str = "gini",
) -> Split | None:
    """The highest-gain split across all attributes, or ``None``."""
    best: Split | None = None
    for attribute in attributes:
        column = columns[attribute.name]
        if attribute.is_numeric:
            split = best_numeric_split(
                attribute.name, column, y, n_classes, min_leaf, impurity
            )
        else:
            split = best_categorical_split(
                attribute, column, y, n_classes, min_leaf, impurity
            )
        if split is not None and (best is None or split.gain > best.gain):
            best = split
    return best
