"""Grid-based clustering whose output is a box partition.

Section 2.4 of the paper observes that cluster-models are "a special case
of dt-models": a set of non-overlapping regions with measures. This
clusterer makes that literal. A projection of the attribute space is cut
into a uniform grid; cells above a density threshold are *dense*, and
clusters are the connected components of dense cells (CLIQUE-style).
Every cell -- dense or not -- is a box region, so the cell set is an
exhaustive partition and two cluster-models over (possibly different)
grids always have a greatest common refinement: the overlay of the grids.

Edge cells extend to infinity so the partition covers the entire
attribute space, not just the declared domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.attribute import AttributeSpace
from repro.core.partition_plan import LabelEncoder
from repro.core.predicate import Conjunction, Interval, ValueSet
from repro.data.tabular import TabularDataset
from repro.errors import InvalidParameterError, SchemaError


@dataclass(frozen=True)
class Grid:
    """A uniform grid over selected attributes of a space.

    ``attributes`` lists the gridded attribute names in axis order;
    ``cuts[name]`` holds the interior cut points for numeric attributes
    (an attribute with ``b`` bins has ``b - 1`` cuts). Categorical
    attributes get one cell per domain value. Attributes outside
    ``attributes`` are unconstrained.
    """

    space: AttributeSpace
    attributes: tuple[str, ...]
    cuts: dict[str, np.ndarray]

    @staticmethod
    def uniform(
        space: AttributeSpace,
        bins: int,
        attributes: tuple[str, ...] | None = None,
    ) -> "Grid":
        """Equal-width bins per selected numeric attribute."""
        if bins < 1:
            raise InvalidParameterError("bins must be >= 1")
        names = attributes if attributes is not None else space.names
        cuts: dict[str, np.ndarray] = {}
        for name in names:
            attribute = space.attribute(name)
            if attribute.is_numeric:
                if not (
                    math.isfinite(attribute.low) and math.isfinite(attribute.high)
                ):
                    raise InvalidParameterError(
                        f"gridded numeric attribute {name!r} needs a finite domain"
                    )
                cuts[name] = np.linspace(attribute.low, attribute.high, bins + 1)[
                    1:-1
                ]
        return Grid(space, tuple(names), cuts)

    def bins_for(self, name: str) -> int:
        attribute = self.space.attribute(name)
        if attribute.is_categorical:
            return len(attribute.values)
        return len(self.cuts[name]) + 1

    def shape(self) -> tuple[int, ...]:
        return tuple(self.bins_for(name) for name in self.attributes)

    @cached_property
    def _categorical_encoders(self) -> dict[str, LabelEncoder]:
        """Per-attribute vectorised code tables, compiled once per grid."""
        return {
            name: LabelEncoder(self.space.attribute(name).values)
            for name in self.attributes
            if self.space.attribute(name).is_categorical
        }

    def assign(self, dataset: TabularDataset) -> np.ndarray:
        """Flat cell index per row (row-major over :meth:`shape`).

        Fully vectorised: numeric attributes bin with one
        ``searchsorted`` against the cut points, categorical attributes
        encode with one ``searchsorted`` against the sorted domain. A
        category code outside the attribute's declared domain raises
        :class:`~repro.errors.SchemaError` naming the value.
        """
        shape = self.shape()
        multi: list[np.ndarray] = []
        for name in self.attributes:
            attribute = self.space.attribute(name)
            column = dataset.column(name)
            if attribute.is_categorical:
                codes, bad = self._categorical_encoders[name].encode(column)
                if bad.any():
                    offending = int(column[np.argmax(bad)])
                    raise SchemaError(
                        f"value {offending} of categorical attribute "
                        f"{name!r} is outside its domain {attribute.values}"
                    )
            else:
                codes = np.searchsorted(
                    self.cuts[name], column, side="right"
                ).astype(np.int64)
            multi.append(codes)
        if not multi:
            return np.zeros(dataset.n_rows, dtype=np.int64)
        return np.ravel_multi_index(tuple(multi), shape).astype(np.int64)

    def cell_predicate(self, flat_index: int) -> Conjunction:
        """The box predicate of a cell; edge cells are unbounded."""
        shape = self.shape()
        coords = np.unravel_index(flat_index, shape)
        constraints = {}
        for name, coord in zip(self.attributes, coords):
            attribute = self.space.attribute(name)
            if attribute.is_categorical:
                constraints[name] = ValueSet((attribute.values[coord],))
            else:
                cuts = self.cuts[name]
                lo = -math.inf if coord == 0 else float(cuts[coord - 1])
                hi = math.inf if coord == len(cuts) else float(cuts[coord])
                constraints[name] = Interval(lo, hi)
        return Conjunction(constraints)


@dataclass(frozen=True)
class GridClustering:
    """A fitted grid clustering: densities per cell, dense flags, clusters."""

    grid: Grid
    densities: np.ndarray
    dense_cells: np.ndarray  # flat indices of dense cells, sorted
    cluster_of_cell: dict[int, int]  # dense cell -> cluster id
    n_clusters: int

    def cluster_sizes(self) -> np.ndarray:
        """Total density per cluster (fractions of the inducing dataset)."""
        sizes = np.zeros(self.n_clusters)
        for cell, cluster in self.cluster_of_cell.items():
            sizes[cluster] += self.densities[cell]
        return sizes

    def cluster_regions(self, cluster_id: int) -> list[Conjunction]:
        """The cell predicates making up one cluster."""
        return [
            self.grid.cell_predicate(cell)
            for cell, cid in sorted(self.cluster_of_cell.items())
            if cid == cluster_id
        ]


def _neighbours(flat: int, shape: tuple[int, ...]) -> list[int]:
    coords = list(np.unravel_index(flat, shape))
    out: list[int] = []
    for dim, extent in enumerate(shape):
        for step in (-1, 1):
            c = coords[dim] + step
            if 0 <= c < extent:
                coords[dim] = c
                out.append(int(np.ravel_multi_index(tuple(coords), shape)))
                coords[dim] = coords[dim] - step
    return out


def grid_cluster(
    dataset: TabularDataset,
    bins: int = 8,
    density_threshold: float | None = None,
    attributes: tuple[str, ...] | None = None,
) -> GridClustering:
    """Cluster a dataset on a uniform grid.

    Parameters
    ----------
    dataset:
        The tabular dataset to cluster.
    bins:
        Bins per gridded numeric attribute.
    density_threshold:
        Minimum *fraction* of tuples for a cell to be dense; defaults to
        twice the uniform density ``1/#cells``.
    attributes:
        Optional projection -- the subset of attributes to grid.
    """
    grid = Grid.uniform(dataset.space, bins, attributes)
    shape = grid.shape()
    n_cells = int(np.prod(shape)) if shape else 1
    assignments = grid.assign(dataset)
    counts = np.bincount(assignments, minlength=n_cells)
    densities = counts / max(len(dataset), 1)
    if density_threshold is None:
        density_threshold = 2.0 / n_cells
    dense = np.flatnonzero(densities >= density_threshold)
    dense_set = set(int(c) for c in dense)

    cluster_of_cell: dict[int, int] = {}
    n_clusters = 0
    for start in dense:
        start = int(start)
        if start in cluster_of_cell:
            continue
        frontier = [start]
        cluster_of_cell[start] = n_clusters
        while frontier:
            cell = frontier.pop()
            for nb in _neighbours(cell, shape):
                if nb in dense_set and nb not in cluster_of_cell:
                    cluster_of_cell[nb] = n_clusters
                    frontier.append(nb)
        n_clusters += 1

    return GridClustering(
        grid=grid,
        densities=densities,
        dense_cells=dense,
        cluster_of_cell=cluster_of_cell,
        n_clusters=n_clusters,
    )
