"""Lloyd's k-means over the numeric attributes of a tabular dataset.

Used by the cluster-model examples: the fitted centroids are rasterised
onto a grid (each cell labelled by its nearest centroid), which turns a
k-means clustering into the box-partition form that FOCUS cluster-models
require (Section 2.4 treats cluster-models as a special case of
dt-models).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.tabular import TabularDataset
from repro.errors import InvalidParameterError, NotFittedError


@dataclass
class KMeans:
    """Standard Lloyd iterations with k-means++ style seeding."""

    n_clusters: int
    max_iter: int = 100
    tol: float = 1e-6
    centroids: np.ndarray | None = None

    def _numeric_matrix(self, dataset: TabularDataset) -> np.ndarray:
        numeric_idx = [
            i for i, a in enumerate(dataset.space.attributes) if a.is_numeric
        ]
        if not numeric_idx:
            raise InvalidParameterError("k-means needs at least one numeric attribute")
        return dataset.X[:, numeric_idx]

    def fit(self, dataset: TabularDataset, rng: np.random.Generator) -> "KMeans":
        """Fit centroids; returns ``self`` for chaining."""
        X = self._numeric_matrix(dataset)
        n = X.shape[0]
        if self.n_clusters < 1 or self.n_clusters > n:
            raise InvalidParameterError(
                f"n_clusters must be in [1, {n}], got {self.n_clusters}"
            )
        # k-means++ seeding: first uniform, rest proportional to D^2.
        centroids = [X[int(rng.integers(0, n))]]
        while len(centroids) < self.n_clusters:
            d2 = np.min(
                ((X[:, None, :] - np.array(centroids)[None, :, :]) ** 2).sum(-1),
                axis=1,
            )
            total = d2.sum()
            if total <= 0:
                centroids.append(X[int(rng.integers(0, n))])
                continue
            centroids.append(X[int(rng.choice(n, p=d2 / total))])
        C = np.array(centroids)

        for _ in range(self.max_iter):
            assign = np.argmin(
                ((X[:, None, :] - C[None, :, :]) ** 2).sum(-1), axis=1
            )
            new_C = C.copy()
            for k in range(self.n_clusters):
                members = X[assign == k]
                if len(members):
                    new_C[k] = members.mean(axis=0)
            shift = float(np.abs(new_C - C).max())
            C = new_C
            if shift < self.tol:
                break
        self.centroids = C
        return self

    def predict(self, dataset: TabularDataset) -> np.ndarray:
        """Nearest-centroid assignment per row."""
        if self.centroids is None:
            raise NotFittedError("call fit() before predict()")
        X = self._numeric_matrix(dataset)
        return np.argmin(
            ((X[:, None, :] - self.centroids[None, :, :]) ** 2).sum(-1), axis=1
        ).astype(np.int64)

    def inertia(self, dataset: TabularDataset) -> float:
        """Total within-cluster squared distance (quality diagnostic)."""
        if self.centroids is None:
            raise NotFittedError("call fit() before inertia()")
        X = self._numeric_matrix(dataset)
        d2 = ((X[:, None, :] - self.centroids[None, :, :]) ** 2).sum(-1)
        return float(d2.min(axis=1).sum())
