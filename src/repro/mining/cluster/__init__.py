"""Clustering substrates: grid-density clustering and k-means."""

from repro.mining.cluster.grid import Grid, GridClustering, grid_cluster
from repro.mining.cluster.kmeans import KMeans

__all__ = ["Grid", "GridClustering", "KMeans", "grid_cluster"]
