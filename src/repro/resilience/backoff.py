"""Deterministic seeded exponential backoff for supervised retries.

Retry jitter is randomness like any other randomness in this engine: it
must be seeded, or two runs of the same failing fan schedule different
retry patterns and the chaos suite's bit-identity contract dissolves
into timing noise. The jitter here is *counterfactually* deterministic:
the delay for ``(shard, attempt)`` is a pure function of the fan's
jitter seed and those two integers, independent of the order in which
other shards happen to fail. RL001 (no unseeded randomness) and RL010
(retry sleeps route through :func:`sleep_backoff`) both point at this
module.
"""

from __future__ import annotations

import time

import numpy as np


def backoff_delay(
    shard: int,
    attempt: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    jitter_seed: int = 0,
) -> float:
    """Seconds to wait before retry number ``attempt`` of ``shard``.

    Exponential in the attempt (``base * 2**(attempt-1)``, capped at
    ``cap``), scaled by a deterministic jitter factor in ``[0.5, 1.0)``
    drawn from a generator seeded with ``(jitter_seed, shard,
    attempt)`` -- no process-global state, no wall-clock entropy.
    """
    if attempt < 1:
        return 0.0
    raw = min(cap, base * float(2 ** (attempt - 1)))
    jitter = np.random.default_rng((jitter_seed, shard, attempt)).random()
    return raw * (0.5 + 0.5 * jitter)


def sleep_backoff(delay: float) -> None:
    """The single blessed retry sleep (RL010 routes every retry here)."""
    if delay > 0.0:
        time.sleep(delay)
