"""Deterministic fault injection for the resilience layer.

A chaos harness is only useful if it is *reproducible*: a flaky
injected failure is indistinguishable from a flaky fix. Everything here
is seeded and addressed by ``(shard, attempt)``, so a failing chaos run
replays exactly:

* :class:`Fault` -- one injected misbehaviour: a worker death
  (``"die"``), an exception (``"raise"``), or a stall (``"stall"``);
* :class:`FaultPlan` -- a mapping ``(shard, attempt) -> Fault``, either
  written out explicitly or drawn deterministically via
  :meth:`FaultPlan.seeded`;
* :class:`FaultyCall` -- the picklable worker wrapper the supervisor
  applies when a plan is armed, so faults fire *inside* the worker on
  every backend, including the process pool;
* :func:`corrupt_checkpoint` -- deterministic on-disk corruption
  (byte flip or truncation) for the checkpoint crash suite.

The contract the chaos suite pins: under any plan, a fan that completes
is bit-identical to the fault-free run, and a fan that cannot complete
fails with a typed error naming the quarantined shards.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from repro.errors import CheckpointError, InvalidParameterError

_KINDS = ("die", "raise", "stall")

#: Exit status used for injected worker deaths; distinctive in waitpid
#: output when debugging a chaos run.
DEATH_EXIT_CODE = 23


class InjectedFault(RuntimeError):
    """The exception raised by ``"raise"`` faults (and in-process deaths).

    Deliberately *not* a :class:`repro.errors.FocusError`: it stands in
    for an arbitrary worker bug, and the chaos suite checks that the
    supervisor converts arbitrary failures into typed repro errors.
    """


@dataclass(frozen=True)
class Fault:
    """One injected misbehaviour for a specific ``(shard, attempt)``.

    ``seconds`` only matters for ``"stall"`` faults: the worker sleeps
    that long *before* doing its real work, so a stalled shard that is
    never timed out still produces the correct result, just late.
    ``backend`` scopes the fault to one rung of the degradation ladder
    (``None`` fires everywhere) -- a ``backend="process"`` fault models
    an environment where only the process pool is broken, so a degraded
    fan completes on the rungs below.
    """

    kind: str
    seconds: float = 0.25
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )

    def fire(self, shard: int, attempt: int) -> None:
        """Misbehave. Called inside the worker before the real work."""
        if self.kind == "die":
            if multiprocessing.parent_process() is not None:
                # A real worker-process death: the pool sees a vanished
                # worker and breaks, exactly like an OOM kill or segfault.
                os._exit(DEATH_EXIT_CODE)
            # In-process backends cannot lose a worker without losing the
            # interpreter; a death degrades to an injected exception.
            raise InjectedFault(
                f"injected worker death (in-process): shard {shard} "
                f"attempt {attempt}"
            )
        if self.kind == "raise":
            raise InjectedFault(
                f"injected exception: shard {shard} attempt {attempt}"
            )
        # "stall": sleep, then let the real work proceed.
        time.sleep(self.seconds)  # reprolint: disable=RL010(injected stall fault; deliberately not a retry backoff)


@dataclass(frozen=True)
class FaultyCall:
    """Picklable worker wrapper: fire the fault, then run the real worker."""

    fn: Callable[[Any], Any]
    fault: Fault
    shard: int
    attempt: int

    def __call__(self, item: Any) -> Any:
        self.fault.fire(self.shard, self.attempt)
        return self.fn(item)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults, keyed by ``(shard, attempt)``.

    Attempts are 1-based: ``{(2, 1): Fault("die")}`` kills shard 2's
    first attempt and lets its retry succeed. The plan is exhausted by
    construction -- nothing in it depends on wall-clock or execution
    order, so the same plan against the same fan replays bit-identically.
    """

    faults: Mapping[tuple[int, int], Fault] = field(default_factory=dict)

    @classmethod
    def seeded(
        cls,
        n_shards: int,
        *,
        seed: int,
        rate: float = 0.3,
        kinds: tuple[str, ...] = ("die", "raise"),
        max_attempts: int = 1,
        seconds: float = 0.25,
    ) -> FaultPlan:
        """Draw a random-but-reproducible plan from a seed.

        Each ``(shard, attempt)`` cell for ``attempt <= max_attempts``
        independently gets a fault with probability ``rate``, its kind
        drawn uniformly from ``kinds``.
        """
        rng = np.random.default_rng(seed)
        faults: dict[tuple[int, int], Fault] = {}
        for shard in range(n_shards):
            for attempt in range(1, max_attempts + 1):
                if rng.random() < rate:
                    kind = kinds[int(rng.integers(len(kinds)))]
                    faults[(shard, attempt)] = Fault(kind, seconds=seconds)
        return cls(faults)

    def fault_for(
        self, shard: int, attempt: int, backend: str | None = None
    ) -> Fault | None:
        fault = self.faults.get((shard, attempt))
        if fault is None:
            return None
        if fault.backend is not None and backend is not None:
            if fault.backend != backend:
                return None
        return fault

    def wrap(
        self,
        fn: Callable[[Any], Any],
        shard: int,
        attempt: int,
        backend: str | None = None,
    ) -> Callable[[Any], Any]:
        """The worker the supervisor should actually submit."""
        fault = self.fault_for(shard, attempt, backend)
        if fault is None:
            return fn
        return FaultyCall(fn, fault, shard, attempt)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.faults)


def corrupt_checkpoint(
    directory: str | Path, *, seed: int = 0, mode: str = "flip"
) -> Path:
    """Deterministically damage one file of the committed checkpoint.

    ``mode="flip"`` XOR-flips one byte in the middle of the chosen file;
    ``mode="truncate"`` cuts the file in half. The victim is drawn
    seeded from the committed generation's files, so a corruption test
    replays exactly. Returns the damaged path.
    """
    if mode not in ("flip", "truncate"):
        raise InvalidParameterError(
            f"unknown corruption mode {mode!r}; expected 'flip' or 'truncate'"
        )
    directory = Path(directory)
    manifest = directory / "CHECKPOINT.json"
    if not manifest.is_file():
        raise CheckpointError(
            f"no committed checkpoint under {directory}", path=str(directory)
        )
    generation = json.loads(manifest.read_text())["generation"]
    candidates = sorted(
        p for p in (directory / generation).iterdir() if p.stat().st_size > 0
    )
    if not candidates:  # pragma: no cover - a committed gen is never empty
        raise CheckpointError(
            f"committed generation {generation} holds no corruptible files",
            path=str(directory / generation),
        )
    rng = np.random.default_rng(seed)
    victim = candidates[int(rng.integers(len(candidates)))]
    blob = bytearray(victim.read_bytes())
    if mode == "truncate":
        victim.write_bytes(bytes(blob[: len(blob) // 2]))
    else:
        at = len(blob) // 2
        blob[at] ^= 0xFF
        victim.write_bytes(bytes(blob))
    return victim
