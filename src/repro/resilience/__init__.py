"""Fault-tolerant execution: supervised fans, durable checkpoints, chaos.

The robustness layer under every executor fan and streaming monitor in
the engine (PRs 2-9 built the speed; this package makes it survive):

* :class:`SupervisedExecutor` -- retry/timeout/rebuild/degrade
  supervision over the plain serial/thread/process backends, with the
  strict contract that a fan either completes bit-identically to the
  fault-free run or fails typed and loud
  (:class:`~repro.errors.ShardFailedError` names the shards);
* :func:`partial_support_sketch` / :func:`partial_partition_sketch` --
  the opt-in partial mode: a merged sketch plus *exact* excluded-row
  accounting, never a silently short merge;
* :mod:`repro.resilience.checkpoint` -- crash-durable
  atomic-manifest checkpoints for :class:`OnlineChangeMonitor`
  (``monitor.checkpoint(dir)`` / ``monitor.resume(dir)``);
* :mod:`repro.resilience.chaos` -- the deterministic fault-injection
  harness (seeded :class:`FaultPlan`: worker death, injected
  exceptions, stalls, checkpoint corruption) the chaos suite drives;
* :mod:`repro.resilience.backoff` -- seeded, counterfactually
  deterministic retry backoff (RL001/RL010 route every retry here).

Obs counters: ``resilience.retries``, ``resilience.pool_rebuilds``,
``resilience.degraded_fans``, ``resilience.quarantined_shards``,
``resilience.checkpoints_written``, ``resilience.checkpoints_resumed``.
All are zero on a fault-free run -- the bench snapshot invariant CI
asserts.
"""

from repro.resilience.backoff import backoff_delay, sleep_backoff
from repro.resilience.chaos import (
    Fault,
    FaultPlan,
    FaultyCall,
    InjectedFault,
    corrupt_checkpoint,
)
from repro.resilience.checkpoint import (
    has_checkpoint,
    resume_checkpoint,
    write_checkpoint,
)
from repro.resilience.supervisor import (
    FanReport,
    PartialSketchReport,
    ShardFailure,
    SupervisedExecutor,
    partial_partition_sketch,
    partial_support_sketch,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultyCall",
    "FanReport",
    "InjectedFault",
    "PartialSketchReport",
    "ShardFailure",
    "SupervisedExecutor",
    "backoff_delay",
    "corrupt_checkpoint",
    "has_checkpoint",
    "partial_partition_sketch",
    "partial_support_sketch",
    "resume_checkpoint",
    "sleep_backoff",
    "write_checkpoint",
]
