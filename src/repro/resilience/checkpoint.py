"""Crash-durable checkpoints for :class:`OnlineChangeMonitor`.

A monitor that dies loses its window ring, its reference, its history,
and its bootstrap generator state -- restarting it cold silently
re-warms on the wrong rows and emits wrong deviations. This module
persists the *entire* resume-relevant state and restores it
bit-identically:

* **atomic-manifest publish** (the ``MmapStripeStore`` pattern): each
  :func:`write_checkpoint` writes a fresh ``gen-NNNNNN/`` directory --
  rows via :mod:`repro.data.io`, window sketches via the
  :mod:`repro.wire` envelope, everything CRC-recorded in
  ``state.json`` -- and only then swaps ``CHECKPOINT.json`` into place
  with ``os.replace``. A kill at any instant leaves the previous
  committed generation untouched; stale generations are collected
  after the commit.
* **verified resume**: :func:`resume_checkpoint` checks the manifest,
  the state CRC, every file CRC, and the monitor's configuration
  fingerprint before touching the monitor, then rebuilds the reference
  (deterministic re-mine of the persisted reference rows), the window
  ring (sketches realigned to the freshly compiled local structure,
  guarded by itemset/``counts_key`` equality), the inner monitor's
  history/indices, and the bootstrap generator's exact bit-state.
  Anything corrupt raises a typed :class:`CheckpointError` naming the
  file -- a damaged checkpoint can never resume into a silently wrong
  monitor.

The kill-mid-checkpoint suite mirrors the storage crash tests: write a
generation without publishing (plus arbitrary damage to it) and assert
resume lands on the last *committed* generation, bit-identically.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from pathlib import Path
from typing import Any

from repro.core.monitor import Observation
from repro.data.io import (
    load_tabular,
    load_transactions,
    save_tabular,
    save_transactions,
)
from repro.data.tabular import TabularDataset
from repro.data.transactions import TransactionDataset
from repro.errors import CheckpointError, FocusError
from repro.obs import metrics
from repro.stream.sketch import PartitionSketch, SupportSketch
from repro.wire import pack, unpack_partition_sketch, unpack_support_sketch

_MANIFEST = "CHECKPOINT.json"
_STATE = "state.json"
_FORMAT_VERSION = 1


def has_checkpoint(directory: str | Path) -> bool:
    """True when ``directory`` holds a committed checkpoint manifest."""
    return (Path(directory) / _MANIFEST).is_file()


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #


def write_checkpoint(monitor: Any, directory: str | Path) -> Path:
    """Durably persist ``monitor`` under ``directory``; returns the manifest.

    Safe to call at any point in the monitor's life (warm-up included).
    The write is crash-atomic: the generation directory is fully
    written (and fsynced) before the manifest swap commits it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    generation = _next_generation_name(directory)
    state_crc = _write_generation(monitor, directory, generation)
    _publish(directory, generation, state_crc)
    _collect_garbage(directory, generation)
    metrics().inc("resilience.checkpoints_written")
    return directory / _MANIFEST


def _next_generation_name(directory: Path) -> str:
    committed = _read_manifest(directory) if has_checkpoint(directory) else None
    number = 0
    if committed is not None:
        number = int(committed["generation"].split("-")[1]) + 1
    return f"gen-{number:06d}"


def _write_generation(
    monitor: Any, directory: Path, generation: str
) -> int:
    """Write one (uncommitted) generation dir; returns state.json's CRC.

    Split from :func:`_publish` so the crash suite can produce a
    realistic torn checkpoint: a fully or partially written generation
    that never got its manifest swap.
    """
    gen_dir = directory / generation
    if gen_dir.exists():
        # a torn write from a previous life; its manifest never
        # committed, so the bytes are garbage
        shutil.rmtree(gen_dir)
    gen_dir.mkdir(parents=True)
    files: dict[str, int] = {}

    def put_bytes(name: str, payload: bytes) -> str:
        (gen_dir / name).write_bytes(payload)
        files[name] = zlib.crc32(payload)
        return name

    def put_rows(name: str, rows: Any) -> str:
        if monitor.kind == "transactions":
            name += ".rows"
            save_transactions(
                TransactionDataset(rows, monitor.n_items), gen_dir / name
            )
        else:
            name += ".npz"
            save_tabular(rows, gen_dir / name)
        files[name] = zlib.crc32((gen_dir / name).read_bytes())
        return name

    inner = monitor.monitor
    state: dict[str, Any] = {
        "version": _FORMAT_VERSION,
        "config": _fingerprint(monitor),
        "rows_ingested": monitor.rows_ingested,
        "monitor": {
            "next_index": inner._next_index,
            "reference_index": inner._reference_index,
            "history": [
                [o.index, o.deviation, o.significance, o.drifted,
                 o.reference_index]
                for o in inner.history
            ],
        },
        "rng_state": None if inner.rng is None else inner.rng.bit_generator.state,
        "reference": None,
        "buffer": None,
        "windows": None,
    }

    buffered = _buffer_rows(monitor)
    if buffered is not None:
        state["buffer"] = put_rows("buffer", buffered)

    if monitor._windows is not None:
        # started: the authoritative reference is the *inner* monitor's
        # (reset_on_drift may have promoted a window since warm-up)
        state["reference"] = put_rows(
            "reference", _dataset_rows(monitor, inner._reference_dataset)
        )
        manager = monitor._windows
        chunks = []
        for i, (sketch, chunk) in enumerate(manager._chunks):
            rows_name = put_rows(f"chunk-{i:04d}", chunk)
            sketch_name = put_bytes(
                f"chunk-{i:04d}.sketch", _pack_sketch(monitor, sketch)
            )
            chunks.append({"rows": rows_name, "sketch": sketch_name})
        state["windows"] = {
            "row_offset": manager._row_offset,
            "windows_emitted": manager.windows_emitted,
            "rows_sketched": manager.rows_sketched,
            "chunks": chunks,
        }
    elif monitor._reference_data is not None:
        # reference rows arrived but no chunk has forced the lazy fit
        state["reference"] = put_rows(
            "reference", monitor._reference_data
        )

    state["files"] = files
    payload = json.dumps(state).encode()
    (gen_dir / _STATE).write_bytes(payload)
    _fsync_tree(gen_dir)
    return zlib.crc32(payload)


def _publish(directory: Path, generation: str, state_crc: int) -> None:
    """Swap the manifest in atomically -- the single commit point."""
    manifest = json.dumps(
        {
            "version": _FORMAT_VERSION,
            "generation": generation,
            "state_crc": state_crc,
        }
    ).encode()
    tmp = directory / (_MANIFEST + ".tmp")
    with tmp.open("wb") as f:
        f.write(manifest)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, directory / _MANIFEST)


def _collect_garbage(directory: Path, keep: str) -> None:
    for path in directory.iterdir():
        if path.is_dir() and path.name.startswith("gen-") and path.name != keep:
            shutil.rmtree(path, ignore_errors=True)


def _fsync_tree(gen_dir: Path) -> None:
    for path in gen_dir.iterdir():
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


# --------------------------------------------------------------------- #
# Resuming
# --------------------------------------------------------------------- #


def resume_checkpoint(monitor: Any, directory: str | Path) -> None:
    """Restore the committed checkpoint into a *fresh* ``monitor``.

    The monitor must be newly constructed (nothing pushed) with the
    configuration that wrote the checkpoint; both are verified before
    any state is touched. After the restore, pushing the stream's rows
    from offset ``monitor.rows_ingested`` onward yields bit-identical
    observations to the run that never died.
    """
    directory = Path(directory)
    if monitor.rows_ingested or monitor._windows is not None:
        raise CheckpointError(
            "resume requires a freshly constructed monitor; this one has "
            f"already ingested {monitor.rows_ingested} rows"
        )
    manifest = _read_manifest(directory)
    gen_dir = directory / str(manifest["generation"])
    state = _read_state(gen_dir, int(manifest["state_crc"]))
    _check_fingerprint(monitor, state["config"], directory)
    _check_files(gen_dir, state["files"])

    monitor.rows_ingested = int(state["rows_ingested"])
    if state["buffer"] is not None:
        monitor._buffer.extend(_load_rows(monitor, gen_dir / state["buffer"]))

    if state["reference"] is not None:
        monitor._reference_data = _load_rows(
            monitor, gen_dir / state["reference"]
        )
    if state["windows"] is not None:
        # Deterministic re-mine of the persisted reference rows, then
        # adopt the persisted ring on the freshly built manager.
        monitor._lazy_start()
        _restore_windows(monitor, gen_dir, state["windows"])
    inner = monitor.monitor
    saved = state["monitor"]
    inner._next_index = int(saved["next_index"])
    inner._reference_index = int(saved["reference_index"])
    inner.history[:] = [
        Observation(
            index=int(i),
            deviation=float(d),
            significance=float(s),
            drifted=bool(f),
            reference_index=int(r),
        )
        for i, d, s, f, r in saved["history"]
    ]
    if state["rng_state"] is not None and inner.rng is not None:
        inner.rng.bit_generator.state = state["rng_state"]
    metrics().inc("resilience.checkpoints_resumed")


def _read_manifest(directory: Path) -> dict[str, Any]:
    manifest_path = directory / _MANIFEST
    if not manifest_path.is_file():
        raise CheckpointError(
            f"no committed checkpoint under {directory} (missing "
            f"{_MANIFEST})",
            path=str(directory),
        )
    try:
        manifest = json.loads(manifest_path.read_text())
        if manifest["version"] != _FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint format version "
                f"{manifest['version']!r}",
                path=str(manifest_path),
            )
        manifest["generation"], manifest["state_crc"]
    except (ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(
            f"checkpoint manifest is corrupt: {exc}", path=str(manifest_path)
        ) from exc
    return manifest


def _read_state(gen_dir: Path, expected_crc: int) -> dict[str, Any]:
    state_path = gen_dir / _STATE
    try:
        payload = state_path.read_bytes()
    except OSError as exc:
        raise CheckpointError(
            f"committed checkpoint state is unreadable: {exc}",
            path=str(state_path),
        ) from exc
    if zlib.crc32(payload) != expected_crc:
        raise CheckpointError(
            "checkpoint state failed its CRC (manifest and state "
            "disagree); refusing to resume from damaged state",
            path=str(state_path),
        )
    try:
        state: dict[str, Any] = json.loads(payload)
        for key in (
            "config", "rows_ingested", "monitor", "rng_state",
            "reference", "buffer", "windows", "files",
        ):
            state[key]
    except (ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(
            f"checkpoint state is corrupt: {exc}", path=str(state_path)
        ) from exc
    return state


def _check_fingerprint(
    monitor: Any, saved: dict[str, Any], directory: Path
) -> None:
    current = _fingerprint(monitor)
    if current != saved:
        diff = sorted(
            k
            for k in set(current) | set(saved)
            if current.get(k) != saved.get(k)
        )
        raise CheckpointError(
            "monitor configuration does not match the checkpoint "
            f"(differing: {diff}); resume with the configuration that "
            "wrote it",
            path=str(directory),
        )


def _check_files(gen_dir: Path, files: dict[str, Any]) -> None:
    for name, crc in files.items():
        path = gen_dir / name
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint file missing or unreadable: {exc}",
                path=str(path),
            ) from exc
        if zlib.crc32(payload) != int(crc):
            raise CheckpointError(
                f"checkpoint file {name!r} failed its CRC; refusing to "
                "resume from damaged state",
                path=str(path),
            )


def _restore_windows(
    monitor: Any, gen_dir: Path, saved: dict[str, Any]
) -> None:
    manager = monitor._windows
    sketcher = manager.sketcher
    entries = []
    for entry in saved["chunks"]:
        chunk = sketcher.normalize(_load_rows(monitor, gen_dir / entry["rows"]))
        payload = (gen_dir / entry["sketch"]).read_bytes()
        sketch = _unpack_sketch(monitor, payload, gen_dir / entry["sketch"])
        entries.append((sketch, chunk))
    manager.restore(
        entries,
        row_offset=int(saved["row_offset"]),
        windows_emitted=int(saved["windows_emitted"]),
        rows_sketched=int(saved["rows_sketched"]),
    )


# --------------------------------------------------------------------- #
# Helpers: fingerprint, rows, sketches
# --------------------------------------------------------------------- #


def _fingerprint(monitor: Any) -> dict[str, Any]:
    inner = monitor.monitor
    return {
        "kind": monitor.kind,
        "n_items": monitor.n_items,
        "window_size": monitor.window_size,
        "step": monitor.step,
        "n_boot": inner.n_boot,
        "threshold": inner.threshold,
        "delta_threshold": inner.delta_threshold,
        "policy": inner.policy,
        "refit_models": inner.refit_models,
    }


def _buffer_rows(monitor: Any) -> Any:
    buffer = monitor._buffer
    if not len(buffer):
        return None
    if monitor.kind == "transactions":
        return list(buffer._rows)
    return TabularDataset.concat_many(list(buffer._chunks))


def _dataset_rows(monitor: Any, dataset: Any) -> Any:
    if monitor.kind == "transactions":
        return tuple(tuple(t) for t in dataset)
    return dataset


def _load_rows(monitor: Any, path: Path) -> Any:
    try:
        if monitor.kind == "transactions":
            return tuple(load_transactions(path))
        return load_tabular(path)
    except (FocusError, OSError, ValueError, KeyError) as exc:
        raise CheckpointError(
            f"checkpoint rows failed to load: {exc}", path=str(path)
        ) from exc


def _pack_sketch(monitor: Any, sketch: Any) -> bytes:
    if monitor.kind == "transactions":
        return pack(sketch)
    try:
        return pack(sketch, model=monitor.monitor._reference_model)
    except FocusError as exc:
        raise CheckpointError(
            "window sketches could not be wire-packed (checkpointing a "
            "tabular monitor needs a dt- or cluster-model reference): "
            f"{exc}"
        ) from exc


def _unpack_sketch(monitor: Any, payload: bytes, path: Path) -> Any:
    """Decode and *realign* a persisted sketch to the local structure.

    The local reference was just re-mined, so its canonical itemsets /
    counting plan are fresh objects; the persisted counts are adopted
    onto them (the fast-path constructors) only after an exact
    structure-equality guard. A mismatch means the checkpoint and the
    re-mined reference disagree -- damaged state, typed and loud.
    """
    sketcher = monitor._windows.sketcher
    try:
        if monitor.kind == "transactions":
            decoded = unpack_support_sketch(payload)
            local = sketcher.itemsets
            if tuple(decoded.itemsets) != tuple(local):
                raise CheckpointError(
                    "persisted sketch itemsets do not match the re-mined "
                    "reference structure",
                    path=str(path),
                )
            return SupportSketch._from_canonical(
                local, decoded.counts, decoded.n_transactions, decoded.n_items
            )
        decoded = unpack_partition_sketch(payload)
        plan = sketcher.plan
        if decoded.key != plan.structure.counts_key:
            raise CheckpointError(
                "persisted sketch partition does not match the re-mined "
                "reference structure",
                path=str(path),
            )
        return PartitionSketch._trusted(plan, decoded.counts, decoded.n_rows)
    except CheckpointError:
        raise
    except FocusError as exc:
        raise CheckpointError(
            f"checkpoint sketch failed to decode: {exc}", path=str(path)
        ) from exc
