"""Supervised map-merge fans: retry, rebuild, degrade, or fail loudly.

The plain executors in :mod:`repro.stream.executor` assume workers
never die and shards never raise. :class:`SupervisedExecutor` wraps
them with the failure policy a production fan needs:

* **bounded retry** per shard with deterministic seeded exponential
  backoff (:mod:`repro.resilience.backoff` -- no unseeded jitter);
* **per-shard timeout**: a stalled shard is abandoned, retried, and on
  the process rung the pool is rebuilt so the stalled worker dies too;
* **broken-pool recovery**: a ``BrokenProcessPool`` rebuilds the pool
  and re-runs only the unfinished shards -- completed results are kept;
* **degradation ladder** (``process -> thread -> serial``, opt-in via
  ``on_failure="degrade"``): when every pending shard exhausts its
  budget on one rung, the fan drops a rung and tries again with a
  fresh budget;
* **no silent loss**: a shard that fails its whole budget is
  *quarantined*. :meth:`map` raises a typed
  :class:`~repro.errors.ShardFailedError` naming the shards (strict
  default); :meth:`map_report` returns a :class:`FanReport` whose
  failed slots are explicit, and the partial-sketch helpers turn that
  into exact excluded-row accounting. A supervised fan never returns a
  silently short merge.

Because retries re-run the *same pure worker on the same payload*, a
fan that completes is bit-identical to the fault-free run -- the chaos
suite pins this across all three backends.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro._typing import ExecutorLike

from repro.errors import ExecutorError, InvalidParameterError, ShardFailedError
from repro.obs import enabled, metrics
from repro.resilience.backoff import backoff_delay, sleep_backoff
from repro.stats.resample_plan import _resolve_rng
from repro.stream.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    _merge_worker_registries,
    _sketch_partition_shard,
    _sketch_shard,
)
from repro.stream.sketch import (
    PartitionSketch,
    SupportSketch,
    as_partition_plan,
    canonical_itemsets,
)

#: Degradation ladders, most capable rung first. A custom executor
#: instance gets a one-rung ladder (nothing to degrade to).
_LADDERS: dict[str, tuple[str, ...]] = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}

_RUNG_TYPES: dict[str, type] = {
    "process": ProcessExecutor,
    "thread": ThreadExecutor,
    "serial": SerialExecutor,
}


@dataclass(frozen=True)
class ShardFailure:
    """One failed attempt: which shard, which try, on which rung, why."""

    shard: int
    attempt: int
    backend: str
    error: str


@dataclass(frozen=True)
class FanReport:
    """The full outcome of one supervised fan.

    ``results`` is in shard order with ``None`` at quarantined slots;
    ``failed``/``errors`` are aligned (shard index, last rendered
    cause). ``failures`` is the complete attempt-level log, in the
    order failures were observed.
    """

    results: tuple[Any, ...]
    failed: tuple[int, ...]
    errors: tuple[str, ...]
    failures: tuple[ShardFailure, ...]
    retries: int
    pool_rebuilds: int
    degraded: bool
    backend: str

    @property
    def ok(self) -> bool:
        return not self.failed

    def raise_if_failed(self) -> FanReport:
        if self.failed:
            raise ShardFailedError(
                f"{len(self.failed)} shard(s) quarantined after exhausting "
                f"their retry budget (final backend {self.backend!r}): "
                f"shards {list(self.failed)}; last causes: {list(self.errors)}",
                shards=self.failed,
                errors=self.errors,
            )
        return self


class SupervisedExecutor:
    """A fault-tolerant executor with the plain ``map`` surface.

    Drop-in wherever an executor instance is accepted (``get_executor``
    passes instances through, and ``get_executor("supervised")``
    resolves to this class with defaults), so every fan call site in
    stream/fleet/stats inherits retry, rebuild, and degradation without
    changing shape.

    Parameters
    ----------
    inner:
        Backend name (``"process"``/``"thread"``/``"serial"``) selecting
        the top of the degradation ladder, or a ready executor instance
        (custom instances get a one-rung ladder).
    retries:
        Extra attempts per shard *per rung* (budget = retries + 1).
    shard_timeout:
        Seconds to wait for one shard's result before abandoning the
        attempt. ``None`` waits forever. The serial rung runs eagerly
        in-process and cannot enforce a timeout.
    on_failure:
        ``"raise"`` (strict default): quarantined shards make
        :meth:`map` raise :class:`ShardFailedError`. ``"degrade"``:
        exhausting a rung drops to the next rung first; only a fan that
        fails on the *serial* rung quarantines.
    seed / rng:
        Jitter seeding, resolved through the engine's single blessed
        ``_resolve_rng`` path.
    fault_plan:
        A :class:`repro.resilience.chaos.FaultPlan` to arm (tests only).
    sleep:
        Injection point for the backoff sleep; defaults to the blessed
        :func:`sleep_backoff`.
    """

    name = "supervised"

    def __init__(
        self,
        inner: ExecutorLike = "process",
        *,
        retries: int = 2,
        shard_timeout: float | None = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int | None = 0,
        rng: Any = None,
        on_failure: str = "raise",
        max_workers: int | None = None,
        fault_plan: Any = None,
        sleep: Callable[[float], None] = sleep_backoff,
    ) -> None:
        if retries < 0:
            raise InvalidParameterError("retries must be >= 0")
        if shard_timeout is not None and shard_timeout <= 0:
            raise InvalidParameterError("shard_timeout must be positive")
        if on_failure not in ("raise", "degrade"):
            raise InvalidParameterError(
                f"on_failure must be 'raise' or 'degrade', got {on_failure!r}"
            )
        self.retries = retries
        self.shard_timeout = shard_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.on_failure = on_failure
        self.fault_plan = fault_plan
        self._sleep = sleep
        self._jitter_seed = int(
            _resolve_rng(rng, seed, "SupervisedExecutor").integers(2**63)
        )
        if isinstance(inner, str):
            if inner not in _LADDERS:
                raise InvalidParameterError(
                    f"unknown supervised backend {inner!r}; expected one of "
                    f"{tuple(_LADDERS)} or an executor instance"
                )
            self._rungs: list[Any] = []
            for rung_name in _LADDERS[inner]:
                rung_type = _RUNG_TYPES[rung_name]
                if rung_type is SerialExecutor:
                    self._rungs.append(SerialExecutor())
                else:
                    self._rungs.append(rung_type(max_workers=max_workers))
        else:
            if not hasattr(inner, "submit"):
                raise InvalidParameterError(
                    "a custom inner executor must expose "
                    ".submit(fn, item) -> Future for supervision, got "
                    f"{inner!r}"
                )
            self._rungs = [inner]
        self._rung = 0
        self._closed = False

    # ---------------------------------------------------------------- #
    # introspection
    # ---------------------------------------------------------------- #

    @property
    def backend(self) -> str:
        """Name of the current rung's backend."""
        return str(getattr(self._rungs[self._rung], "name", "custom"))

    @property
    def process_backed(self) -> bool:
        """True while the current rung fans out to worker processes."""
        return isinstance(self._rungs[self._rung], ProcessExecutor)

    @property
    def degradable(self) -> bool:
        """True when a failure at this rung would degrade, not quarantine."""
        return self.on_failure == "degrade" and self._rung + 1 < len(self._rungs)

    # ---------------------------------------------------------------- #
    # the supervised fan
    # ---------------------------------------------------------------- #

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Strict supervised map: all shards or a typed error."""
        return list(self.map_report(fn, items).raise_if_failed().results)

    def map_report(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> FanReport:
        """Supervised map returning an explicit :class:`FanReport`.

        Never raises for shard failures -- quarantined slots come back
        as ``None`` with the shard indices and causes spelled out, so a
        caller opting into partial results owns the accounting.
        """
        if self._closed:
            raise ExecutorError(
                "supervised executor is closed; close() is permanent -- "
                "construct a new executor to keep mapping"
            )
        items = list(items)
        results: list[Any] = [None] * len(items)
        pending = list(range(len(items)))
        attempts = [0] * len(items)
        failures: list[ShardFailure] = []
        last_error: dict[int, str] = {}
        quarantined: list[int] = []
        retries = rebuilds = 0
        degraded = False
        sink = metrics()
        budget = self.retries + 1
        while pending:
            runner = self._rungs[self._rung]
            failed_round, broken, stalled = self._run_round(
                runner, fn, items, pending, attempts, budget, results,
                failures, last_error,
            )
            if broken or (stalled and self.process_backed):
                # Rebuild the pool: drop the carcass without joining dead
                # (or stalled) workers; the next submit respawns fresh.
                shutdown = getattr(runner, "shutdown", None)
                if shutdown is not None:
                    shutdown(wait=False)
                rebuilds += 1
                sink.inc("resilience.pool_rebuilds")
            if not pending:
                break
            if self.degradable:
                # Exhausted shards are held (not resubmitted) until the
                # whole rung is spent, then everyone drops a rung with a
                # fresh budget.
                if all(attempts[s] >= budget for s in pending):
                    self._rung += 1
                    for s in pending:
                        attempts[s] = 0
                    if not degraded:
                        degraded = True
                        sink.inc("resilience.degraded_fans")
                    continue
            else:
                for s in [s for s in pending if attempts[s] >= budget]:
                    pending.remove(s)
                    quarantined.append(s)
                    sink.inc("resilience.quarantined_shards")
            delay = 0.0
            for s in pending:
                if s not in failed_round or attempts[s] >= budget:
                    continue
                retries += 1
                sink.inc("resilience.retries")
                delay = max(
                    delay,
                    backoff_delay(
                        s,
                        attempts[s],
                        base=self.backoff_base,
                        cap=self.backoff_cap,
                        jitter_seed=self._jitter_seed,
                    ),
                )
            self._sleep(delay)
        quarantined.sort()
        return FanReport(
            results=tuple(results),
            failed=tuple(quarantined),
            errors=tuple(last_error.get(s, "<unknown>") for s in quarantined),
            failures=tuple(failures),
            retries=retries,
            pool_rebuilds=rebuilds,
            degraded=degraded,
            backend=self.backend,
        )

    def _run_round(
        self,
        runner: Any,
        fn: Callable[[Any], Any],
        items: list[Any],
        pending: list[int],
        attempts: list[int],
        budget: int,
        results: list[Any],
        failures: list[ShardFailure],
        last_error: dict[int, str],
    ) -> tuple[set[int], bool, bool]:
        """Submit every below-budget pending shard once; harvest in order.

        Returns ``(failed_this_round, pool_broken, any_stall)``. Mutates
        ``pending``/``attempts``/``results`` in place: completed shards
        leave ``pending``; every recorded failure has consumed one
        attempt. When the pool breaks mid-round the culprit is
        unknowable (every unfinished future surfaces the same
        ``BrokenProcessPool``), so *every* shard the break reached is
        charged -- results harvested before the break are kept, only
        unfinished work re-runs, and because at least one shard is
        charged per broken round the fan always makes progress toward
        completion, degradation, or quarantine.
        """
        failed_round: set[int] = set()
        broken = stalled = False

        def record(shard: int, exc: BaseException) -> None:
            cause = f"{type(exc).__name__}: {exc}"
            failures.append(
                ShardFailure(shard, attempts[shard], self.backend, cause)
            )
            last_error[shard] = cause
            failed_round.add(shard)

        futures: list[tuple[int, Future[Any]]] = []
        for shard in list(pending):
            if attempts[shard] >= budget:
                continue
            attempts[shard] += 1
            task = fn
            if self.fault_plan is not None:
                task = self.fault_plan.wrap(
                    fn, shard, attempts[shard], self.backend
                )
            try:
                futures.append((shard, runner.submit(task, items[shard])))
            except BrokenExecutor as exc:
                # The pool died before this submit; charge this shard (it
                # consumed the attempt) and stop feeding the carcass.
                record(shard, exc)
                broken = True
                break
        for shard, future in futures:
            try:
                value = future.result(timeout=self.shard_timeout)
            except BrokenExecutor as exc:
                broken = True
                record(shard, exc)
                continue
            except FuturesTimeoutError:
                stalled = True
                future.cancel()
                record(
                    shard,
                    TimeoutError(
                        f"shard {shard} stalled past "
                        f"{self.shard_timeout}s on {self.backend}"
                    ),
                )
                continue
            except Exception as exc:  # reprolint: disable=RL010(worker failure is recorded per shard and re-raised as a typed ShardFailedError once the retry budget is spent)
                record(shard, exc)
                continue
            results[shard] = value
            pending.remove(shard)
        return failed_round, broken, stalled

    # ---------------------------------------------------------------- #
    # lifecycle
    # ---------------------------------------------------------------- #

    def shutdown(self, wait: bool = True) -> None:
        """Release every rung's pool (a later map lazily recreates them)."""
        for rung in self._rungs:
            shutdown = getattr(rung, "shutdown", None)
            if shutdown is not None:
                shutdown(wait=wait)

    def close(self) -> None:
        """Permanently retire the executor; later map calls raise."""
        for rung in self._rungs:
            close = getattr(rung, "close", None)
            if close is not None:
                close()
        self._closed = True


# --------------------------------------------------------------------- #
# Partial-result fans: exact excluded-row accounting
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PartialSketchReport:
    """A merged sketch plus an exact account of what it is missing.

    ``sketch`` merges only the shards that completed; ``excluded_rows``
    counts every row of every quarantined shard. A consumer that treats
    the sketch as complete when ``excluded_shards`` is non-empty does so
    explicitly -- never by accident.
    """

    sketch: Any
    included_shards: tuple[int, ...]
    excluded_shards: tuple[int, ...]
    excluded_rows: int
    total_rows: int
    errors: tuple[str, ...]
    fan: FanReport

    @property
    def complete(self) -> bool:
        return not self.excluded_shards

    def describe(self) -> str:
        if self.complete:
            return f"complete: all {self.total_rows} rows sketched"
        return (
            f"partial: {self.excluded_rows}/{self.total_rows} rows excluded "
            f"(shards {list(self.excluded_shards)})"
        )


def _partial_fan(
    executor: ExecutorLike,
    worker: Callable[[Any], Any],
    payloads: list[tuple[Any, ...]],
    row_counts: list[int],
    merge_empty: Any,
    collect: bool,
) -> PartialSketchReport:
    supervisor = (
        executor
        if isinstance(executor, SupervisedExecutor)
        else SupervisedExecutor(executor)
    )
    owns_runner = supervisor is not executor
    try:
        report = supervisor.map_report(worker, payloads)
    finally:
        if owns_runner:
            supervisor.shutdown()
    included = tuple(
        i for i in range(len(payloads)) if i not in set(report.failed)
    )
    completed = [report.results[i] for i in included]
    if collect:
        completed = _merge_worker_registries(completed)
    sketch = sum(completed, merge_empty)
    excluded_rows = sum(row_counts[i] for i in report.failed)
    return PartialSketchReport(
        sketch=sketch,
        included_shards=included,
        excluded_shards=report.failed,
        excluded_rows=excluded_rows,
        total_rows=sum(row_counts),
        errors=report.errors,
        fan=report,
    )


def partial_support_sketch(
    shards: Sequence[Sequence[Any]],
    itemsets: Iterable[Iterable[int]],
    n_items: int,
    executor: ExecutorLike = "process",
) -> PartialSketchReport:
    """Supervised transaction fan that *reports* loss instead of hiding it.

    Every quarantined shard's rows are counted into
    ``excluded_rows`` -- the opt-in alternative to the strict
    :meth:`SupervisedExecutor.map` raise, and the only sanctioned way to
    get a result out of a fan with dead shards.
    """
    canon = canonical_itemsets(itemsets)
    collect = enabled()
    rows = [list(shard) for shard in shards]
    payloads = [(shard, canon, n_items, collect) for shard in rows]
    return _partial_fan(
        executor,
        _sketch_shard,
        payloads,
        [len(shard) for shard in rows],
        SupportSketch.empty(canon, n_items),
        collect,
    )


def partial_partition_sketch(
    shards: Sequence[Any],
    structure_or_plan: Any,
    executor: ExecutorLike = "process",
) -> PartialSketchReport:
    """Supervised tabular fan with exact excluded-row accounting."""
    plan = as_partition_plan(structure_or_plan)
    collect = enabled()
    payloads = [(shard, plan, collect) for shard in shards]
    return _partial_fan(
        executor,
        _sketch_partition_shard,
        payloads,
        [len(shard) for shard in shards],
        PartitionSketch.empty(plan),
        collect,
    )
