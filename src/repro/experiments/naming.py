"""The paper's dataset naming conventions.

Section 6.1 names market-basket datasets ``NM.tlL.kI.PPpats.pplen``
("``N`` million transactions, average transaction length ``tl``, ``k``
thousand items, ``PP`` thousand patterns, average pattern length ``p``")
and classification datasets ``NM.Fnum`` (``N`` million tuples generated
with classification function ``num``). This module parses and formats
both so experiment reports can label rows exactly as the paper does --
including scaled-down sizes, which render with their true row counts
(e.g. ``20K.10L.0.25I.0.5pats.4plen``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class BasketSpec:
    """Parameters of a Quest market-basket dataset."""

    n_transactions: int
    avg_transaction_len: int
    n_items: int
    n_patterns: int
    avg_pattern_len: int

    def name(self) -> str:
        return (
            f"{_fmt_count(self.n_transactions)}."
            f"{self.avg_transaction_len}L."
            f"{_fmt_thousands(self.n_items)}I."
            f"{_fmt_thousands(self.n_patterns)}pats."
            f"{self.avg_pattern_len}plen"
        )


@dataclass(frozen=True)
class ClassifySpec:
    """Parameters of a classification dataset."""

    n_rows: int
    function: int

    def name(self) -> str:
        return f"{_fmt_count(self.n_rows)}.F{self.function}"


def _fmt_count(n: int) -> str:
    if n % 1_000_000 == 0 and n >= 1_000_000:
        return f"{n // 1_000_000}M"
    if n % 1_000 == 0 and n >= 1_000:
        return f"{n // 1_000}K"
    return str(n)


def _fmt_thousands(n: int) -> str:
    if n % 1_000 == 0 and n >= 1_000:
        return str(n // 1_000)
    return f"{n / 1_000:g}"


def _parse_count(token: str) -> int:
    token = token.strip()
    match = re.fullmatch(r"(\d+(?:\.\d+)?)([MK]?)", token)
    if not match:
        raise InvalidParameterError(f"cannot parse count {token!r}")
    value = float(match.group(1))
    unit = match.group(2)
    if unit == "M":
        value *= 1_000_000
    elif unit == "K":
        value *= 1_000
    return int(round(value))


def parse_basket_name(name: str) -> BasketSpec:
    """Parse ``1M.20L.1K.4000pats.4patlen``-style names.

    Accepts the paper's two spellings (``4patlen`` / ``4plen`` and
    ``1K``-items vs bare ``1I`` thousands).
    """
    match = re.fullmatch(
        r"([\d.]+[MK]?)\.(\d+)L\.([\d.]+)[KI]?I?\.([\d.]+[MK]?)pats\.(\d+)p(?:at)?len",
        name,
    )
    if not match:
        raise InvalidParameterError(f"cannot parse basket dataset name {name!r}")
    n_txn = _parse_count(match.group(1))
    tl = int(match.group(2))
    items_token = match.group(3)
    n_items = int(round(float(items_token) * 1_000))
    pats_token = match.group(4)
    if pats_token.endswith(("M", "K")):
        n_patterns = _parse_count(pats_token)
    else:
        value = float(pats_token)
        # Paper writes both "4000pats" (absolute) and "4pats" (thousands).
        n_patterns = int(round(value * 1_000)) if value < 100 else int(round(value))
    plen = int(match.group(5))
    return BasketSpec(n_txn, tl, n_items, n_patterns, plen)


def parse_classify_name(name: str) -> ClassifySpec:
    """Parse ``1M.F1``-style names."""
    match = re.fullmatch(r"([\d.]+[MK]?)\.F(\d+)", name)
    if not match:
        raise InvalidParameterError(f"cannot parse classify dataset name {name!r}")
    return ClassifySpec(_parse_count(match.group(1)), int(match.group(2)))
