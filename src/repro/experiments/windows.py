"""Windowed deviation series over temporally ordered data.

Section 8 contrasts FOCUS with pattern-level monitors ([4, 10]): "given
a pattern (or itemset) their algorithms propose to track its variation
over a temporally ordered set of transactions. However, they do not
detect variations at levels higher than that of a single pattern."

This module does the model-level version: slice an ordered dataset into
tumbling or sliding windows, induce a model per window, and compute the
deviation series between consecutive windows (or against a fixed
baseline window). Change points are the windows whose deviation is
extreme relative to the series -- or, with the bootstrap, statistically
significant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.aggregate import SUM, AggregateFunction
from repro.core.deviation import deviation, deviation_many
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.errors import InvalidParameterError


def tumbling_windows(dataset, window_size: int) -> list:
    """Consecutive non-overlapping slices of ``window_size`` rows.

    A final partial window shorter than half the size is merged into the
    previous window rather than producing a noisy stub.
    """
    if window_size < 1:
        raise InvalidParameterError("window_size must be >= 1")
    n = len(dataset)
    if n == 0:
        return []
    starts = list(range(0, n, window_size))
    windows = []
    for start in starts:
        stop = min(start + window_size, n)
        windows.append((start, stop))
    if len(windows) > 1 and windows[-1][1] - windows[-1][0] < window_size / 2:
        last_start, last_stop = windows.pop()
        prev_start, _ = windows.pop()
        windows.append((prev_start, last_stop))
    return [
        dataset.take(np.arange(start, stop)) for start, stop in windows
    ]


def sliding_windows(dataset, window_size: int, step: int) -> list:
    """Overlapping slices advancing by ``step`` rows."""
    if window_size < 1 or step < 1:
        raise InvalidParameterError("window_size and step must be >= 1")
    n = len(dataset)
    windows = []
    start = 0
    while start + window_size <= n:
        windows.append(dataset.take(np.arange(start, start + window_size)))
        start += step
    return windows


@dataclass(frozen=True)
class DeviationSeries:
    """Per-window deviations with change-point helpers."""

    deviations: tuple[float, ...]
    mode: str  # "consecutive" or "baseline"

    def change_points(self, z_threshold: float = 3.0) -> list[int]:
        """Indices whose deviation is a robust outlier of the series.

        Uses the median absolute deviation: a window is a change point
        when its deviation exceeds ``median + z * 1.4826 * MAD``. With
        fewer than four windows no point qualifies (no baseline to
        outlie from).
        """
        values = np.asarray(self.deviations)
        if values.size < 4:
            return []
        median = float(np.median(values))
        mad = float(np.median(np.abs(values - median)))
        if mad == 0:
            cutoff = median + 1e-12
        else:
            cutoff = median + z_threshold * 1.4826 * mad
        return [i for i, v in enumerate(values) if v > cutoff]

    def argmax(self) -> int:
        return int(np.argmax(self.deviations))


def deviation_series(
    windows: Sequence,
    model_builder: Callable,
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
    baseline: int | None = None,
) -> DeviationSeries:
    """Deviation per window: against its predecessor, or a fixed baseline.

    ``baseline=None`` produces the *consecutive* series ``delta(W_i,
    W_{i+1})`` of length ``len(windows) - 1``; ``baseline=k`` compares
    every other window to window ``k`` (length ``len(windows) - 1``,
    skipping the baseline itself).
    """
    if len(windows) < 2:
        raise InvalidParameterError("need at least two windows")
    models = [model_builder(w) for w in windows]

    values: list[float] = []
    if baseline is None:
        for i in range(len(windows) - 1):
            values.append(
                deviation(
                    models[i], models[i + 1], windows[i], windows[i + 1],
                    f=f, g=g,
                ).value
            )
        return DeviationSeries(tuple(values), "consecutive")

    if not 0 <= baseline < len(windows):
        raise InvalidParameterError(
            f"baseline must be in [0, {len(windows) - 1}]"
        )
    # One model against the window fleet: the batched engine scans the
    # baseline window once for all comparisons and each window once.
    others = [i for i in range(len(windows)) if i != baseline]
    results = deviation_many(
        models[baseline],
        [models[i] for i in others],
        windows[baseline],
        [windows[i] for i in others],
        f=f,
        g=g,
    )
    values = [r.value for r in results]
    return DeviationSeries(tuple(values), "baseline")
