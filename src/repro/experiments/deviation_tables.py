"""Figures 13 and 14: deviation tables with bootstrap significance.

Figure 13 (lits-models) compares a base dataset ``D`` against:

* ``D(1)`` -- same generating process (same pattern pool), half size;
  expected *insignificant*.
* ``D(2)..D(4)`` -- fresh pools varying pattern count and length
  ``(1.5P, p)``, ``(P, p+1)``, ``(1.25P, p+1)``; expected significant,
  with pattern length the dominant influence.
* ``D + delta(5..7)`` -- ``D`` extended with a 5%-sized block from the
  ``D(2..4)`` processes; the paper finds the patlen-changing blocks
  (rows 6-7) significant and the pats-only block (row 5) not.

Each row reports ``delta_(f_a, g_sum)``, its bootstrap significance, the
``delta*`` upper bound, and wall-clock times for ``delta`` (including
the dataset scans) and ``delta*`` (models only).

Figure 14 repeats the design with dt-models on the classification
generator (functions F1-F4 and 5% blocks), reporting ``delta`` and its
significance; Figure 15's ME correlation reuses these datasets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.deviation import deviation
from repro.core.upper_bound import upper_bound_deviation
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.data.quest_classify import generate_classification
from repro.experiments.builders import dt_builder, lits_builder
from repro.experiments.config import Scale
from repro.stats.bootstrap import deviation_significance


@dataclass(frozen=True)
class LitsDeviationRow:
    """One row of Figure 13."""

    label: str
    delta: float
    significance: float
    delta_star: float
    time_delta: float
    time_delta_star: float


@dataclass(frozen=True)
class DtDeviationRow:
    """One row of Figure 14."""

    label: str
    delta: float
    significance: float


def _lits_variant_specs(scale: Scale) -> list[tuple[str, float, float, bool]]:
    """(label, pats_factor, plen_delta, is_block) for rows (2)..(7)."""
    return [
        ("D(2)", 1.5, 0, False),
        ("D(3)", 1.0, 1, False),
        ("D(4)", 1.25, 1, False),
        ("D+d(5)", 1.5, 0, True),
        ("D+d(6)", 1.0, 1, True),
        ("D+d(7)", 1.25, 1, True),
    ]


def figure_13(scale: Scale, n_boot: int | None = None) -> list[LitsDeviationRow]:
    """The lits deviation table (Figure 13), at the given scale."""
    rng = np.random.default_rng(scale.seed + 3000)
    n_boot = n_boot if n_boot is not None else scale.n_boot
    min_support = scale.min_supports[0]
    builder = lits_builder(scale, min_support)

    pool = build_pattern_pool(
        rng,
        n_items=scale.n_items,
        n_patterns=scale.n_patterns,
        avg_pattern_len=scale.avg_pattern_len,
    )
    base = generate_basket(
        scale.base_transactions,
        n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        rng=rng,
        pool=pool,
    )
    base_model = builder(base)

    comparisons: list[tuple[str, object]] = []
    # Row (1): same process, half the size.
    same_process = generate_basket(
        scale.base_transactions // 2,
        n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        rng=rng,
        pool=pool,
    )
    comparisons.append(("D(1)", same_process))
    for label, pats_factor, plen_delta, is_block in _lits_variant_specs(scale):
        variant_pool = build_pattern_pool(
            rng,
            n_items=scale.n_items,
            n_patterns=int(scale.n_patterns * pats_factor),
            avg_pattern_len=scale.avg_pattern_len + plen_delta,
        )
        size = (
            max(1, int(0.05 * scale.base_transactions))
            if is_block
            else scale.base_transactions
        )
        variant = generate_basket(
            size,
            n_items=scale.n_items,
            avg_transaction_len=scale.avg_transaction_len,
            rng=rng,
            pool=variant_pool,
        )
        comparisons.append((label, base.concat(variant) if is_block else variant))

    rows: list[LitsDeviationRow] = []
    for label, other in comparisons:
        other_model = builder(other)

        # Time delta including the dataset scans (rebuild both indexes).
        base.drop_index()
        other.drop_index()
        t0 = time.perf_counter()
        delta = deviation(base_model, other_model, base, other).value
        time_delta = time.perf_counter() - t0

        t0 = time.perf_counter()
        delta_star = upper_bound_deviation(base_model, other_model).value
        time_delta_star = time.perf_counter() - t0

        # models= hands the already-mined pair to the count-space
        # engine: the qualification costs one pooled scan, not a
        # re-mining plus n_boot rescans.
        sig = deviation_significance(
            base, other, builder, n_boot=n_boot, rng=rng,
            models=(base_model, other_model),
        ).significance_percent
        rows.append(
            LitsDeviationRow(
                label=label,
                delta=delta,
                significance=sig,
                delta_star=delta_star,
                time_delta=time_delta,
                time_delta_star=time_delta_star,
            )
        )
    return rows


def figure_14_datasets(scale: Scale) -> tuple[object, list[tuple[str, object]]]:
    """The base F1 dataset and the labelled comparison datasets."""
    rng = np.random.default_rng(scale.seed + 4000)
    base = generate_classification(scale.base_rows, function=1, rng=rng)
    comparisons: list[tuple[str, object]] = [
        (
            "D(1)",
            generate_classification(scale.base_rows // 2, function=1, rng=rng),
        )
    ]
    for i, function in enumerate((2, 3, 4), start=2):
        comparisons.append(
            (
                f"D({i})",
                generate_classification(scale.base_rows, function=function, rng=rng),
            )
        )
    block_size = max(1, int(0.05 * scale.base_rows))
    for i, function in enumerate((2, 3, 4), start=5):
        block = generate_classification(block_size, function=function, rng=rng)
        comparisons.append((f"D+d({i})", base.concat(block)))
    return base, comparisons


def figure_14(scale: Scale, n_boot: int | None = None) -> list[DtDeviationRow]:
    """The dt deviation table (Figure 14), at the given scale."""
    n_boot = n_boot if n_boot is not None else scale.n_boot
    builder = dt_builder(scale)
    base, comparisons = figure_14_datasets(scale)
    base_model = builder(base)
    rng = np.random.default_rng(scale.seed + 4500)

    rows: list[DtDeviationRow] = []
    for label, other in comparisons:
        other_model = builder(other)
        delta = deviation(base_model, other_model, base, other).value
        sig = deviation_significance(
            base, other, builder, n_boot=n_boot, rng=rng,
            models=(base_model, other_model),
        ).significance_percent
        rows.append(DtDeviationRow(label=label, delta=delta, significance=sig))
    return rows
