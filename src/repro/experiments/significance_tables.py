"""Tables 1 and 2: significance of the SD decrease with sample size.

For each consecutive pair of sample fractions ``s_i -> s_{i+1}``, the
Wilcoxon rank-sum test (over ``n_reps`` SD replicates per fraction)
measures the confidence that the larger sample is more representative.
The paper reports 99.99% almost everywhere for lits-models (Table 1)
and high-but-noisier values for dt-models (Table 2: 79-99.99).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.quest_basket import generate_basket
from repro.data.quest_classify import generate_classification
from repro.experiments.builders import dt_builder, lits_builder
from repro.experiments.config import Scale
from repro.experiments.naming import BasketSpec, ClassifySpec
from repro.experiments.sample_size import sample_deviation_curve


@dataclass(frozen=True)
class SignificanceTable:
    """One of Tables 1/2: significance per fraction step."""

    table: str
    dataset_name: str
    fractions: tuple[float, ...]
    significances: tuple[float, ...]  # aligned with fractions[:-1]

    def rows(self) -> list[tuple[str, str]]:
        """(fraction, significance%) cells, '-' for the last fraction."""
        cells = [
            (f"{f:g}", f"{s:.2f}")
            for f, s in zip(self.fractions[:-1], self.significances)
        ]
        cells.append((f"{self.fractions[-1]:g}", "-"))
        return cells


def table_1(scale: Scale, seed: int | None = None) -> SignificanceTable:
    """lits-models: % significance of representativeness increase.

    ``seed`` overrides the scale's *base* seed with the same per-table
    derivation the runner's ``--seed`` applies (base + 1000), so
    ``table_1(scale, seed=S)`` and ``runner --seed S --experiment
    table1`` publish the identical table; every random draw (dataset
    generation and SD replicates) descends from it.
    """
    rng = np.random.default_rng(
        (scale.seed if seed is None else seed) + 1000
    )
    dataset = generate_basket(
        scale.base_transactions,
        n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns,
        avg_pattern_len=scale.avg_pattern_len,
        rng=rng,
    )
    curve = sample_deviation_curve(
        dataset,
        lits_builder(scale, scale.min_supports[0]),
        scale.fractions,
        scale.n_reps,
        rng,
        label="table1",
    )
    sig = tuple(s for _, s in curve.significance_of_decrease())
    spec = BasketSpec(
        scale.base_transactions,
        scale.avg_transaction_len,
        scale.n_items,
        scale.n_patterns,
        scale.avg_pattern_len,
    )
    return SignificanceTable("Table 1", spec.name(), scale.fractions, sig)


def table_2(scale: Scale, seed: int | None = None) -> SignificanceTable:
    """dt-models: % significance of SD decrease with sample fraction.

    ``seed`` overrides the scale's base seed, derivation-consistent
    with the runner's ``--seed`` (see :func:`table_1`).
    """
    rng = np.random.default_rng(
        (scale.seed if seed is None else seed) + 2000
    )
    dataset = generate_classification(scale.base_rows, function=1, rng=rng)
    curve = sample_deviation_curve(
        dataset,
        dt_builder(scale),
        scale.fractions,
        scale.n_reps,
        rng,
        label="table2",
    )
    sig = tuple(s for _, s in curve.significance_of_decrease())
    return SignificanceTable(
        "Table 2", ClassifySpec(scale.base_rows, 1).name(), scale.fractions, sig
    )
