"""Figure 15: misclassification error versus deviation.

The paper plots, for each second dataset (the ``D(2)..D(4)`` function
variants and the ``D + delta`` block extensions), the misclassification
error of the base tree on that dataset against the FOCUS deviation
between the two datasets -- and finds "a strong positive correlation".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.deviation import deviation
from repro.core.monitoring import misclassification_error
from repro.experiments.builders import dt_builder
from repro.experiments.config import Scale
from repro.experiments.deviation_tables import figure_14_datasets
from repro.stats.descriptive import pearson_correlation


@dataclass(frozen=True)
class MePoint:
    """One scatter point of Figure 15."""

    label: str
    deviation: float
    misclassification: float


@dataclass(frozen=True)
class MeCorrelation:
    """The Figure 15 scatter plus its Pearson correlation."""

    points: tuple[MePoint, ...]
    pearson_r: float


def figure_15(scale: Scale) -> MeCorrelation:
    """Compute the ME-vs-deviation scatter of Figure 15.

    Uses the experimental setup of Figure 14 (base ``1M.F1``-style
    dataset, variants F2-F4, and 5% block extensions), excluding the
    same-process row which contributes no meaningful error spread.
    """
    builder = dt_builder(scale)
    base, comparisons = figure_14_datasets(scale)
    base_model = builder(base)

    points: list[MePoint] = []
    for label, other in comparisons:
        if label == "D(1)":
            continue  # same process: not part of the paper's scatter
        other_model = builder(other)
        delta = deviation(base_model, other_model, base, other).value
        me = misclassification_error(base_model, other)
        points.append(MePoint(label, delta, me))

    r = pearson_correlation(
        [p.deviation for p in points], [p.misclassification for p in points]
    )
    return MeCorrelation(tuple(points), r)
