"""Row-count crossover of the qualification verdicts (reproduction study).

The paper's Figure 13/14 significance verdicts for the *subtle* rows --
the same-process dataset D(1) and the 5%-block extensions -- depend on
the bootstrap null's measure-noise floor, which shrinks like
``sqrt(regions / n)`` while the block shift stays constant. This module
sweeps the dataset size and records when each verdict locks in to the
paper's: blocks significant, same-process not (EXPERIMENTS.md shows the
dt-model verdicts resolve by ~100K rows; at 400K D(1) hits the paper's
exact significance of 10).

This study is a contribution of the reproduction rather than a paper
artifact: it quantifies how much data the qualification procedure needs
before a 5% contamination is detectable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.quest_classify import generate_classification
from repro.experiments.builders import dt_builder
from repro.experiments.config import Scale
from repro.stats.bootstrap import deviation_significance


@dataclass(frozen=True)
class CrossoverRow:
    """Verdicts for one dataset size."""

    n_rows: int
    same_process_sig: float
    block_sigs: tuple[float, ...]  # F2, F3, F4 blocks

    @property
    def paper_verdicts_hold(self) -> bool:
        """Same-process insignificant AND every block significant."""
        return self.same_process_sig < 95.0 and all(
            s >= 95.0 for s in self.block_sigs
        )


def fig14_crossover(
    row_counts: tuple[int, ...],
    scale: Scale | None = None,
    n_boot: int = 30,
    block_fraction: float = 0.05,
    seed: int = 4000,
) -> list[CrossoverRow]:
    """Sweep dataset sizes and qualify the Figure 14 subtle rows at each.

    For every ``n`` in ``row_counts``: build the F1 base dataset, a
    half-size same-process dataset, and three ``block_fraction``-sized
    blocks from F2/F3/F4 appended to the base; bootstrap-qualify each
    comparison with the fixed-structure null.
    """
    scale = scale or Scale.small()
    builder = dt_builder(scale)
    out: list[CrossoverRow] = []
    for n in row_counts:
        rng = np.random.default_rng(seed)
        base = generate_classification(n, function=1, rng=rng)
        same = generate_classification(max(n // 2, 10), function=1, rng=rng)
        same_sig = deviation_significance(
            base, same, builder, n_boot=n_boot, rng=rng
        ).significance_percent
        block_sigs = []
        for function in (2, 3, 4):
            block = generate_classification(
                max(int(block_fraction * n), 1), function=function, rng=rng
            )
            extended = base.concat(block)
            block_sigs.append(
                deviation_significance(
                    base, extended, builder, n_boot=n_boot, rng=rng
                ).significance_percent
            )
        out.append(CrossoverRow(n, same_sig, tuple(block_sigs)))
    return out


def format_crossover(rows: list[CrossoverRow]) -> str:
    """Paper-style text rendering of the sweep."""
    lines = [
        "Row-count crossover of Figure 14 verdicts "
        "(same-process should be <95; blocks >=95):",
        f"{'n':>10s} {'D(1) sig':>9s} {'blk F2':>7s} {'blk F3':>7s} "
        f"{'blk F4':>7s}  verdicts",
    ]
    for row in rows:
        mark = "paper" if row.paper_verdicts_hold else "under-powered"
        b = row.block_sigs
        lines.append(
            f"{row.n_rows:>10d} {row.same_process_sig:>9.0f} "
            f"{b[0]:>7.0f} {b[1]:>7.0f} {b[2]:>7.0f}  {mark}"
        )
    return "\n".join(lines)
