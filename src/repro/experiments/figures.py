"""SD-versus-SF curve families (Figures 7-9 and 10-12).

* Figures 7-9: lits-model sample deviations for three dataset sizes
  (1x, 0.75x, 0.5x of the base) at three minimum support levels. The
  paper's shapes: SD falls steeply with SF then flattens past ~0.3, and
  lower support levels sit on higher curves (harder models need bigger
  samples).
* Figures 10-12: dt-model sample deviations for three dataset sizes and
  classification functions F1-F4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.quest_basket import generate_basket
from repro.data.quest_classify import generate_classification
from repro.experiments.builders import dt_builder, lits_builder
from repro.experiments.config import Scale
from repro.experiments.naming import BasketSpec, ClassifySpec
from repro.experiments.sample_size import (
    SampleDeviationCurve,
    sample_deviation_curve,
)


@dataclass(frozen=True)
class CurveFamily:
    """One figure: several labelled SD-vs-SF curves over one dataset."""

    figure: str
    dataset_name: str
    curves: tuple[SampleDeviationCurve, ...]


def lits_sd_family(
    scale: Scale, n_transactions: int, figure: str, seed_offset: int = 0
) -> CurveFamily:
    """One of Figures 7-9: SD vs SF at each support level of the scale."""
    rng = np.random.default_rng(scale.seed + seed_offset)
    dataset = generate_basket(
        n_transactions,
        n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns,
        avg_pattern_len=scale.avg_pattern_len,
        rng=rng,
    )
    spec = BasketSpec(
        n_transactions,
        scale.avg_transaction_len,
        scale.n_items,
        scale.n_patterns,
        scale.avg_pattern_len,
    )
    curves = []
    for min_support in scale.min_supports:
        curve = sample_deviation_curve(
            dataset,
            lits_builder(scale, min_support),
            scale.fractions,
            scale.n_reps,
            rng,
            label=f"f_a,g_sum;minSup={min_support:g}",
        )
        curves.append(curve)
    return CurveFamily(figure, spec.name(), tuple(curves))


def dt_sd_family(
    scale: Scale,
    n_rows: int,
    figure: str,
    functions: tuple[int, ...] = (1, 2, 3, 4),
    seed_offset: int = 0,
) -> CurveFamily:
    """One of Figures 10-12: SD vs SF per classification function."""
    rng = np.random.default_rng(scale.seed + 100 + seed_offset)
    curves = []
    for function in functions:
        dataset = generate_classification(n_rows, function=function, rng=rng)
        curve = sample_deviation_curve(
            dataset,
            dt_builder(scale),
            scale.fractions,
            scale.n_reps,
            rng,
            label=f"f_a,g_sum:F{function}",
        )
        curves.append(curve)
    name = ClassifySpec(n_rows, 0).name().replace(".F0", " tuples")
    return CurveFamily(figure, name, tuple(curves))


def figures_7_to_9(scale: Scale) -> list[CurveFamily]:
    """The three lits SD-vs-SF figures (sizes 1x, 0.75x, 0.5x)."""
    sizes = scale.dataset_sizes()
    return [
        lits_sd_family(scale, sizes[0], "Figure 7", seed_offset=0),
        lits_sd_family(scale, sizes[1], "Figure 8", seed_offset=1),
        lits_sd_family(scale, sizes[2], "Figure 9", seed_offset=2),
    ]


def figures_10_to_12(scale: Scale) -> list[CurveFamily]:
    """The three dt SD-vs-SF figures (sizes 1x, 0.75x, 0.5x)."""
    sizes = scale.row_sizes()
    return [
        dt_sd_family(scale, sizes[0], "Figure 10", seed_offset=0),
        dt_sd_family(scale, sizes[1], "Figure 11", seed_offset=1),
        dt_sd_family(scale, sizes[2], "Figure 12", seed_offset=2),
    ]
