"""Run every table and figure of the paper and print paper-style output.

Usage::

    python -m repro.experiments.runner --scale tiny --experiment all
    python -m repro.experiments.runner --scale small --experiment table1

Each experiment prints the same rows/series the paper reports (Tables
1-2, Figures 7-15). See EXPERIMENTS.md for the recorded paper-vs-measured
comparison.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.experiments.config import Scale, get_scale
from repro.experiments.deviation_tables import figure_13, figure_14
from repro.experiments.figures import figures_7_to_9, figures_10_to_12
from repro.experiments.me_correlation import figure_15
from repro.experiments.reporting import format_curves, format_table
from repro.experiments.significance_tables import table_1, table_2


def run_table_1(scale: Scale) -> str:
    result = table_1(scale)
    rows = result.rows()
    out = [
        f"Table 1 ({result.dataset_name}): lits-models -- % significance of "
        f"increase in representativeness with sample size",
        format_table(
            ["Sample Fraction", *[c[0] for c in rows]],
            [["Significance", *[c[1] for c in rows]]],
        ),
    ]
    return "\n".join(out)


def run_table_2(scale: Scale) -> str:
    result = table_2(scale)
    rows = result.rows()
    out = [
        f"Table 2 ({result.dataset_name}): dt-models -- % significance of "
        f"decrease in sample deviation with sample fraction",
        format_table(
            ["Sample Fraction", *[c[0] for c in rows]],
            [["Significance", *[c[1] for c in rows]]],
        ),
    ]
    return "\n".join(out)


def run_figures_7_9(scale: Scale) -> str:
    out = []
    for family in figures_7_to_9(scale):
        series = [(c.label, list(c.means())) for c in family.curves]
        out.append(f"{family.figure}: SD vs SF -- lits-models: {family.dataset_name}")
        out.append(format_curves(list(family.curves[0].fractions), series))
        out.append(
            format_table(
                ["minsup \\ SF", *[f"{f:g}" for f in family.curves[0].fractions]],
                [
                    [c.label, *[f"{v:.4g}" for v in c.means()]]
                    for c in family.curves
                ],
            )
        )
    return "\n\n".join(out)


def run_figures_10_12(scale: Scale) -> str:
    out = []
    for family in figures_10_to_12(scale):
        series = [(c.label, list(c.means())) for c in family.curves]
        out.append(f"{family.figure}: SD vs SF -- dt-models: {family.dataset_name}")
        out.append(format_curves(list(family.curves[0].fractions), series))
        out.append(
            format_table(
                ["function \\ SF", *[f"{f:g}" for f in family.curves[0].fractions]],
                [
                    [c.label, *[f"{v:.4g}" for v in c.means()]]
                    for c in family.curves
                ],
            )
        )
    return "\n\n".join(out)


def run_figure_13(scale: Scale) -> str:
    rows = figure_13(scale)
    return "\n".join(
        [
            "Figure 13: lits deviations with D (base dataset)",
            format_table(
                [
                    "Dataset",
                    "delta",
                    "% sig(delta)",
                    "delta*",
                    "t(delta) s",
                    "t(delta*) s",
                ],
                [
                    [
                        r.label,
                        f"{r.delta:.4f}",
                        f"{r.significance:.0f}",
                        f"{r.delta_star:.4f}",
                        f"{r.time_delta:.3f}",
                        f"{r.time_delta_star:.4f}",
                    ]
                    for r in rows
                ],
            ),
        ]
    )


def run_figure_14(scale: Scale) -> str:
    rows = figure_14(scale)
    return "\n".join(
        [
            "Figure 14: dt deviations with D (base dataset, F1)",
            format_table(
                ["ID", "delta", "% sig(delta)"],
                [
                    [r.label, f"{r.delta:.4f}", f"{r.significance:.0f}"]
                    for r in rows
                ],
            ),
        ]
    )


def run_figure_15(scale: Scale) -> str:
    result = figure_15(scale)
    return "\n".join(
        [
            "Figure 15: misclassification error vs deviation "
            f"(Pearson r = {result.pearson_r:.3f})",
            format_table(
                ["Dataset", "Deviation", "ME"],
                [
                    [p.label, f"{p.deviation:.4f}", f"{p.misclassification:.4f}"]
                    for p in result.points
                ],
            ),
        ]
    )


def run_crossover(scale: Scale) -> str:
    """Reproduction study: row counts at which the Fig. 14 verdicts hold."""
    from repro.experiments.crossover import fig14_crossover, format_crossover

    row_counts = (scale.base_rows, 5 * scale.base_rows, 20 * scale.base_rows)
    rows = fig14_crossover(row_counts, scale=scale, n_boot=scale.n_boot)
    return format_crossover(rows)


EXPERIMENTS = {
    "table1": run_table_1,
    "table2": run_table_2,
    "fig7-9": run_figures_7_9,
    "fig10-12": run_figures_10_12,
    "fig13": run_figure_13,
    "fig14": run_figure_14,
    "fig15": run_figure_15,
}

#: Additional studies not in the paper; run explicitly by name.
EXTRA_EXPERIMENTS = {"crossover": run_crossover}


def run_all(scale: Scale, stream=None) -> None:
    """Run every experiment, printing results as they complete."""
    stream = stream or sys.stdout
    for name, runner in EXPERIMENTS.items():
        start = time.perf_counter()
        output = runner(scale)
        elapsed = time.perf_counter() - start
        print(f"\n=== {name} (scale={scale.name}, {elapsed:.1f}s) ===", file=stream)
        print(output, file=stream)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", default="tiny", choices=["tiny", "small", "paper"]
    )
    parser.add_argument(
        "--experiment",
        default="all",
        choices=["all", *EXPERIMENTS, *EXTRA_EXPERIMENTS],
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the scale's base seed: every generator and every "
        "bootstrap rng derives from it, so published tables are "
        "reproducible end to end (default: the scale's built-in seed)",
    )
    parser.add_argument(
        "--n-boot", type=int, default=None,
        help="override the scale's bootstrap resample count (the "
        "count-space engine makes large values cheap)",
    )
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.n_boot is not None:
        overrides["n_boot"] = args.n_boot
    if overrides:
        scale = dataclasses.replace(scale, **overrides)
    if args.experiment == "all":
        run_all(scale)
    elif args.experiment in EXTRA_EXPERIMENTS:
        print(EXTRA_EXPERIMENTS[args.experiment](scale))
    else:
        print(EXPERIMENTS[args.experiment](scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
