"""Model-builder factories shared by the experiment harness.

A *model builder* is a callable ``dataset -> Model``; the bootstrap
qualification procedure and the sample-deviation machinery re-invoke it
on every resample, so the entire mining pipeline sits behind this one
seam.
"""

from __future__ import annotations

from typing import Callable

from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.experiments.config import Scale
from repro.mining.tree.builder import TreeParams


def lits_builder(scale: Scale, min_support: float) -> Callable:
    """A lits-model builder at the given support level."""

    def build(dataset) -> LitsModel:
        return LitsModel.mine(
            dataset, min_support, max_len=scale.max_itemset_len
        )

    return build


def dt_builder(scale: Scale) -> Callable:
    """A dt-model builder with scale-appropriate stopping rules."""

    def build(dataset) -> DtModel:
        params = TreeParams(
            max_depth=scale.tree_max_depth,
            min_leaf=scale.tree_min_leaf(len(dataset)),
        )
        return DtModel.fit(dataset, params)

    return build
