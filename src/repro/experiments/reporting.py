"""Plain-text rendering of experiment results (tables and curves).

The harness prints the same rows/series the paper reports; these helpers
format them as aligned ASCII tables and simple character plots so a
benchmark run's output can be eyeballed against the paper's figures.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """An aligned ASCII table with a header rule."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in str_rows
    ]
    return "\n".join([line, rule, *body])


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_curves(
    xs: Sequence[float],
    series: Sequence[tuple[str, Sequence[float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "SF",
    y_label: str = "SD",
) -> str:
    """A character-cell line plot of several series over shared x values.

    Each series is drawn with its own marker; the legend maps markers to
    labels. Good enough to see the shape of the paper's SD-vs-SF curves
    in a terminal.
    """
    markers = "*o+x#@%&"
    all_y = [y for _, ys in series for y in ys]
    if not all_y:
        return "(no data)"
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (_, ys) in enumerate(series):
        marker = markers[s_idx % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    for i, row_cells in enumerate(grid):
        if i == 0:
            prefix = f"{y_max:8.4g} |"
        elif i == height - 1:
            prefix = f"{y_min:8.4g} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row_cells))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f" {x_min:g}"
        + " " * max(1, width - len(f"{x_min:g}") - len(f"{x_max:g}") - 2)
        + f"{x_max:g}  ({x_label})"
    )
    for s_idx, (label, _) in enumerate(series):
        lines.append(f"  {markers[s_idx % len(markers)]} = {label}")
    lines.append(f"  (y axis: {y_label})")
    return "\n".join(lines)
