"""Experiment scaling (laptop-scale defaults, paper-scale on request).

The paper's testbed datasets had 0.5M-1M rows and its Wilcoxon tables
used 50 replicates per sample fraction. Re-running that takes hours on
a laptop without changing any qualitative conclusion, so every
experiment takes a :class:`Scale`:

* :meth:`Scale.tiny` -- seconds; used by the benchmark suite.
* :meth:`Scale.small` -- minutes; the defaults behind EXPERIMENTS.md.
* :meth:`Scale.paper` -- the paper's sizes (1M transactions etc.).

All row counts are derived from ``base_transactions`` / ``base_rows`` so
the three-dataset-size figure families (7-9, 10-12) keep the paper's
1 : 0.75 : 0.5 ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

#: The sample fractions of Tables 1-2 and Figures 7-12.
PAPER_FRACTIONS = (0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass(frozen=True)
class Scale:
    """Knobs controlling dataset sizes and replicate counts.

    Attributes
    ----------
    base_transactions:
        Size of the base market-basket dataset (the paper's 1M).
    n_items:
        Item universe (paper: 1000).
    avg_transaction_len:
        Mean transaction length (paper: 20).
    n_patterns:
        Potential patterns in the generator pool (paper: 4000).
    avg_pattern_len:
        Mean pattern length (paper: 4).
    min_supports:
        The minimum support sweep of Figures 7-9 (paper: 1%, 0.8%, 0.6%).
    base_rows:
        Size of the base classification dataset (the paper's 1M).
    fractions:
        Sample fractions for the SD-vs-SF studies.
    n_reps:
        Replicates per fraction for the Wilcoxon tables (paper: 50).
    n_boot:
        Bootstrap resamples for significance estimation.
    max_itemset_len:
        Cap on mined itemset size (keeps Apriori's level count bounded
        at tiny scales; ``None`` = unbounded, as in the paper).
    tree_max_depth / tree_min_leaf_frac:
        dt-model induction knobs; ``min_leaf = max(10, frac * n)``.
    """

    name: str
    base_transactions: int
    n_items: int
    avg_transaction_len: int
    n_patterns: int
    avg_pattern_len: int
    min_supports: tuple[float, ...]
    base_rows: int
    fractions: tuple[float, ...] = PAPER_FRACTIONS
    n_reps: int = 15
    n_boot: int = 30
    max_itemset_len: int | None = 4
    tree_max_depth: int = 8
    tree_min_leaf_frac: float = 0.005
    seed: int = 1999

    def __post_init__(self) -> None:
        if self.base_transactions < 10 or self.base_rows < 10:
            raise InvalidParameterError("base sizes must be at least 10")
        if self.n_reps < 2:
            raise InvalidParameterError("n_reps must be >= 2 for Wilcoxon tests")

    @staticmethod
    def tiny() -> "Scale":
        """Seconds-scale: benchmark and CI defaults."""
        return Scale(
            name="tiny",
            base_transactions=4_000,
            n_items=100,
            avg_transaction_len=8,
            n_patterns=150,
            avg_pattern_len=4,
            min_supports=(0.02, 0.015, 0.01),
            base_rows=4_000,
            fractions=(0.05, 0.1, 0.2, 0.4, 0.6, 0.8),
            n_reps=6,
            n_boot=12,
            max_itemset_len=3,
            tree_max_depth=6,
            tree_min_leaf_frac=0.01,
        )

    @staticmethod
    def small() -> "Scale":
        """Minutes-scale: the EXPERIMENTS.md configuration."""
        return Scale(
            name="small",
            base_transactions=20_000,
            n_items=250,
            avg_transaction_len=10,
            n_patterns=500,
            avg_pattern_len=4,
            min_supports=(0.01, 0.008, 0.006),
            base_rows=20_000,
            n_reps=15,
            n_boot=30,
            max_itemset_len=4,
            tree_max_depth=8,
            tree_min_leaf_frac=0.005,
        )

    @staticmethod
    def paper() -> "Scale":
        """The paper's sizes; expect many hours of runtime."""
        return Scale(
            name="paper",
            base_transactions=1_000_000,
            n_items=1_000,
            avg_transaction_len=20,
            n_patterns=4_000,
            avg_pattern_len=4,
            min_supports=(0.01, 0.008, 0.006),
            base_rows=1_000_000,
            n_reps=50,
            n_boot=100,
            max_itemset_len=None,
            tree_max_depth=12,
            tree_min_leaf_frac=0.001,
        )

    def tree_min_leaf(self, n_rows: int) -> int:
        """The min-leaf size for a dataset of ``n_rows``."""
        return max(10, int(self.tree_min_leaf_frac * n_rows))

    def dataset_sizes(self) -> tuple[int, int, int]:
        """The 1x / 0.75x / 0.5x sizes of the figure families."""
        return (
            self.base_transactions,
            int(0.75 * self.base_transactions),
            int(0.5 * self.base_transactions),
        )

    def row_sizes(self) -> tuple[int, int, int]:
        """Same ratios for classification rows (Figures 10-12)."""
        return (
            self.base_rows,
            int(0.75 * self.base_rows),
            int(0.5 * self.base_rows),
        )


SCALES = {"tiny": Scale.tiny, "small": Scale.small, "paper": Scale.paper}


def get_scale(name: str) -> Scale:
    """Look up a named scale (``tiny`` / ``small`` / ``paper``)."""
    if name not in SCALES:
        raise InvalidParameterError(
            f"unknown scale {name!r}; choose from {sorted(SCALES)}"
        )
    return SCALES[name]()
