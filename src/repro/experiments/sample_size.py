"""Sample-deviation machinery (Section 6: effect of sample size).

The *sample deviation* (SD) of a random sample ``S`` drawn from ``D`` is
``delta(M, M_S)`` -- the FOCUS deviation between the model induced by the
full dataset and the model induced by the sample. Section 6 studies SD
as a function of the sample fraction (SF) and tests, with the Wilcoxon
rank-sum test over sets of replicates, whether each increase in sample
size decreases SD significantly (Tables 1 and 2).

Everything here is model-class agnostic: pass a ``model_builder``
callable and the same machinery produces the lits curves of Figures 7-9
and the dt curves of Figures 10-12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.aggregate import SUM, AggregateFunction
from repro.core.deviation import deviation
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.data.sampling import sample
from repro.errors import InvalidParameterError
from repro.stats.wilcoxon import rank_sum_test


@dataclass(frozen=True)
class SampleDeviationCurve:
    """SD replicates per sample fraction, plus the summary curve."""

    fractions: tuple[float, ...]
    replicates: dict[float, np.ndarray]
    label: str = ""

    def means(self) -> np.ndarray:
        """Mean SD per fraction (the curves of Figures 7-12)."""
        return np.array([self.replicates[f].mean() for f in self.fractions])

    def significance_of_decrease(self) -> list[tuple[float, float]]:
        """Per-fraction Wilcoxon significance of the SD decrease.

        Entry ``i`` tests fraction ``s_i`` against ``s_{i+1}``: the
        alternative is that SDs at the larger fraction are smaller. The
        returned significance is the paper's ``100(1 - alpha)%``. The
        last fraction has no successor, matching the '-' cells of
        Tables 1 and 2.
        """
        out: list[tuple[float, float]] = []
        for i in range(len(self.fractions) - 1):
            lower = self.replicates[self.fractions[i]]
            higher = self.replicates[self.fractions[i + 1]]
            result = rank_sum_test(higher, lower, alternative="less")
            out.append((self.fractions[i], result.significance_percent))
        return out


def sample_deviation(
    dataset,
    full_model,
    model_builder: Callable,
    fraction: float,
    rng: np.random.Generator,
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
    replace: bool = True,
) -> float:
    """One SD draw: sample, re-induce, and measure ``delta(M, M_S)``."""
    s = sample(dataset, fraction, rng, replace=replace)
    sample_model = model_builder(s)
    return deviation(full_model, sample_model, dataset, s, f=f, g=g).value


def sample_deviation_curve(
    dataset,
    model_builder: Callable,
    fractions: Sequence[float],
    n_reps: int,
    rng: np.random.Generator,
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
    replace: bool = True,
    label: str = "",
) -> SampleDeviationCurve:
    """SD replicates for every sample fraction.

    The full model is induced once; each replicate draws a fresh sample
    of the given fraction and re-induces the sample model.
    """
    if n_reps < 1:
        raise InvalidParameterError("n_reps must be >= 1")
    full_model = model_builder(dataset)
    replicates: dict[float, np.ndarray] = {}
    for fraction in fractions:
        values = np.empty(n_reps)
        for r in range(n_reps):
            values[r] = sample_deviation(
                dataset,
                full_model,
                model_builder,
                fraction,
                rng,
                f=f,
                g=g,
                replace=replace,
            )
        replicates[fraction] = values
    return SampleDeviationCurve(tuple(fractions), replicates, label=label)
