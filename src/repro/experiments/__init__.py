"""Scaled re-creations of every table and figure in the paper."""

from repro.experiments.builders import dt_builder, lits_builder
from repro.experiments.config import PAPER_FRACTIONS, SCALES, Scale, get_scale
from repro.experiments.crossover import (
    CrossoverRow,
    fig14_crossover,
    format_crossover,
)
from repro.experiments.deviation_tables import (
    DtDeviationRow,
    LitsDeviationRow,
    figure_13,
    figure_14,
    figure_14_datasets,
)
from repro.experiments.figures import (
    CurveFamily,
    dt_sd_family,
    figures_7_to_9,
    figures_10_to_12,
    lits_sd_family,
)
from repro.experiments.me_correlation import MeCorrelation, MePoint, figure_15
from repro.experiments.naming import (
    BasketSpec,
    ClassifySpec,
    parse_basket_name,
    parse_classify_name,
)
from repro.experiments.reporting import format_curves, format_table
from repro.experiments.sample_size import (
    SampleDeviationCurve,
    sample_deviation,
    sample_deviation_curve,
)
from repro.experiments.significance_tables import (
    SignificanceTable,
    table_1,
    table_2,
)
from repro.experiments.windows import (
    DeviationSeries,
    deviation_series,
    sliding_windows,
    tumbling_windows,
)

__all__ = [
    "BasketSpec",
    "ClassifySpec",
    "CrossoverRow",
    "CurveFamily",
    "DeviationSeries",
    "DtDeviationRow",
    "LitsDeviationRow",
    "MeCorrelation",
    "MePoint",
    "PAPER_FRACTIONS",
    "SCALES",
    "SampleDeviationCurve",
    "Scale",
    "SignificanceTable",
    "deviation_series",
    "dt_builder",
    "fig14_crossover",
    "format_crossover",
    "dt_sd_family",
    "figure_13",
    "figure_14",
    "figure_14_datasets",
    "figure_15",
    "figures_10_to_12",
    "figures_7_to_9",
    "format_curves",
    "format_table",
    "get_scale",
    "lits_builder",
    "lits_sd_family",
    "parse_basket_name",
    "parse_classify_name",
    "sample_deviation",
    "sample_deviation_curve",
    "sliding_windows",
    "table_1",
    "table_2",
    "tumbling_windows",
]
