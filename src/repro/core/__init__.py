"""FOCUS core: 2-component models, GCRs, and the deviation measure."""

from repro.core.aggregate import AGGREGATE_FUNCTIONS, MAX, SUM, AggregateFunction
from repro.core.attribute import (
    Attribute,
    AttributeKind,
    AttributeSpace,
    categorical,
    numeric,
)
from repro.core.cluster_model import ClusterModel
from repro.core.deviation import (
    DeviationResult,
    RegionDeviation,
    deviation,
    deviation_from_counts,
    deviation_many,
    deviation_over_structure,
    deviation_over_structure_many,
)
from repro.core.difference import (
    ABSOLUTE,
    DIFFERENCE_FUNCTIONS,
    SCALED,
    DifferenceFunction,
    chi_squared_difference,
)
from repro.core.dtree_model import DtModel
from repro.core.embedding import (
    classical_mds,
    deviation_matrix,
    embed_models,
    upper_bound_matrix,
)
from repro.core.focus import (
    box_focus,
    focussed_deviation,
    focussed_structure,
    itemset_focus,
)
from repro.core.gcr import gcr
from repro.core.grouping import Grouping, agglomerate, group_stores
from repro.core.lits import LitsModel
from repro.core.model import LitsStructure, Model, PartitionStructure, Structure
from repro.core.monitor import ChangeMonitor, Observation
from repro.core.partition_plan import (
    LabelEncoder,
    PartitionCountingPlan,
    cell_assignments,
)
from repro.core.monitoring import (
    chi_squared_statistic,
    chi_squared_statistics,
    misclassification_error,
    misclassification_error_focus,
    misclassification_error_via_focus,
    misclassification_errors,
    predicted_dataset,
)
from repro.core.operators import (
    RankedRegion,
    bottom_n,
    itemsets_over,
    min_region,
    rank,
    region_set_union,
    structural_difference,
    structural_intersection,
    structural_union,
    top,
    top_n,
)
from repro.core.parser import (
    format_predicate,
    format_region,
    parse_predicate,
    parse_region,
)
from repro.core.predicate import (
    Conjunction,
    Interval,
    TRUE,
    ValueSet,
    interval_constraint,
    value_constraint,
)
from repro.core.refinement import refines, verify_measure_additivity
from repro.core.region import BoxRegion, ItemsetRegion, Region
from repro.core.upper_bound import UpperBoundResult, upper_bound_deviation

__all__ = [
    "ABSOLUTE",
    "AGGREGATE_FUNCTIONS",
    "Attribute",
    "AttributeKind",
    "AttributeSpace",
    "AggregateFunction",
    "BoxRegion",
    "ChangeMonitor",
    "ClusterModel",
    "Conjunction",
    "DIFFERENCE_FUNCTIONS",
    "DeviationResult",
    "DifferenceFunction",
    "DtModel",
    "Grouping",
    "Interval",
    "ItemsetRegion",
    "LitsModel",
    "LitsStructure",
    "MAX",
    "Model",
    "Observation",
    "LabelEncoder",
    "PartitionCountingPlan",
    "PartitionStructure",
    "cell_assignments",
    "RankedRegion",
    "Region",
    "RegionDeviation",
    "SCALED",
    "SUM",
    "Structure",
    "TRUE",
    "UpperBoundResult",
    "ValueSet",
    "agglomerate",
    "bottom_n",
    "box_focus",
    "categorical",
    "chi_squared_difference",
    "chi_squared_statistic",
    "chi_squared_statistics",
    "classical_mds",
    "deviation",
    "deviation_from_counts",
    "deviation_many",
    "deviation_matrix",
    "deviation_over_structure",
    "deviation_over_structure_many",
    "embed_models",
    "format_predicate",
    "format_region",
    "group_stores",
    "focussed_deviation",
    "focussed_structure",
    "gcr",
    "interval_constraint",
    "itemset_focus",
    "itemsets_over",
    "min_region",
    "misclassification_error",
    "misclassification_error_focus",
    "misclassification_error_via_focus",
    "misclassification_errors",
    "numeric",
    "parse_predicate",
    "parse_region",
    "predicted_dataset",
    "rank",
    "refines",
    "region_set_union",
    "structural_difference",
    "structural_intersection",
    "structural_union",
    "top",
    "top_n",
    "upper_bound_deviation",
    "upper_bound_matrix",
    "value_constraint",
    "verify_measure_additivity",
]
