"""The ``delta*`` upper bound for lits-model deviations (Section 4.1.1).

``delta*`` bounds ``delta_(f_a, g)`` *without scanning either dataset*:
it needs only the two models (itemsets plus their stored supports), which
"will probably fit in main memory, unlike the datasets". Per
Definition 4.1, an itemset frequent in both models contributes the exact
``f_a`` term; an itemset frequent in only one contributes its full
support (its unknown support in the other dataset lies below ``ms``, so
this majorises the true difference).

Theorem 4.2: ``delta*(g) >= delta_(f_a, g)``, ``delta*`` satisfies the
triangle inequality, and it needs no dataset scan -- all three are
enforced by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregate import SUM, AggregateFunction
from repro.core.lits import LitsModel
from repro.errors import IncompatibleModelsError


@dataclass(frozen=True)
class UpperBoundResult:
    """``delta*`` plus its per-itemset breakdown."""

    value: float
    g_name: str
    itemsets: tuple[frozenset[int], ...]
    per_itemset: np.ndarray

    def __float__(self) -> float:
        return self.value


def upper_bound_deviation(
    model1: LitsModel,
    model2: LitsModel,
    g: AggregateFunction = SUM,
) -> UpperBoundResult:
    """Compute ``delta*_(g)(M1, M2)`` from the models alone."""
    for model in (model1, model2):
        if not isinstance(model, LitsModel):
            raise IncompatibleModelsError(
                f"delta* (Definition 4.1) is defined for lits-models only, "
                f"got a {type(model).__name__}"
            )
    union = sorted(
        set(model1.itemsets) | set(model2.itemsets),
        key=lambda s: (len(s), tuple(sorted(s))),
    )
    values = np.empty(len(union))
    for i, itemset in enumerate(union):
        s1 = model1.supports.get(itemset)
        s2 = model2.supports.get(itemset)
        if s1 is not None and s2 is not None:
            values[i] = abs(s1 - s2)
        elif s1 is not None:
            values[i] = s1  # f_a(nu1, 0): support below ms majorised by s1
        else:
            assert s2 is not None
            values[i] = s2
    return UpperBoundResult(
        value=g(values),
        g_name=g.name,
        itemsets=tuple(union),
        per_itemset=values,
    )
