"""Precompiled counting plans for partition structures (dt-/cluster-models).

A :class:`PartitionCountingPlan` is to a
:class:`~repro.core.model.PartitionStructure` what
:class:`~repro.data.transactions.SupportCountingPlan` is to an itemset
collection: everything that can be computed once -- the label encoding
table, the region layout, the focus configuration -- is compiled at
construction, so measuring a snapshot is a single assigner pass plus one
``bincount``, with **no per-row Python loop** anywhere.

Two pieces make repeated measurement cheap:

* **vectorised label routing** -- class labels are encoded with
  ``np.searchsorted`` against a sorted table instead of a per-row dict
  lookup, and a label outside the structure's alphabet raises
  :class:`~repro.errors.IncompatibleModelsError` (naming the offending
  label) instead of a bare ``KeyError``;
* **memoised cell assignments** -- :func:`cell_assignments` caches each
  assigner's pass over a dataset (weakly keyed by the dataset), so a GCR
  overlay that composes two base assigners, a focussed overlay of the
  same structure, and every structure sharing an assigner all reuse one
  scan per dataset. Entries are validated against the dataset length, so
  growable logs that change size are re-assigned, never served stale.
"""

from __future__ import annotations

import weakref
from typing import Sequence

import numpy as np

from repro._typing import AssignerFn, DatasetLike
from repro.errors import IncompatibleModelsError, SchemaError
from repro.obs import metrics

#: dataset (weak) -> {id(assigner): (assigner, n_rows, assignments)}.
#: The assigner object is stored in the entry so an ``id`` reused after
#: garbage collection can never alias a different assigner's pass.
_ASSIGNMENTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Memoised passes kept per dataset. A monitoring loop that builds a
#: fresh model (hence a fresh assigner) per snapshot would otherwise pin
#: one O(rows) array -- and the assigner's whole model -- per snapshot
#: on a long-lived reference dataset. LRU order: hits re-append.
_MAX_PASSES_PER_DATASET = 8


def cell_assignments(assigner: AssignerFn, dataset: DatasetLike) -> np.ndarray:
    """The assigner's row -> cell index pass over ``dataset``, memoised.

    The cache is weakly keyed by the dataset, so it lives exactly as long
    as the dataset does; a cached entry is only served when the assigner
    is the *same object* and the dataset still has the length it was
    assigned at (appendable logs grow, and must be re-assigned). At most
    :data:`_MAX_PASSES_PER_DATASET` passes are retained per dataset,
    evicting least-recently-used, so churning assigners (one model per
    monitored snapshot) cannot accumulate unboundedly.
    """
    try:
        per_dataset = _ASSIGNMENTS.get(dataset)
        if per_dataset is None:
            per_dataset = {}
            _ASSIGNMENTS[dataset] = per_dataset
    except TypeError:  # not weak-referenceable: just compute
        metrics().inc("partition.assign.computed")
        return np.asarray(assigner(dataset), dtype=np.int64)
    n = len(dataset)
    key = id(assigner)
    entry = per_dataset.get(key)
    if entry is not None:
        cached_assigner, cached_n, cached = entry
        if cached_assigner is assigner and cached_n == n:
            # refresh LRU position (dicts preserve insertion order)
            del per_dataset[key]
            per_dataset[key] = entry
            metrics().inc("partition.assign.memo_hits")
            return cached
    metrics().inc("partition.assign.computed")
    out = np.asarray(assigner(dataset), dtype=np.int64)
    per_dataset.pop(key, None)
    per_dataset[key] = (assigner, n, out)
    while len(per_dataset) > _MAX_PASSES_PER_DATASET:
        per_dataset.pop(next(iter(per_dataset)))
    return out


class LabelEncoder:
    """Vectorised value -> position encoding over a fixed alphabet.

    Encodes a whole column with one ``searchsorted`` against the sorted
    alphabet; positions refer to the *declaration order* of ``values``.
    Out-of-alphabet entries are reported via the returned mask so the
    caller can raise its own error type (``IncompatibleModelsError`` for
    class labels, ``SchemaError`` for categorical attribute codes).
    """

    __slots__ = ("values", "_sorted", "_code_of_sorted")

    def __init__(self, values: Sequence[int]) -> None:
        self.values = tuple(int(v) for v in values)
        table = np.asarray(self.values, dtype=np.int64)
        order = np.argsort(table, kind="stable")
        self._sorted = table[order]
        self._code_of_sorted = order.astype(np.int64)

    def encode(self, column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(codes, bad)``: declaration-order codes plus an out-of-alphabet mask."""
        raw = np.asarray(column)
        if raw.dtype.kind != "i":
            raw = raw.astype(np.int64)
        pos = np.searchsorted(self._sorted, raw)
        pos = np.minimum(pos, len(self._sorted) - 1)
        bad = self._sorted[pos] != raw
        return self._code_of_sorted[pos], bad


class PartitionCountingPlan:
    """Precompiled measurement of one partition structure.

    Parameters
    ----------
    structure:
        The :class:`~repro.core.model.PartitionStructure` to measure.
        The plan captures its cells, class labels, assigner, and focus
        configuration at construction; structures are immutable, so the
        plan stays valid for the structure's lifetime.
    """

    __slots__ = (
        "structure",
        "n_cells",
        "n_classes",
        "_assigner",
        "_labels",
        "_encoder",
        "_focus_predicate",
        "_focus_class",
    )

    def __init__(self, structure: "PartitionStructure") -> None:
        self.structure = structure
        self.n_cells = len(structure.cells)
        self._assigner = structure.assigner
        self._labels = tuple(structure.class_labels)
        self.n_classes = len(self._labels)
        self._encoder = LabelEncoder(self._labels) if self._labels else None
        self._focus_predicate = structure.focus_predicate
        self._focus_class = structure.focus_class

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def label_codes(self, y: np.ndarray) -> np.ndarray:
        """Class labels -> structure-order codes, vectorised and validated."""
        codes, bad = self._encoder.encode(y)
        if bad.any():
            offending = int(np.asarray(y)[np.argmax(bad)])
            raise IncompatibleModelsError(
                f"snapshot contains class label {offending}, outside the "
                f"structure's class labels {self._labels}"
            )
        return codes

    def cell_assignments(self, dataset: DatasetLike) -> np.ndarray:
        """Row -> cell index for ``dataset`` (memoised; see module docs)."""
        return cell_assignments(self._assigner, dataset)

    @property
    def n_regions(self) -> int:
        """Number of regions (= length of every counts vector)."""
        if self.n_classes and self._focus_class is None:
            return self.n_cells * self.n_classes
        return self.n_cells

    def region_assignments(self, dataset: DatasetLike) -> np.ndarray:
        """Row -> region index, with :attr:`n_regions` as the excluded bin.

        The per-row form of :meth:`counts`: entry ``i`` is the index of
        the region row ``i`` falls in (structure order), or the
        sentinel ``n_regions`` when an active focus predicate or class
        restriction excludes the row. ``counts`` equals the bincount of
        this vector with the sentinel bin dropped (property-tested);
        the count-space bootstrap consumes the vector directly so
        resampled region counts become weighted bincounts.
        """
        cell_idx = self.cell_assignments(dataset)
        n_regions = self.n_regions
        excluded: np.ndarray | None = None
        if self._focus_predicate is not None:
            excluded = ~dataset.predicate_mask(self._focus_predicate)

        if self.n_classes and self._focus_class is None:
            y = dataset.y
            if y is None:
                raise IncompatibleModelsError(
                    "structure has class regions but the dataset is unlabelled"
                )
            flat = cell_idx * self.n_classes + self.label_codes(y)
        else:
            flat = cell_idx.astype(np.int64, copy=True)
            if self._focus_class is not None:
                if dataset.y is None:
                    raise SchemaError(
                        "structure restricts the class but the dataset is "
                        "unlabelled"
                    )
                class_excluded = dataset.y != self._focus_class
                excluded = (
                    class_excluded
                    if excluded is None
                    else excluded | class_excluded
                )
        if excluded is not None:
            flat = np.where(excluded, n_regions, flat)
        return flat

    # ------------------------------------------------------------------ #
    # Counting
    # ------------------------------------------------------------------ #

    def counts(self, dataset: DatasetLike) -> np.ndarray:
        """Absolute counts per region, aligned with ``structure.regions``.

        One (memoised) assigner pass plus one ``bincount``; the label
        routing is a vectorised table lookup.
        """
        cell_idx = self.cell_assignments(dataset)
        keep: np.ndarray | None = None
        if self._focus_predicate is not None:
            keep = dataset.predicate_mask(self._focus_predicate)

        if self.n_classes and self._focus_class is None:
            y = dataset.y
            if y is None:
                raise IncompatibleModelsError(
                    "structure has class regions but the dataset is unlabelled"
                )
            flat = cell_idx * self.n_classes + self.label_codes(y)
            if keep is not None:
                flat = flat[keep]
            return np.bincount(
                flat, minlength=self.n_cells * self.n_classes
            ).astype(np.int64)

        if self._focus_class is not None:
            if dataset.y is None:
                # Mirrors TabularDataset.box_mask: a class-restricted
                # region cannot be measured against unlabelled data, and
                # silently dropping the restriction miscounts.
                raise SchemaError(
                    "structure restricts the class but the dataset is "
                    "unlabelled"
                )
            class_mask = dataset.y == self._focus_class
            keep = class_mask if keep is None else keep & class_mask
        if keep is not None:
            cell_idx = cell_idx[keep]
        return np.bincount(cell_idx, minlength=self.n_cells).astype(np.int64)

    def counts_many(self, datasets: Sequence[DatasetLike]) -> list[np.ndarray]:
        """Counts of many snapshots, reusing this plan's compiled tables.

        Each snapshot still costs exactly one assigner pass (memoised,
        so a snapshot appearing twice -- or already assigned through a
        GCR overlay sharing the assigner -- is not re-scanned).
        """
        return [self.counts(d) for d in datasets]
