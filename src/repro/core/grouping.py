"""Grouping datasets by pairwise deviation (the paper's marketing example).

From the introduction: "based on the deviation between pairs of
datasets, a set of stores can be grouped together and earmarked for the
same marketing strategy." This module implements that workflow:
agglomerative clustering (single / complete / average linkage, built
from scratch) over any pairwise deviation matrix from
:mod:`repro.core.embedding`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError

LINKAGES = ("single", "complete", "average")


@dataclass(frozen=True)
class MergeStep:
    """One agglomeration: which two clusters merged, at what distance."""

    cluster_a: tuple[int, ...]
    cluster_b: tuple[int, ...]
    distance: float


@dataclass(frozen=True)
class Grouping:
    """A flat clustering plus the dendrogram that produced it."""

    labels: tuple[int, ...]
    merges: tuple[MergeStep, ...]

    @property
    def n_groups(self) -> int:
        return len(set(self.labels))

    def members(self, group: int) -> tuple[int, ...]:
        return tuple(i for i, g in enumerate(self.labels) if g == group)


def _linkage_distance(
    distances: np.ndarray, a: tuple[int, ...], b: tuple[int, ...], linkage: str
) -> float:
    block = distances[np.ix_(a, b)]
    if linkage == "single":
        return float(block.min())
    if linkage == "complete":
        return float(block.max())
    return float(block.mean())


def agglomerate(
    distances: np.ndarray, n_groups: int, linkage: str = "average"
) -> Grouping:
    """Agglomerative clustering of items given their distance matrix."""
    distances = np.asarray(distances, dtype=np.float64)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise InvalidParameterError(
            f"distance matrix must be square, got shape {distances.shape}"
        )
    n = distances.shape[0]
    if n == 0:
        raise InvalidParameterError(
            "cannot group an empty fleet: the distance matrix has no rows"
        )
    if not np.allclose(distances, distances.T, atol=1e-9):
        raise InvalidParameterError(
            "distance matrix must be symmetric (deviation matrices are; "
            "check how this one was assembled)"
        )
    if not 1 <= n_groups <= n:
        raise InvalidParameterError(f"n_groups must be in [1, {n}]")
    if linkage not in LINKAGES:
        raise InvalidParameterError(
            f"linkage must be one of {LINKAGES}, got {linkage!r}"
        )

    clusters: list[tuple[int, ...]] = [(i,) for i in range(n)]
    merges: list[MergeStep] = []
    while len(clusters) > n_groups:
        best: tuple[float, int, int] | None = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                d = _linkage_distance(distances, clusters[i], clusters[j], linkage)
                if best is None or d < best[0]:
                    best = (d, i, j)
        assert best is not None
        d, i, j = best
        merges.append(MergeStep(clusters[i], clusters[j], d))
        merged = tuple(sorted(clusters[i] + clusters[j]))
        clusters = [
            *(c for idx, c in enumerate(clusters) if idx not in (i, j)),
            merged,
        ]

    labels = [0] * n
    for group, cluster in enumerate(sorted(clusters)):
        for member in cluster:
            labels[member] = group
    return Grouping(tuple(labels), tuple(merges))


def group_stores(
    distance_matrix: np.ndarray,
    n_groups: int,
    linkage: str = "average",
    names: Sequence[str] | None = None,
) -> dict[int, list[str | int]]:
    """The marketing workflow: group labels -> member names (or indices)."""
    distance_matrix = np.asarray(distance_matrix, dtype=np.float64)
    if names is not None and len(names) != distance_matrix.shape[0]:
        raise InvalidParameterError(
            f"names must align with the matrix: got {len(names)} names for "
            f"{distance_matrix.shape[0]} stores"
        )
    grouping = agglomerate(distance_matrix, n_groups, linkage)
    out: dict[int, list[str | int]] = {}
    for group in range(grouping.n_groups):
        members = grouping.members(group)
        out[group] = [
            names[m] if names is not None else m for m in members
        ]
    return out
