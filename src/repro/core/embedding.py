"""Embedding dataset collections by their pairwise deviations (Section 4.1.1).

The paper: "delta* also satisfies the triangle inequality, and can
therefore be used to embed a collection of datasets in a k-dimensional
space for visually comparing their relative differences." This module
provides exactly that pipeline:

1. a pairwise distance matrix over a collection of models -- either the
   instant ``delta*`` (models only) or the exact deviation (with the
   datasets);
2. classical multidimensional scaling (Torgerson double-centering +
   eigendecomposition) mapping the matrix to ``k``-dimensional points.

Everything is numpy-only; no SciPy needed at runtime.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro._typing import DatasetLike
from repro.core.aggregate import SUM, AggregateFunction
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.lits import LitsModel
from repro.core.model import Model
from repro.core.upper_bound import upper_bound_deviation
from repro.errors import IncompatibleModelsError, InvalidParameterError


def _check_fleet_size(models: Sequence[Any], what: str) -> None:
    """Shared matrix-input validation: a non-empty fleet of >= 2 models."""
    n = len(models)
    if n == 0:
        raise InvalidParameterError(
            f"cannot build a {what} over an empty fleet of models"
        )
    if n < 2:
        raise InvalidParameterError(
            f"a {what} needs at least two models to compare, got {n}"
        )


def _check_fleet_of_models(models: Sequence[Any], what: str) -> None:
    """Matrix-input validation for delta* products: size plus all-lits."""
    _check_fleet_size(models, what)
    for i, m in enumerate(models):
        if not isinstance(m, LitsModel):
            raise IncompatibleModelsError(
                f"delta* (Definition 4.1) is defined for lits-models only; "
                f"model {i} is a {type(m).__name__}"
            )


def upper_bound_matrix(
    models: Sequence[LitsModel], g: AggregateFunction = SUM
) -> np.ndarray:
    """Pairwise ``delta*`` distances over lits-models (no dataset scans)."""
    _check_fleet_of_models(models, "delta* matrix")
    n = len(models)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = upper_bound_deviation(models[i], models[j], g=g).value
            out[i, j] = out[j, i] = value
    return out


def deviation_matrix(
    models: Sequence[Model],
    datasets: Sequence[DatasetLike],
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
) -> np.ndarray:
    """Pairwise exact deviations over any model class (scans datasets).

    Routes through :class:`repro.fleet.FleetDeviationMatrix`, so each
    dataset is scanned once per GCR family (lits fleets are batched per
    store, partition fleets reuse the memoised assigner passes) instead
    of once per pair. For threshold-pruned variants, incremental
    updates, or the pruning statistics, use the engine directly.
    """
    from repro.fleet.matrix import FleetDeviationMatrix  # cycle-free at call

    if len(models) != len(datasets):
        raise InvalidParameterError(
            f"models and datasets must be aligned: got {len(models)} models "
            f"vs {len(datasets)} datasets"
        )
    _check_fleet_size(models, "deviation matrix")
    engine = FleetDeviationMatrix(models, datasets, f=f, g=g)
    return engine.exhaustive().values


def classical_mds(distances: np.ndarray, k: int = 2) -> np.ndarray:
    """Classical (Torgerson) MDS: ``(n, k)`` coordinates from distances.

    Double-centres the squared-distance matrix and keeps the top ``k``
    non-negative eigen-directions. Distances that embed exactly in
    ``k`` dimensions are reproduced exactly; others are approximated in
    the least-squares (strain) sense.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise InvalidParameterError("distance matrix must be square")
    if not np.allclose(distances, distances.T, atol=1e-9):
        raise InvalidParameterError("distance matrix must be symmetric")
    if k < 1 or k >= n:
        raise InvalidParameterError(f"k must be in [1, {n - 1}]")
    j_centre = np.eye(n) - np.ones((n, n)) / n
    b = -0.5 * j_centre @ (distances**2) @ j_centre
    eigenvalues, eigenvectors = np.linalg.eigh(b)
    order = np.argsort(eigenvalues)[::-1][:k]
    top_values = np.clip(eigenvalues[order], 0.0, None)
    return eigenvectors[:, order] * np.sqrt(top_values)


def embed_models(
    models: Sequence[LitsModel], k: int = 2, g: AggregateFunction = SUM
) -> np.ndarray:
    """One-call pipeline: ``delta*`` matrix -> classical MDS coordinates."""
    return classical_mds(upper_bound_matrix(models, g=g), k=k)
