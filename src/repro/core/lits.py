"""lits-models: sets of frequent itemsets as 2-component models (Section 4.1).

The structural component is the set of frequent itemsets at minimum
support ``ms``; each itemset's measure is its support. The refinement
relation is the superset relation on itemset collections, under which the
set of structural components forms a meet-semilattice (Proposition 4.1) --
the GCR of two lits-models is simply the union of their itemset sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.model import LitsStructure, Model
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.mining.apriori import apriori


@dataclass(frozen=True)
class LitsModel(Model):
    """A frequent-itemset model: itemset -> support, at a support level.

    Attributes
    ----------
    supports:
        Mapping from itemset (frozenset of item ids) to relative support
        in the inducing dataset.
    min_support:
        The mining threshold ``ms`` (needed by the delta* upper bound,
        Definition 4.1).
    n_items:
        Size of the item universe.
    """

    supports: Mapping[frozenset[int], float]
    min_support: float
    n_items: int
    _structure: LitsStructure = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.min_support <= 1.0:
            raise InvalidParameterError(
                f"min_support must be in (0, 1], got {self.min_support}"
            )
        object.__setattr__(
            self, "supports", dict(self.supports)
        )
        object.__setattr__(
            self, "_structure", LitsStructure(tuple(self.supports.keys()))
        )

    @classmethod
    def mine(
        cls,
        dataset: TransactionDataset,
        min_support: float,
        max_len: int | None = None,
    ) -> "LitsModel":
        """Mine the lits-model of a dataset with Apriori."""
        supports = apriori(dataset, min_support, max_len=max_len)
        return cls(supports, min_support, dataset.n_items)

    @property
    def structure(self) -> LitsStructure:
        return self._structure

    @property
    def itemsets(self) -> tuple[frozenset[int], ...]:
        """The frequent itemsets in canonical order."""
        return self._structure.itemsets

    def support(self, itemset: Iterable[int]) -> float | None:
        """The stored support of an itemset, or ``None`` if not frequent."""
        return self.supports.get(frozenset(itemset))

    def __len__(self) -> int:
        return len(self.supports)
