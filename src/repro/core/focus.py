"""Focussed deviations (Section 5, Definitions 5.1 and 5.2).

Focussing restricts a deviation computation to a region ``rho`` of the
attribute space: every region of the (GCR'd) structural component is
intersected with ``rho`` before measuring, so "the deviation is computed
only over regions contained in rho". Theorem 5.1 guarantees the focussed
structures still form a meet-semilattice, so everything composes.

This module provides the user-facing helpers for building focussing
regions and computing ``delta^rho``:

>>> region = box_focus(age=(None, 30))            # age < 30
>>> delta = focussed_deviation(m1, m2, d1, d2, region)

Note (paper, Section 5): ``delta^rho`` with ``f_a`` is monotonic in
``rho`` (shrinking the focus cannot increase the deviation) *when rho is
a union of regions of the refined structural component* -- focussing
then merely selects a subset of the non-negative per-region terms. For
an arbitrary ``rho`` that cuts through regions, positive and negative
measure differences inside one region can cancel over the larger focus,
so the literal ordering can fail (our property-based tests exhibit such
a case for itemset focussing). With ``f_s`` monotonicity fails even in
the aligned case, as the paper observes.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro._typing import DatasetLike
from repro.core.aggregate import SUM, AggregateFunction
from repro.core.deviation import DeviationResult, deviation
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.model import Model, Structure
from repro.core.predicate import Conjunction, Interval, ValueSet
from repro.core.region import BoxRegion, ItemsetRegion, Region
from repro.errors import InvalidParameterError


def box_focus(
    class_label: int | None = None, **constraints: object
) -> BoxRegion:
    """Build a box focussing region from keyword constraints.

    Each keyword is an attribute name mapped to either a ``(lo, hi)``
    tuple (``None`` for an open end) for numeric attributes, or an
    iterable of category codes for categorical attributes.

    >>> box_focus(age=(None, 30))                   # age < 30
    >>> box_focus(salary=(100_000, None))           # salary >= 100K
    >>> box_focus(elevel=[0, 1], age=(40, 60))      # conjunction
    """
    parts: dict[str, Interval | ValueSet] = {}
    for name, spec in constraints.items():
        if isinstance(spec, tuple) and len(spec) == 2:
            lo = -math.inf if spec[0] is None else float(spec[0])
            hi = math.inf if spec[1] is None else float(spec[1])
            parts[name] = Interval(lo, hi)
        elif isinstance(spec, (list, set, frozenset, range)):
            parts[name] = ValueSet(spec)
        else:
            raise InvalidParameterError(
                f"constraint for {name!r} must be a (lo, hi) tuple or a "
                f"collection of category codes, got {spec!r}"
            )
    return BoxRegion(Conjunction(parts), class_label)


def itemset_focus(items: Iterable[int]) -> ItemsetRegion:
    """Build an itemset focussing region (transactions containing ``items``)."""
    return ItemsetRegion(items)


def focussed_structure(model: Model, region: Region) -> Structure:
    """``Lambda^rho_M``: the model's structure focussed w.r.t. ``region``."""
    return model.structure.focussed(region)


def focussed_deviation(
    model1: Model,
    model2: Model,
    dataset1: DatasetLike,
    dataset2: DatasetLike,
    region: Region,
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
) -> DeviationResult:
    """``delta^rho_(f,g)(M1, M2)`` per Definition 5.2."""
    return deviation(model1, model2, dataset1, dataset2, f=f, g=g, focus=region)
