"""Regions of the attribute space (Definition 3.1) and their selectivities.

Two concrete region families cover the paper's three model classes:

* :class:`BoxRegion` -- a conjunctive (axis-aligned) predicate plus an
  optional class label. Decision-tree leaves yield one box per class
  ("each leaf node ... corresponds to two regions", Section 2.1);
  cluster cells yield unlabelled boxes.
* :class:`ItemsetRegion` -- the region identified by a frequent itemset
  ``X``: the transactions containing every item of ``X``. Its measure is
  the support of ``X`` (Section 2.2).

Both families are closed under intersection, which focussed deviations
(Section 5) and greatest common refinements (Section 4) rely on. The
selectivity of a region w.r.t. a dataset (Definition 3.2) is delegated to
the dataset so each dataset kind can use its own vectorised kernel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from repro._typing import DatasetLike
from repro.core.predicate import Conjunction, TRUE
from repro.errors import IncompatibleModelsError


class Region(ABC):
    """A subset of the attribute space with a hashable identity."""

    @property
    @abstractmethod
    def key(self) -> Hashable:
        """Hashable identity used to compare structural components."""

    @abstractmethod
    def intersect(self, other: "Region") -> Optional["Region"]:
        """The intersection region, or ``None`` when provably empty."""

    @abstractmethod
    def selectivity(self, dataset: DatasetLike) -> float:
        """Fraction of the dataset's tuples that map into this region."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable predicate, e.g. for ranked-region reports."""

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self.key == other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()})"


@dataclass(frozen=True, eq=False)
class BoxRegion(Region):
    """A conjunctive predicate over attributes, optionally class-specific.

    ``class_label is None`` means the region spans every class (cluster
    cells); an integer restricts the region to tuples of that class
    (decision-tree regions).
    """

    predicate: Conjunction = TRUE
    class_label: int | None = None

    @property
    def key(self) -> Hashable:
        return ("box", self.predicate, self.class_label)

    @property
    def is_empty(self) -> bool:
        return self.predicate.is_empty

    def intersect(self, other: Region) -> Optional["BoxRegion"]:
        if not isinstance(other, BoxRegion):
            raise IncompatibleModelsError(
                f"cannot intersect BoxRegion with {type(other).__name__}"
            )
        if (
            self.class_label is not None
            and other.class_label is not None
            and self.class_label != other.class_label
        ):
            return None
        label = self.class_label if self.class_label is not None else other.class_label
        predicate = self.predicate.intersect(other.predicate)
        if predicate.is_empty:
            return None
        return BoxRegion(predicate, label)

    def contains(self, other: "BoxRegion") -> bool:
        """Whether ``other`` is wholly inside this region (ignoring emptiness)."""
        if self.class_label is not None and other.class_label != self.class_label:
            return False
        if self.predicate.is_universal:
            return True
        return self.predicate.contains_conjunction(other.predicate)

    def selectivity(self, dataset: DatasetLike) -> float:
        return dataset.box_selectivity(self)

    def describe(self) -> str:
        text = self.predicate.describe()
        if self.class_label is not None:
            text = f"{text} and class = {self.class_label}"
        return text


@dataclass(frozen=True, eq=False)
class ItemsetRegion(Region):
    """The region of transactions containing every item in ``items``.

    The empty itemset identifies the whole space (support 1); intersecting
    two itemset regions unions their items, because a transaction lies in
    both regions exactly when it contains both itemsets.
    """

    items: frozenset[int]

    def __init__(self, items: Iterable[int]) -> None:
        object.__setattr__(self, "items", frozenset(int(i) for i in items))

    @property
    def key(self) -> Hashable:
        return ("itemset", self.items)

    def intersect(self, other: Region) -> Optional["ItemsetRegion"]:
        if not isinstance(other, ItemsetRegion):
            raise IncompatibleModelsError(
                f"cannot intersect ItemsetRegion with {type(other).__name__}"
            )
        return ItemsetRegion(self.items | other.items)

    def selectivity(self, dataset: DatasetLike) -> float:
        return dataset.itemset_selectivity(self.items)

    def describe(self) -> str:
        if not self.items:
            return "{}"
        return "{" + ",".join(str(i) for i in sorted(self.items)) + "}"
