"""The deviation measure (Definitions 3.5, 3.6 and 5.2).

``deviation_over_structure`` implements ``delta_1``: both datasets are
measured over one *common* structural component and the per-region
differences are aggregated. ``deviation`` implements ``delta``: the two
models' structures are first extended to their greatest common
refinement, then ``delta_1`` is applied -- optionally after focussing the
GCR w.r.t. a region (Definition 5.2's ``delta^rho``).

The result object keeps the per-region breakdown so exploratory analysis
(Section 5.1's rank/select operators) can reuse a single scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Any, Sequence

from repro.core.aggregate import SUM, AggregateFunction
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.gcr import gcr
from repro.core.model import LitsStructure, Model, Structure
from repro.core.region import Region
from repro._typing import DatasetLike
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class RegionDeviation:
    """One region's contribution to a deviation."""

    region: Region
    value: float
    count1: int
    count2: int
    selectivity1: float
    selectivity2: float

    def describe(self) -> str:
        return (
            f"{self.region.describe()}: {self.value:.6g} "
            f"(sigma1={self.selectivity1:.4g}, sigma2={self.selectivity2:.4g})"
        )


@dataclass(frozen=True)
class DeviationResult:
    """A deviation value plus its per-region breakdown.

    ``value`` is ``g({f(...)})`` over all regions of the (possibly
    focussed) common structure. The arrays are aligned with ``regions``.
    """

    value: float
    f_name: str
    g_name: str
    regions: tuple[Region, ...]
    per_region: np.ndarray
    counts1: np.ndarray
    counts2: np.ndarray
    n1: int
    n2: int

    def __float__(self) -> float:
        return self.value

    @property
    def selectivities1(self) -> np.ndarray:
        return self.counts1 / self.n1 if self.n1 else np.zeros_like(self.per_region)

    @property
    def selectivities2(self) -> np.ndarray:
        return self.counts2 / self.n2 if self.n2 else np.zeros_like(self.per_region)

    def region_deviations(self) -> list[RegionDeviation]:
        """The per-region contributions, in structure order."""
        s1, s2 = self.selectivities1, self.selectivities2
        return [
            RegionDeviation(
                region=r,
                value=float(self.per_region[i]),
                count1=int(self.counts1[i]),
                count2=int(self.counts2[i]),
                selectivity1=float(s1[i]),
                selectivity2=float(s2[i]),
            )
            for i, r in enumerate(self.regions)
        ]

    def top_regions(self, k: int = 5) -> list[RegionDeviation]:
        """The ``k`` regions contributing the most, by magnitude.

        Ranking uses ``abs(value)`` so that signed difference functions
        surface large negative contributions too; each returned
        :class:`RegionDeviation` keeps its signed value.
        """
        contributions = self.region_deviations()
        contributions.sort(key=lambda rd: -abs(rd.value))
        return contributions[:k]


def deviation_over_structure(
    structure: Structure,
    dataset1: DatasetLike,
    dataset2: DatasetLike,
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
) -> DeviationResult:
    """``delta_1``: deviation over an already-common structural component."""
    counts1 = structure.counts(dataset1)
    counts2 = structure.counts(dataset2)
    return _result(
        structure, counts1, counts2, len(dataset1), len(dataset2), f, g
    )


def deviation(
    model1: Model,
    model2: Model,
    dataset1: DatasetLike,
    dataset2: DatasetLike,
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
    focus: Region | None = None,
) -> DeviationResult:
    """``delta`` (Definition 3.6), optionally focussed (Definition 5.2).

    Parameters
    ----------
    model1, model2:
        The two models (same model class over the same attribute space).
    dataset1, dataset2:
        The datasets that induced them (scanned once each to measure the
        GCR regions).
    f, g:
        Difference and aggregate functions; defaults give the paper's
        workhorse ``delta_(f_a, g_sum)``.
    focus:
        An optional focussing region ``rho``; when given, every GCR
        region is intersected with it before measuring.
    """
    structure = gcr(model1.structure, model2.structure)
    if focus is not None:
        structure = structure.focussed(focus)

    fast = _counts_from_models(model1, model2, structure, len(dataset1), len(dataset2))
    if fast is not None:
        counts1, counts2 = fast
        return _result(
            structure, counts1, counts2, len(dataset1), len(dataset2), f, g
        )
    return deviation_over_structure(structure, dataset1, dataset2, f, g)


def deviation_from_counts(
    structure: Structure,
    counts1: np.ndarray,
    counts2: np.ndarray,
    n1: int,
    n2: int,
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
) -> DeviationResult:
    """``delta_1`` from already-measured region counts (no dataset scan).

    The streaming layer measures structures out-of-band -- reference
    counts come from a stored model's measure component, window counts
    from a mergeable :class:`~repro.stream.sketch.SupportSketch` -- and
    only needs the difference/aggregate step applied. ``counts1`` and
    ``counts2`` must align with ``structure.regions``.
    """
    return _result(structure, counts1, counts2, n1, n2, f, g)


def _result(
    structure: Structure,
    counts1: np.ndarray,
    counts2: np.ndarray,
    n1: int,
    n2: int,
    f: DifferenceFunction,
    g: AggregateFunction,
) -> DeviationResult:
    """Assemble a :class:`DeviationResult` from already-measured counts."""
    per_region = f(counts1, counts2, n1, n2)
    return DeviationResult(
        value=g(per_region),
        f_name=f.name,
        g_name=g.name,
        regions=structure.regions,
        per_region=per_region,
        counts1=np.asarray(counts1),
        counts2=np.asarray(counts2),
        n1=n1,
        n2=n2,
    )


def deviation_over_structure_many(
    structure: Structure,
    dataset1: DatasetLike,
    datasets: Sequence[DatasetLike],
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
) -> list[DeviationResult]:
    """``delta_1`` of one reference dataset against many snapshots.

    The reference dataset is measured over ``structure`` exactly once;
    each snapshot is then measured with a single scan of its own (via
    ``structure.counts_many``, which for partition structures shares one
    precompiled counting plan across the batch), so a series of ``W``
    windows costs ``W + 1`` scans instead of ``2W``.
    """
    counts1 = np.asarray(structure.counts(dataset1))
    n1 = len(dataset1)
    datasets = list(datasets)
    batch = structure.counts_many(datasets)
    return [
        _result(structure, counts1, np.asarray(counts2), n1, len(d), f, g)
        for d, counts2 in zip(datasets, batch)
    ]


def deviation_many(
    model1: Model,
    models: Sequence[Model],
    dataset1: DatasetLike,
    datasets: Sequence[DatasetLike],
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
    focus: Region | None = None,
) -> list[DeviationResult]:
    """``delta`` of one model against a fleet of models, batched.

    Computes ``deviation(model1, models[i], dataset1, datasets[i])`` for
    every ``i`` while scanning each dataset once:

    * pairs whose measures are all stored in the two models are answered
      without touching either dataset (the Section 7.1 fast path);
    * for lits-models, the reference dataset is counted in **one**
      batched support-counting pass over the union of every pair's GCR
      itemsets, and each fleet dataset is counted in one batched pass
      over its own GCR's itemsets -- one scan per window, not one scan
      per window per itemset;
    * for dt-/cluster-models, every pair's GCR overlay reuses the
      memoised base assigner pass over the shared reference dataset (one
      scan of it per *distinct* base partition, not per pair), and
      identical GCR structures share the reference's measured counts;
    * other model classes fall back to the per-pair scan.

    Returns the :class:`DeviationResult` list aligned with ``models``.
    The fleet (``models[i]`` vs ``datasets[i]``) must be aligned; this is
    exactly the store-fleet and windowed-stream access pattern.
    """
    if len(models) != len(datasets):
        raise InvalidParameterError(
            f"models and datasets must align: {len(models)} vs {len(datasets)}"
        )
    structures: list[Structure] = []
    for m in models:
        s = gcr(model1.structure, m.structure)
        if focus is not None:
            s = s.focussed(focus)
        structures.append(s)
    n1 = len(dataset1)

    # Pairs answerable from the stored model measures alone.
    model_fast: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for i, (m, s) in enumerate(zip(models, structures)):
        pair = _counts_from_models(model1, m, s, n1, len(datasets[i]))
        if pair is not None:
            model_fast[i] = pair

    # One batched pass over dataset1 for every remaining lits pair.
    batched = {
        i
        for i, s in enumerate(structures)
        if i not in model_fast
        and isinstance(s, LitsStructure)
        and hasattr(dataset1, "index")
        and hasattr(datasets[i], "index")
    }
    counts1_of: dict[frozenset[int], int] = {}
    if batched:
        union: dict[frozenset[int], None] = {}
        for i in sorted(batched):
            union.update(dict.fromkeys(structures[i].itemsets))
        union_list = list(union)
        union_counts = dataset1.index.support_counts(union_list)
        counts1_of = dict(zip(union_list, union_counts))

    results: list[DeviationResult] = []
    # Pairs sharing a GCR structure (e.g. fleets of identical-structure
    # partition models) measure the reference once, not once per pair.
    # Keyed on counts_key (order-sensitive): same region *set* in a
    # different order must not reuse a positionally-aligned vector.
    counts1_by_key: dict[Any, np.ndarray] = {}
    for i, s in enumerate(structures):
        n2 = len(datasets[i])
        if i in model_fast:
            counts1, counts2 = model_fast[i]
        elif i in batched:
            counts1 = np.array(
                [counts1_of[it] for it in s.itemsets], dtype=np.int64
            )
            counts2 = datasets[i].index.support_counts(s.itemsets)
        else:
            key = s.counts_key
            counts1 = counts1_by_key.get(key)
            if counts1 is None:
                counts1 = np.asarray(s.counts(dataset1))
                counts1_by_key[key] = counts1
            counts2 = np.asarray(s.counts(datasets[i]))
        results.append(_result(s, counts1, counts2, n1, n2, f, g))
    return results


def _counts_from_models(
    model1: Model, model2: Model, structure: Structure, n1: int, n2: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Measures straight from the models when no scan is needed.

    When two lits-models have identical structural components, every GCR
    measure is already stored in both models, so no dataset scan is
    required -- the paper's Section 7.1 observation that for
    identical-structure models "all the measures necessary to compute
    the deviation are obtained directly from the models".
    """
    from repro.core.lits import LitsModel  # local import to avoid a cycle
    from repro.core.model import LitsStructure

    if not (
        isinstance(model1, LitsModel)
        and isinstance(model2, LitsModel)
        and isinstance(structure, LitsStructure)
    ):
        return None
    supports1 = model1.supports
    supports2 = model2.supports
    itemsets = structure.itemsets
    if any(s not in supports1 or s not in supports2 for s in itemsets):
        return None
    counts1 = np.array([round(supports1[s] * n1) for s in itemsets], dtype=np.int64)
    counts2 = np.array([round(supports2[s] * n2) for s in itemsets], dtype=np.int64)
    return counts1, counts2
