"""Greatest common refinements of structural components (Sections 4.1, 4.2).

The meet-semilattice property (Observation 3.1) guarantees the GCR of two
structures exists within each model class:

* **lits-models** -- the GCR of two itemset collections is their union
  (the superset relation is the refinement relation, Proposition 4.1).
* **dt-/cluster-models** -- the GCR of two space partitions is their
  overlay: the non-empty pairwise intersections of their cells
  (Proposition 4.2; "anding all possible pairs of predicates").

For partitions the overlay keeps a composed assigner, so measuring the
GCR w.r.t. a dataset is still one vectorised scan: each tuple's pair of
cell ids is looked up in a dense ``(n1, n2) -> joint id`` table.
"""

from __future__ import annotations

import numpy as np

from repro._typing import DatasetLike
from repro.core.model import LitsStructure, PartitionStructure, Structure
from repro.core.partition_plan import cell_assignments
from repro.errors import IncompatibleModelsError


def gcr_lits(s1: LitsStructure, s2: LitsStructure) -> LitsStructure:
    """Union of the two itemset collections."""
    return LitsStructure(s1.itemsets + s2.itemsets)


def gcr_partition(
    s1: PartitionStructure, s2: PartitionStructure
) -> PartitionStructure:
    """Overlay of two box partitions with a composed one-scan assigner."""
    if s1.class_labels != s2.class_labels:
        raise IncompatibleModelsError(
            f"cannot overlay partitions with different class labels: "
            f"{s1.class_labels} vs {s2.class_labels}"
        )
    cells1, cells2 = s1.cells, s2.cells
    n1, n2 = len(cells1), len(cells2)

    joint_cells = []
    pair_to_joint = np.full((n1, n2), -1, dtype=np.int64)
    for i, a in enumerate(cells1):
        for j, b in enumerate(cells2):
            predicate = a.intersect(b)
            if predicate.is_empty:
                continue
            pair_to_joint[i, j] = len(joint_cells)
            joint_cells.append(predicate)

    assign1, assign2 = s1.assigner, s2.assigner

    def joint_assigner(dataset: DatasetLike) -> np.ndarray:
        # The base passes are memoised per dataset, so measuring the
        # overlay right after (or alongside) either input structure --
        # the GCR access pattern -- costs no extra assigner scans.
        a = cell_assignments(assign1, dataset)
        b = cell_assignments(assign2, dataset)
        joint = pair_to_joint[a, b]
        if np.any(joint < 0):
            # A tuple landed in a provably-empty intersection: the two
            # partitions disagree about the space, which refinement of a
            # common attribute space rules out.
            raise IncompatibleModelsError(
                "tuple mapped to an empty overlay cell; the two partitions "
                "do not share an attribute space"
            )
        return joint

    return PartitionStructure(
        cells=tuple(joint_cells),
        class_labels=s1.class_labels,
        assigner=joint_assigner,
    )


def gcr(s1: Structure, s2: Structure) -> Structure:
    """The greatest common refinement of two structural components.

    Identical structures are returned as-is (the paper's "if the
    structural components are identical" fast path, which also powers
    the delta* shortcut of Section 7.1's row (1)).
    """
    if s1.key == s2.key:
        return s1
    if isinstance(s1, LitsStructure) and isinstance(s2, LitsStructure):
        return gcr_lits(s1, s2)
    if isinstance(s1, PartitionStructure) and isinstance(s2, PartitionStructure):
        return gcr_partition(s1, s2)
    raise IncompatibleModelsError(
        f"no GCR between {type(s1).__name__} and {type(s2).__name__}"
    )
