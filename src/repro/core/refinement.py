"""The refinement relation on structural components (Definition 3.4).

``refines(fine, coarse)`` decides whether every region of ``coarse`` is
(measure-additively) covered by regions of ``fine``:

* **lits** -- ``fine`` refines ``coarse`` iff its itemset collection is a
  superset (Section 4.1's relation, where footnote semantics make the
  *larger* collection the finer structure).
* **partitions** -- ``fine`` refines ``coarse`` iff every fine cell lies
  wholly inside some coarse cell. Because both are partitions of the
  same space, that containment is exactly measure additivity: the
  measure of a coarse cell is the sum over the fine cells inside it.

``verify_measure_additivity`` checks Definition 3.4's defining equation
against an actual dataset; the property-based tests use it to validate
both the relation and the GCR construction.
"""

from __future__ import annotations

import numpy as np

from repro._typing import DatasetLike
from repro.core.model import LitsStructure, PartitionStructure, Structure
from repro.errors import IncompatibleModelsError


def refines_lits(fine: LitsStructure, coarse: LitsStructure) -> bool:
    """Superset relation on itemset collections."""
    return set(coarse.itemsets) <= set(fine.itemsets)


def refines_partition(fine: PartitionStructure, coarse: PartitionStructure) -> bool:
    """Every fine cell must be contained in exactly one coarse cell."""
    if fine.class_labels != coarse.class_labels:
        return False
    for cell in fine.cells:
        containers = 0
        for coarse_cell in coarse.cells:
            if coarse_cell.is_universal or coarse_cell.contains_conjunction(cell):
                containers += 1
        if containers != 1:
            return False
    return True


def refines(fine: Structure, coarse: Structure) -> bool:
    """Whether ``fine`` refines ``coarse`` (``fine <= coarse`` in the paper)."""
    if isinstance(fine, LitsStructure) and isinstance(coarse, LitsStructure):
        return refines_lits(fine, coarse)
    if isinstance(fine, PartitionStructure) and isinstance(
        coarse, PartitionStructure
    ):
        return refines_partition(fine, coarse)
    raise IncompatibleModelsError(
        f"no refinement relation between {type(fine).__name__} and "
        f"{type(coarse).__name__}"
    )


def verify_measure_additivity(
    fine: Structure,
    coarse: Structure,
    dataset: DatasetLike,
    atol: float = 1e-9,
) -> bool:
    """Check Definition 3.4 on a dataset: coarse measures = sums of fine ones.

    For lits structures the "set of regions refining an itemset region"
    is the region itself (itemset collections refine by inclusion); for
    partitions it is the set of fine cells contained in the coarse cell.
    """
    coarse_sel = coarse.selectivities(dataset)
    fine_sel = fine.selectivities(dataset)

    if isinstance(fine, LitsStructure) and isinstance(coarse, LitsStructure):
        fine_index = {s: i for i, s in enumerate(fine.itemsets)}
        for j, itemset in enumerate(coarse.itemsets):
            if itemset not in fine_index:
                return False
            if abs(coarse_sel[j] - fine_sel[fine_index[itemset]]) > atol:
                return False
        return True

    if isinstance(fine, PartitionStructure) and isinstance(
        coarse, PartitionStructure
    ):
        sums = np.zeros(len(coarse.regions))
        for i, fine_region in enumerate(fine.regions):
            for j, coarse_region in enumerate(coarse.regions):
                if coarse_region.contains(fine_region):  # type: ignore[attr-defined]
                    sums[j] += fine_sel[i]
                    break
        return bool(np.allclose(sums, coarse_sel, atol=atol))

    raise IncompatibleModelsError("mismatched structure kinds")
