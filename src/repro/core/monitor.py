"""Snapshot change monitoring (the paper's motivating application).

From the introduction: "A sales analyst who is monitoring a dataset ...
may want to analyze the data thoroughly only if the current snapshot
differs significantly from previously analyzed snapshots. ... an
algorithm that can quantify deviations can save the analyst considerable
time and effort."

:class:`ChangeMonitor` packages that loop: fit a reference model once,
then feed successive snapshots; each observation computes the FOCUS
deviation against the reference, qualifies it with the bootstrap
(Section 3.4), and reports whether the snapshot needs a real look.
Reference policies:

* ``"fixed"`` -- always compare against the original reference;
* ``"reset_on_drift"`` -- after a significant deviation, the drifted
  snapshot becomes the new reference (the analyst re-analysed it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.aggregate import SUM, AggregateFunction
from repro.core.deviation import deviation, deviation_many
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.errors import InvalidParameterError, NotFittedError
from repro.stats.bootstrap import deviation_significance

POLICIES = ("fixed", "reset_on_drift")


@dataclass(frozen=True)
class Observation:
    """One monitored snapshot's verdict."""

    index: int
    deviation: float
    significance: float
    drifted: bool
    reference_index: int

    def describe(self) -> str:
        flag = "DRIFT" if self.drifted else "ok"
        return (
            f"snapshot {self.index}: delta={self.deviation:.4f} "
            f"sig={self.significance:.0f}% vs reference "
            f"{self.reference_index} [{flag}]"
        )


@dataclass
class ChangeMonitor:
    """Deviation-based snapshot monitor.

    Parameters
    ----------
    model_builder:
        ``dataset -> Model``; re-invoked for every snapshot and inside
        the bootstrap loop.
    f, g:
        Difference and aggregate functions for the deviation.
    n_boot:
        Bootstrap resamples per qualification.
    threshold:
        Significance percentage above which a snapshot counts as drifted.
    policy:
        ``"fixed"`` or ``"reset_on_drift"`` (see module docstring).
    rng:
        Random generator for the bootstrap (seed for reproducibility).
    refit_models:
        Whether the bootstrap re-induces models per replicate (see
        :func:`repro.stats.bootstrap.deviation_significance`); the
        default holds the observed structures fixed, as the paper does.
    """

    model_builder: Callable
    f: DifferenceFunction = ABSOLUTE
    g: AggregateFunction = SUM
    n_boot: int = 50
    threshold: float = 95.0
    policy: str = "fixed"
    rng: np.random.Generator | None = None
    refit_models: bool = False
    history: list[Observation] = field(default_factory=list)
    _reference_dataset: object = None
    _reference_model: object = None
    _reference_index: int = -1
    _next_index: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if not 0.0 <= self.threshold <= 100.0:
            raise InvalidParameterError("threshold must be in [0, 100]")
        if self.rng is None:
            self.rng = np.random.default_rng()

    @property
    def is_fitted(self) -> bool:
        return self._reference_model is not None

    def fit(self, reference) -> "ChangeMonitor":
        """Set the reference snapshot; returns ``self`` for chaining."""
        self._reference_dataset = reference
        self._reference_model = self.model_builder(reference)
        self._reference_index = self._next_index
        self._next_index += 1
        return self

    def _qualify(self, snapshot, delta: float) -> Observation:
        """Bootstrap-qualify one snapshot's deviation and record it."""
        index = self._next_index
        self._next_index += 1
        significance = deviation_significance(
            self._reference_dataset,
            snapshot,
            self.model_builder,
            f=self.f,
            g=self.g,
            n_boot=self.n_boot,
            rng=self.rng,
            refit_models=self.refit_models,
        ).significance_percent
        observation = Observation(
            index=index,
            deviation=delta,
            significance=significance,
            drifted=significance >= self.threshold,
            reference_index=self._reference_index,
        )
        self.history.append(observation)
        return observation

    def observe(self, snapshot) -> Observation:
        """Qualify one new snapshot against the current reference."""
        if not self.is_fitted:
            raise NotFittedError("call fit(reference) before observe()")
        model = self.model_builder(snapshot)
        delta = deviation(
            self._reference_model,
            model,
            self._reference_dataset,
            snapshot,
            f=self.f,
            g=self.g,
        ).value
        observation = self._qualify(snapshot, delta)

        if observation.drifted and self.policy == "reset_on_drift":
            self._reference_dataset = snapshot
            self._reference_model = model
            self._reference_index = observation.index
        return observation

    def observe_many(self, snapshots) -> list[Observation]:
        """Qualify a whole batch of snapshots in one pass.

        Produces exactly the observations a sequence of
        :meth:`observe` calls would, but under the ``"fixed"`` policy
        the deviations against the shared reference are computed with
        :func:`repro.core.deviation.deviation_many`: the reference
        dataset is support-counted once over the union of every
        snapshot's GCR itemsets, and each snapshot is scanned once.

        Under ``"reset_on_drift"`` the reference can change mid-batch,
        so the snapshots are simply observed sequentially.
        """
        if not self.is_fitted:
            raise NotFittedError("call fit(reference) before observe_many()")
        snapshots = list(snapshots)
        if self.policy != "fixed" or len(snapshots) < 2:
            return [self.observe(s) for s in snapshots]

        models = [self.model_builder(s) for s in snapshots]
        deltas = deviation_many(
            self._reference_model,
            models,
            self._reference_dataset,
            snapshots,
            f=self.f,
            g=self.g,
        )
        return [
            self._qualify(snapshot, delta.value)
            for snapshot, delta in zip(snapshots, deltas)
        ]

    def drift_points(self) -> list[int]:
        """Indices of the snapshots flagged as drifted so far."""
        return [obs.index for obs in self.history if obs.drifted]
