"""Snapshot change monitoring (the paper's motivating application).

From the introduction: "A sales analyst who is monitoring a dataset ...
may want to analyze the data thoroughly only if the current snapshot
differs significantly from previously analyzed snapshots. ... an
algorithm that can quantify deviations can save the analyst considerable
time and effort."

:class:`ChangeMonitor` packages that loop: fit a reference model once,
then feed successive snapshots; each observation computes the FOCUS
deviation against the reference, qualifies it with the bootstrap
(Section 3.4), and reports whether the snapshot needs a real look.
Reference policies:

* ``"fixed"`` -- always compare against the original reference;
* ``"reset_on_drift"`` -- after a significant deviation, the drifted
  snapshot becomes the new reference (the analyst re-analysed it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro._typing import DatasetLike, ModelBuilder, ModelLike
from repro.core.aggregate import SUM, AggregateFunction
from repro.core.deviation import deviation, deviation_many
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.errors import InvalidParameterError, NotFittedError
from repro.stats.bootstrap import BootstrapResult, deviation_significance
from repro.stats.resample_plan import _resolve_rng

if TYPE_CHECKING:
    from repro.stats.resample_plan import ResamplePlan

POLICIES = ("fixed", "reset_on_drift")


@dataclass(frozen=True)
class Observation:
    """One monitored snapshot's verdict."""

    index: int
    deviation: float
    significance: float
    drifted: bool
    reference_index: int

    def describe(self) -> str:
        flag = "DRIFT" if self.drifted else "ok"
        return (
            f"snapshot {self.index}: delta={self.deviation:.4f} "
            f"sig={self.significance:.0f}% vs reference "
            f"{self.reference_index} [{flag}]"
        )


@dataclass
class ChangeMonitor:
    """Deviation-based snapshot monitor.

    Parameters
    ----------
    model_builder:
        ``dataset -> Model``; re-invoked for every snapshot and inside
        the bootstrap loop.
    f, g:
        Difference and aggregate functions for the deviation.
    n_boot:
        Bootstrap resamples per qualification. ``0`` disables the
        bootstrap entirely: the drift decision falls back to comparing
        the raw deviation against ``delta_threshold`` (the streaming
        monitor's cheap mode, where a full resampling pass per window
        would defeat incremental maintenance).
    threshold:
        Significance percentage above which a snapshot counts as drifted.
    delta_threshold:
        Deviation cut-off used only when ``n_boot == 0``; required then,
        ignored otherwise. Recorded significance degenerates to 100/0
        for drifted/quiet snapshots in that mode.
    policy:
        ``"fixed"`` or ``"reset_on_drift"`` (see module docstring).
    rng:
        Random generator for the bootstrap. Left ``None`` with the
        bootstrap in play (``n_boot > 0``), an unseeded generator is
        created once at construction through the shared
        :func:`~repro.stats.resample_plan._resolve_rng` warn-path, like
        every other significance API -- unseeded drift verdicts cannot
        be reproduced. The cheap ``n_boot == 0`` mode never consumes
        randomness and creates no generator (``rng`` stays ``None``).
    refit_models:
        Whether the bootstrap re-induces models per replicate (see
        :func:`repro.stats.bootstrap.deviation_significance`); the
        default holds the observed structures fixed, as the paper does,
        and qualifies through the count-space engine (one pooled scan
        per qualification instead of ``n_boot`` rescans).
    executor, n_blocks:
        Fan the engine's replicate blocks over a
        :mod:`repro.stream.executor` backend for large ``n_boot``. A
        name is resolved to one executor instance at construction, so a
        pooled backend owns a single worker pool across every
        qualification; release it with :meth:`close` when done.
    """

    model_builder: ModelBuilder
    f: DifferenceFunction = ABSOLUTE
    g: AggregateFunction = SUM
    n_boot: int = 50
    threshold: float = 95.0
    delta_threshold: float | None = None
    policy: str = "fixed"
    rng: np.random.Generator | None = None
    refit_models: bool = False
    executor: str | object = "serial"  # name or executor instance
    n_blocks: int = 1
    history: list[Observation] = field(default_factory=list)
    _reference_dataset: object = None
    _reference_model: object = None
    _reference_index: int = -1
    _next_index: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if not 0.0 <= self.threshold <= 100.0:
            raise InvalidParameterError("threshold must be in [0, 100]")
        if self.n_boot < 0:
            raise InvalidParameterError("n_boot must be >= 0")
        if self.n_boot == 0 and self.delta_threshold is None:
            raise InvalidParameterError(
                "n_boot=0 disables the bootstrap; provide delta_threshold "
                "for the drift decision"
            )
        if self.rng is None and self.n_boot > 0:
            # every generator this monitor creates comes from the single
            # _resolve_rng warn-path; the cheap n_boot=0 mode never
            # consumes randomness, so it creates no generator at all
            self.rng = _resolve_rng(None, None, "ChangeMonitor")
        # resolve a backend name to one instance now: fanned bootstrap
        # blocks then reuse a single worker pool across qualifications
        # instead of spawning one per observation (local import: the
        # stream package imports this module)
        from repro.stream.executor import get_executor

        self.executor = get_executor(self.executor)

    def close(self) -> None:
        """Release the bootstrap executor's worker pool, if it has one.

        A no-op for the serial backend; thread/process monitors that
        observed their last snapshot should close instead of leaving
        the pool to interpreter-exit teardown. The monitor stays usable
        afterwards (pooled backends respawn workers lazily).
        """
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    @property
    def is_fitted(self) -> bool:
        return self._reference_model is not None

    def fit(self, reference: DatasetLike) -> "ChangeMonitor":
        """Set the reference snapshot; returns ``self`` for chaining."""
        self._reference_dataset = reference
        self._reference_model = self.model_builder(reference)
        self._reference_index = self._next_index
        self._next_index += 1
        return self

    def _qualify(
        self,
        snapshot: DatasetLike,
        delta: float,
        model: ModelLike | None = None,
        resample_plan: "ResamplePlan | None" = None,
    ) -> Observation:
        """Bootstrap-qualify one snapshot's deviation and record it."""
        if resample_plan is not None and self.refit_models:
            # mirrors deviation_significance's models=/refit conflict: a
            # compiled fixed-structure plan cannot produce the refit
            # null this monitor was configured for
            raise InvalidParameterError(
                "refit_models=True re-induces models per replicate; a "
                "precompiled resample_plan holds the structure fixed and "
                "would silently qualify under the wrong null"
            )
        index = self._next_index
        self._next_index += 1
        if self.n_boot == 0:
            drifted = delta >= self.delta_threshold
            significance = 100.0 if drifted else 0.0
        else:
            if resample_plan is not None:
                # the observed deviation is the delta already computed
                # (and recorded) for this snapshot -- only the null is
                # drawn from the plan, sparing a redundant pooled
                # column-sum per qualification
                null = resample_plan.null_deviations(
                    self.n_boot,
                    self.rng,
                    f=self.f,
                    g=self.g,
                    executor=self.executor,
                    n_blocks=self.n_blocks,
                )
                significance = BootstrapResult(
                    observed=delta, null_values=null
                ).significance_percent
            else:
                significance = self._bootstrap_significance(snapshot, model)
            drifted = significance >= self.threshold
        observation = Observation(
            index=index,
            deviation=delta,
            significance=significance,
            drifted=drifted,
            reference_index=self._reference_index,
        )
        self.history.append(observation)
        return observation

    def _bootstrap_significance(
        self, snapshot: DatasetLike, model: ModelLike | None
    ) -> float:
        """Qualify via the bootstrap, reusing the cached reference model.

        With ``refit_models=False`` the GCR structure is fixed, so the
        reference model (induced once at :meth:`fit`) and the
        snapshot's model (passed down from :meth:`observe` /
        :meth:`observe_many` when they already built it) are handed to
        :func:`deviation_significance` as ``models`` -- no re-mining,
        and the null comes from the count-space engine.
        """
        models = None
        if not self.refit_models:
            m2 = model if model is not None else self.model_builder(snapshot)
            models = (self._reference_model, m2)
        return deviation_significance(
            self._reference_dataset,
            snapshot,
            self.model_builder,
            f=self.f,
            g=self.g,
            n_boot=self.n_boot,
            rng=self.rng,
            refit_models=self.refit_models,
            models=models,
            executor=self.executor,
            n_blocks=self.n_blocks,
        ).significance_percent

    def observe(self, snapshot: DatasetLike) -> Observation:
        """Qualify one new snapshot against the current reference."""
        if not self.is_fitted:
            raise NotFittedError("call fit(reference) before observe()")
        model = self.model_builder(snapshot)
        delta = deviation(
            self._reference_model,
            model,
            self._reference_dataset,
            snapshot,
            f=self.f,
            g=self.g,
        ).value
        return self._record(snapshot, delta, model)

    def observe_precomputed(
        self,
        snapshot: DatasetLike,
        delta: float,
        model: ModelLike | None = None,
        resample_plan: "ResamplePlan | None" = None,
    ) -> Observation:
        """Qualify a snapshot whose deviation was computed out-of-band.

        The streaming layer maintains per-window deviations
        incrementally (mergeable sketches over the reference structure)
        and only needs the monitor for what it owns: bootstrap
        qualification, the drift decision, the history, and the
        reference policy. ``model`` (the snapshot's own model, if one
        was induced) is only used when a ``reset_on_drift`` reset makes
        the snapshot the new reference; left ``None``, the reset
        re-induces it with ``model_builder``. ``resample_plan`` -- an
        already-compiled :class:`~repro.stats.resample_plan.ResamplePlan`
        over the pooled reference + snapshot rows -- makes the
        qualification itself count-space too, so ``snapshot`` is never
        resampled (it need not even be a real dataset unless a
        ``reset_on_drift`` reset promotes it).
        """
        if not self.is_fitted:
            raise NotFittedError(
                "call fit(reference) before observe_precomputed()"
            )
        return self._record(
            snapshot, float(delta), model, resample_plan=resample_plan
        )

    def _record(
        self,
        snapshot: DatasetLike,
        delta: float,
        model: ModelLike | None,
        resample_plan: "ResamplePlan | None" = None,
    ) -> Observation:
        """Qualify, append to history, and apply the reference policy."""
        observation = self._qualify(
            snapshot, delta, model=model, resample_plan=resample_plan
        )
        if observation.drifted and self.policy == "reset_on_drift":
            self._reference_dataset = snapshot
            self._reference_model = (
                model if model is not None else self.model_builder(snapshot)
            )
            self._reference_index = observation.index
        return observation

    def observe_many(
        self, snapshots: Iterable[DatasetLike]
    ) -> list[Observation]:
        """Qualify a whole batch of snapshots in one pass.

        Produces exactly the observations a sequence of
        :meth:`observe` calls would, but under the ``"fixed"`` policy
        the deviations against the shared reference are computed with
        :func:`repro.core.deviation.deviation_many`: the reference
        dataset is support-counted once over the union of every
        snapshot's GCR itemsets, and each snapshot is scanned once.

        Under ``"reset_on_drift"`` the reference can change mid-batch,
        so the snapshots are simply observed sequentially.
        """
        if not self.is_fitted:
            raise NotFittedError("call fit(reference) before observe_many()")
        snapshots = list(snapshots)
        if self.policy != "fixed" or len(snapshots) < 2:
            return [self.observe(s) for s in snapshots]

        models = [self.model_builder(s) for s in snapshots]
        deltas = deviation_many(
            self._reference_model,
            models,
            self._reference_dataset,
            snapshots,
            f=self.f,
            g=self.g,
        )
        return [
            self._qualify(snapshot, delta.value, model=model)
            for snapshot, delta, model in zip(snapshots, deltas, models)
        ]

    def drift_points(self) -> list[int]:
        """Indices of the snapshots flagged as drifted so far.

        Snapshot indices are assigned at qualification time, so the
        result is identical whether snapshots arrived through
        :meth:`observe`, :meth:`observe_many`, or any interleaving of
        the two, and is always sorted ascending. Asking an unfitted
        monitor is a usage error (it cannot have observed anything), and
        raises instead of returning a misleading empty list.
        """
        if not self.is_fitted:
            raise NotFittedError(
                "drift_points() on an unfitted monitor: call fit(reference) "
                "and observe snapshots first"
            )
        return sorted(obs.index for obs in self.history if obs.drifted)
