"""Difference functions ``f`` (Definition 3.7 and Proposition 5.1).

A difference function maps the absolute measures of one region under the
two datasets, plus the dataset sizes, to a non-negative deviation:
``f : I+^4 -> R+`` (the paper passes absolute counts rather than bare
selectivities precisely so functions like the chi-squared ``f`` can use
them -- footnote 2).

Instantiations:

* :data:`ABSOLUTE` (``f_a``) -- the absolute difference of selectivities.
* :data:`SCALED` (``f_s``) -- the absolute difference scaled by the mean
  selectivity, which promotes changes in small regions ("noticing an
  itemset for the first time is more important than a slight increase in
  an already significant itemset", Section 3.3.2).
* :func:`chi_squared_difference` -- the per-cell chi-squared contribution
  of Proposition 5.1 (expected from dataset 1, observed in dataset 2),
  with the standard small-constant fallback for empty expected cells.

All functions are vectorised over numpy arrays of per-region counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class DifferenceFunction:
    """A named, vectorised difference function ``f(nu1, nu2, N1, N2)``."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray, int, int], np.ndarray]

    def __call__(
        self, nu1: np.ndarray, nu2: np.ndarray, n1: int, n2: int
    ) -> np.ndarray:
        nu1 = np.asarray(nu1, dtype=np.float64)
        nu2 = np.asarray(nu2, dtype=np.float64)
        return self.fn(nu1, nu2, n1, n2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DifferenceFunction({self.name})"


def _selectivities(
    nu1: np.ndarray, nu2: np.ndarray, n1: int, n2: int
) -> tuple[np.ndarray, np.ndarray]:
    s1 = nu1 / n1 if n1 > 0 else np.zeros_like(nu1)
    s2 = nu2 / n2 if n2 > 0 else np.zeros_like(nu2)
    return s1, s2


def _absolute(nu1: np.ndarray, nu2: np.ndarray, n1: int, n2: int) -> np.ndarray:
    s1, s2 = _selectivities(nu1, nu2, n1, n2)
    return np.abs(s1 - s2)


def _scaled(nu1: np.ndarray, nu2: np.ndarray, n1: int, n2: int) -> np.ndarray:
    s1, s2 = _selectivities(nu1, nu2, n1, n2)
    mean = (s1 + s2) / 2.0
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.abs(s1 - s2) / mean
    return np.where(mean > 0, out, 0.0)


ABSOLUTE = DifferenceFunction("f_a", _absolute)
SCALED = DifferenceFunction("f_s", _scaled)


def chi_squared_difference(c: float = 0.5) -> DifferenceFunction:
    """The chi-squared per-cell difference of Proposition 5.1.

    ``f(nu1, nu2, N1, N2) = N2 * (nu1/N1 - nu2/N2)^2 / (nu1/N1)`` when
    ``nu1 > 0``, else the constant ``c`` (the "add a small constant"
    device for empty expected cells; 0.5 is the common choice, §5.2.2).
    """

    def _chi(nu1: np.ndarray, nu2: np.ndarray, n1: int, n2: int) -> np.ndarray:
        s1, s2 = _selectivities(nu1, nu2, n1, n2)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = n2 * (s1 - s2) ** 2 / s1
        return np.where(nu1 > 0, out, c)

    return DifferenceFunction(f"f_chi(c={c})", _chi)


#: Registry of the paper's named difference functions.
DIFFERENCE_FUNCTIONS: dict[str, DifferenceFunction] = {
    "f_a": ABSOLUTE,
    "f_s": SCALED,
}
