"""The 2-component model abstraction (Definition 3.3) and its structures.

A model ``M`` induced by a dataset ``D`` is a pair
``<Lambda_M, Sigma(Lambda_M, D)>``: a *structural component* (a set of
regions) and a *measure component* (the selectivity of each region
w.r.t. ``D``). FOCUS never needs more than this, so the deviation engine
works against the :class:`Structure` interface:

* :class:`LitsStructure` -- a set of itemsets (lits-models). Measures are
  supports, counted against the dataset's bitmap index.
* :class:`PartitionStructure` -- box cells that partition the attribute
  space, optionally crossed with the class labels (dt-models and
  cluster-models). Measures are histogrammed in one vectorised pass.

Both structures support *focussing* (Definition 5.1): intersecting every
region with a focussing region, which Theorem 5.1 shows preserves the
meet-semilattice property.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Sequence

import numpy as np

from repro._typing import AssignerFn, DatasetLike
from repro.core.predicate import Conjunction
from repro.core.region import BoxRegion, ItemsetRegion, Region
from repro.errors import IncompatibleModelsError, InvalidParameterError


class Structure(ABC):
    """A structural component: an ordered set of regions with fast counting."""

    @property
    @abstractmethod
    def regions(self) -> tuple[Region, ...]:
        """The regions, in a deterministic order."""

    @property
    @abstractmethod
    def key(self) -> Hashable:
        """Order-insensitive identity; equal keys mean identical structures."""

    @property
    def counts_key(self) -> Hashable:
        """Order-*sensitive* identity: equal keys guarantee that counts
        vectors align region-for-region.

        Two structures can be equal as region *sets* (equal :attr:`key`)
        while enumerating their regions in different orders, in which
        case their counts vectors must not be mixed elementwise. Callers
        that cache or merge positional counts (the batched deviation
        engine, mergeable sketches) key on this instead of :attr:`key`.
        """
        return (type(self).__name__, tuple(r.key for r in self.regions))

    @abstractmethod
    def counts(self, dataset: DatasetLike) -> np.ndarray:
        """Absolute tuple counts per region (aligned with :attr:`regions`)."""

    def counts_many(
        self, datasets: Sequence[DatasetLike]
    ) -> list[np.ndarray]:
        """Counts of many snapshots over this one structure.

        The default measures each snapshot independently; structures
        with a precompiled counting plan override this to share the
        compiled state across the whole batch (one scan per snapshot).
        """
        return [np.asarray(self.counts(d)) for d in datasets]

    @abstractmethod
    def focussed(self, region: Region) -> "Structure":
        """The structure with every region intersected with ``region``."""

    def selectivities(self, dataset: DatasetLike) -> np.ndarray:
        """Relative measures sigma(Lambda, D); zeros for an empty dataset."""
        n = len(dataset)
        counts = self.counts(dataset)
        if n == 0:
            return np.zeros(len(counts))
        return counts / n

    def __len__(self) -> int:
        return len(self.regions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)


class LitsStructure(Structure):
    """The structural component of a lits-model: a set of itemsets."""

    def __init__(self, itemsets: Sequence[frozenset[int]]) -> None:
        ordered = sorted(
            {frozenset(s) for s in itemsets},
            key=lambda s: (len(s), tuple(sorted(s))),
        )
        self._itemsets: tuple[frozenset[int], ...] = tuple(ordered)
        self._regions = tuple(ItemsetRegion(s) for s in self._itemsets)

    @property
    def itemsets(self) -> tuple[frozenset[int], ...]:
        return self._itemsets

    @property
    def regions(self) -> tuple[Region, ...]:
        return self._regions

    @property
    def key(self) -> Hashable:
        return ("lits", frozenset(self._itemsets))

    def counts(self, dataset: DatasetLike) -> np.ndarray:
        """All itemset supports in one batched pass over the bitmap index.

        The whole structural component is measured by the batched
        support-counting engine (stacked ``bitwise_and`` stripes plus a
        single popcount pass), so extending to a GCR and measuring both
        datasets stays a constant number of vectorised scans.
        """
        return dataset.index.support_counts(self._itemsets)

    def focussed(self, region: Region) -> "LitsStructure":
        if not isinstance(region, ItemsetRegion):
            raise IncompatibleModelsError(
                "a lits-model can only be focussed w.r.t. an ItemsetRegion"
            )
        return LitsStructure([s | region.items for s in self._itemsets])


class PartitionStructure(Structure):
    """Box cells partitioning the attribute space, optionally per class.

    Parameters
    ----------
    cells:
        Box predicates that partition the space (pairwise disjoint,
        jointly exhaustive over the data's domain).
    class_labels:
        When non-empty, every cell is crossed with every class label
        (a dt-model's ``k`` regions per leaf); empty for cluster-models.
    assigner:
        ``assigner(dataset) -> (n,)`` int array mapping each row to its
        cell index. This is the one-scan fast path; region predicates
        remain available for display and focussing.
    focus_predicate:
        Internal: the conjunctive part of an active focussing region.
        Rows outside it are excluded from every count.
    focus_class:
        Internal: class restriction of an active focussing region.
    """

    def __init__(
        self,
        cells: Sequence[Conjunction],
        class_labels: tuple[int, ...],
        assigner: AssignerFn,
        focus_predicate: Conjunction | None = None,
        focus_class: int | None = None,
    ) -> None:
        if not cells:
            raise InvalidParameterError("a partition needs at least one cell")
        self._cells = tuple(cells)
        self._class_labels = tuple(class_labels)
        self._assigner = assigner
        self._focus_predicate = focus_predicate
        self._focus_class = focus_class
        self._regions = self._build_regions()
        self._plan = None  # compiled lazily, once

    def _build_regions(self) -> tuple[Region, ...]:
        cells = self._cells
        if self._focus_predicate is not None:
            cells = tuple(c.intersect(self._focus_predicate) for c in cells)
        regions: list[Region] = []
        if self._class_labels and self._focus_class is None:
            for cell in cells:
                for label in self._class_labels:
                    regions.append(BoxRegion(cell, label))
        elif self._class_labels:
            for cell in cells:
                regions.append(BoxRegion(cell, self._focus_class))
        else:
            label = self._focus_class
            for cell in cells:
                regions.append(BoxRegion(cell, label))
        return tuple(regions)

    @property
    def cells(self) -> tuple[Conjunction, ...]:
        return self._cells

    @property
    def class_labels(self) -> tuple[int, ...]:
        return self._class_labels

    @property
    def assigner(self) -> AssignerFn:
        return self._assigner

    @property
    def focus_predicate(self) -> Conjunction | None:
        """The conjunctive part of an active focussing region, if any."""
        return self._focus_predicate

    @property
    def focus_class(self) -> int | None:
        """The class restriction of an active focussing region, if any."""
        return self._focus_class

    @property
    def plan(self) -> "PartitionCountingPlan":
        """The precompiled counting plan (built once, cached).

        The plan owns the vectorised label-encoding table and the
        memoised assigner passes; every ``counts`` call routes through
        it, and the streaming layer's ``PartitionSketch`` shares it so a
        sketch's counts vector aligns 1:1 with :attr:`regions`.
        """
        if self._plan is None:
            from repro.core.partition_plan import PartitionCountingPlan

            self._plan = PartitionCountingPlan(self)
        return self._plan

    @property
    def regions(self) -> tuple[Region, ...]:
        return self._regions

    @property
    def key(self) -> Hashable:
        return (
            "partition",
            frozenset(r.key for r in self._regions),
        )

    def counts(self, dataset: DatasetLike) -> np.ndarray:
        """Histogram the dataset over cells (x classes) in one pass.

        Delegates to the precompiled :attr:`plan`: a memoised assigner
        pass, vectorised ``searchsorted`` label routing (a label outside
        :attr:`class_labels` raises ``IncompatibleModelsError``), and a
        single ``bincount``. Measuring a class-restricted (focussed)
        structure against an unlabelled dataset raises ``SchemaError``,
        exactly like ``TabularDataset.box_mask`` does.
        """
        return self.plan.counts(dataset)

    def counts_many(
        self, datasets: Sequence[DatasetLike]
    ) -> list[np.ndarray]:
        """Counts of many snapshots, sharing one compiled plan."""
        return self.plan.counts_many(datasets)

    def focussed(self, region: Region) -> "PartitionStructure":
        if not isinstance(region, BoxRegion):
            raise IncompatibleModelsError(
                "a partition model can only be focussed w.r.t. a BoxRegion"
            )
        predicate = region.predicate
        if self._focus_predicate is not None:
            predicate = self._focus_predicate.intersect(predicate)
        focus_class = self._focus_class
        if region.class_label is not None:
            if focus_class is not None and focus_class != region.class_label:
                raise IncompatibleModelsError(
                    "conflicting class restrictions in nested focussing"
                )
            focus_class = region.class_label
        return PartitionStructure(
            self._cells,
            self._class_labels,
            self._assigner,
            focus_predicate=predicate,
            focus_class=focus_class,
        )


class Model(ABC):
    """A 2-component model: a structure plus the dataset that induced it."""

    @property
    @abstractmethod
    def structure(self) -> Structure:
        """The structural component Lambda_M."""

    def measures(self, dataset: DatasetLike) -> np.ndarray:
        """The measure component Sigma(Lambda_M, D) w.r.t. any dataset."""
        return self.structure.selectivities(dataset)
