"""Change monitoring: misclassification error and chi-squared (Section 5.2).

"By how much does the old model misrepresent the new data?" FOCUS
captures the two traditional answers as instantiations:

* **Misclassification error** (Theorem 5.2):
  ``ME_T(D2) = 1/2 * delta_(f_a, g_sum)(<Lambda_T, Sigma(Lambda_T, D2)>,
  <Lambda_T, Sigma(Lambda_T, D2^T)>)`` where ``D2^T`` is ``D2`` with every
  label replaced by the tree's prediction. Both the direct definition and
  the FOCUS form are provided; the tests assert they agree exactly.

* **Chi-squared goodness of fit** (Proposition 5.1): the statistic over
  the tree's regions with expected measures from ``D1`` and observed from
  ``D2``, using the chi-squared difference function and ``g_sum``. Since
  decision trees routinely violate the expected-count preconditions of
  the textbook X^2 tables, significance is estimated with the bootstrap
  (Section 3.4) rather than the tables.
"""

from __future__ import annotations

import numpy as np

from typing import Sequence

from repro.core.aggregate import SUM
from repro.core.deviation import (
    DeviationResult,
    deviation_over_structure,
    deviation_over_structure_many,
)
from repro.core.difference import ABSOLUTE, chi_squared_difference
from repro.core.dtree_model import DtModel
from repro.data.tabular import TabularDataset
from repro.errors import SchemaError


def predicted_dataset(model: DtModel, dataset: TabularDataset) -> TabularDataset:
    """``D^T``: the dataset with every class label replaced by T's prediction."""
    predictions = model.predict(dataset)
    return dataset.relabel(predictions)


def misclassification_error(model: DtModel, dataset: TabularDataset) -> float:
    """Direct ME: the fraction of tuples the tree misclassifies."""
    if dataset.y is None:
        raise SchemaError("misclassification error needs a labelled dataset")
    if len(dataset) == 0:
        return 0.0
    return float(np.mean(model.predict(dataset) != dataset.y))


def misclassification_error_focus(
    model: DtModel, dataset: TabularDataset
) -> DeviationResult:
    """ME as a FOCUS deviation (Theorem 5.2); ``value/2`` equals the ME.

    Returns the full deviation result; use
    ``misclassification_error_focus(m, d).value / 2`` for the error, or
    :func:`misclassification_error_via_focus` for the scalar directly.
    """
    predicted = predicted_dataset(model, dataset)
    return deviation_over_structure(
        model.structure, dataset, predicted, f=ABSOLUTE, g=SUM
    )


def misclassification_error_via_focus(
    model: DtModel, dataset: TabularDataset
) -> float:
    """The scalar ME computed through the FOCUS identity of Theorem 5.2."""
    return misclassification_error_focus(model, dataset).value / 2.0


def chi_squared_statistic(
    model: DtModel,
    dataset1: TabularDataset,
    dataset2: TabularDataset,
    c: float = 0.5,
) -> DeviationResult:
    """The X^2 statistic over the tree's regions (Proposition 5.1).

    ``dataset1`` supplies the expected measures (the data that built the
    tree), ``dataset2`` the observed ones. Cells with zero expected
    measure contribute the constant ``c``.
    """
    return deviation_over_structure(
        model.structure, dataset1, dataset2, f=chi_squared_difference(c), g=SUM
    )


def chi_squared_statistics(
    model: DtModel,
    dataset1: TabularDataset,
    datasets: Sequence[TabularDataset],
    c: float = 0.5,
) -> list[DeviationResult]:
    """The X^2 statistic of many snapshots against one expected dataset.

    The monitoring loop's batched form: the expected measures (from
    ``dataset1``) are histogrammed over the tree's regions exactly once
    and reused for every snapshot, so ``W`` windows cost ``W + 1`` scans.
    """
    return deviation_over_structure_many(
        model.structure, dataset1, datasets, f=chi_squared_difference(c), g=SUM
    )


def misclassification_errors(
    model: DtModel, datasets: Sequence[TabularDataset]
) -> list[float]:
    """The scalar ME of many snapshots, via the Theorem 5.2 identity."""
    return [misclassification_error_via_focus(model, d) for d in datasets]
