"""Attributes and attribute spaces (Definition 3.1 of the paper).

An :class:`Attribute` is a named dimension of the attribute space
``A(I) = D_1 x ... x D_n``. FOCUS regions constrain attributes one at a
time, so the only structure an attribute needs is its *kind*:

* ``NUMERIC`` -- a totally ordered domain, constrained by half-open
  intervals ``[lo, hi)``.
* ``CATEGORICAL`` -- a finite unordered domain of integer codes,
  constrained by value sets.

Datasets store every column as ``float64``; categorical columns hold the
integer codes as floats. That keeps region evaluation a single vectorised
mask per attribute regardless of kind.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.errors import InvalidParameterError


class AttributeKind(Enum):
    """The two attribute kinds FOCUS regions know how to constrain."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Attribute:
    """A named dimension of the attribute space.

    Parameters
    ----------
    name:
        Identifier used by datasets, predicates, and regions.
    kind:
        ``AttributeKind.NUMERIC`` or ``AttributeKind.CATEGORICAL``.
    low, high:
        For numeric attributes, the half-open domain ``[low, high)``.
        Defaults to the whole real line.
    values:
        For categorical attributes, the tuple of legal integer codes.
    """

    name: str
    kind: AttributeKind = AttributeKind.NUMERIC
    low: float = -math.inf
    high: float = math.inf
    values: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidParameterError("attribute name must be non-empty")
        if self.kind is AttributeKind.NUMERIC:
            if not self.low < self.high:
                raise InvalidParameterError(
                    f"numeric attribute {self.name!r} needs low < high, "
                    f"got [{self.low}, {self.high})"
                )
        else:
            if not self.values:
                raise InvalidParameterError(
                    f"categorical attribute {self.name!r} needs at least one value"
                )
            if len(set(self.values)) != len(self.values):
                raise InvalidParameterError(
                    f"categorical attribute {self.name!r} has duplicate values"
                )

    @property
    def is_numeric(self) -> bool:
        return self.kind is AttributeKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind is AttributeKind.CATEGORICAL


def numeric(name: str, low: float = -math.inf, high: float = math.inf) -> Attribute:
    """Shorthand constructor for a numeric attribute with domain ``[low, high)``."""
    return Attribute(name, AttributeKind.NUMERIC, low=low, high=high)


def categorical(name: str, values: tuple[int, ...] | range) -> Attribute:
    """Shorthand constructor for a categorical attribute over integer codes."""
    return Attribute(name, AttributeKind.CATEGORICAL, values=tuple(values))


@dataclass(frozen=True)
class AttributeSpace:
    """The cross product of attribute domains, ``A(I)`` in the paper.

    The space also records the class labels when the datasets carry a
    class attribute (dt-models produce ``k`` regions per leaf, one per
    class; see Section 2.1 of the paper).
    """

    attributes: tuple[Attribute, ...]
    class_labels: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise InvalidParameterError(f"duplicate attribute names in {names}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def n_attributes(self) -> int:
        return len(self.attributes)

    @property
    def n_classes(self) -> int:
        return len(self.class_labels)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising ``SchemaError`` if absent."""
        for a in self.attributes:
            if a.name == name:
                return a
        from repro.errors import SchemaError

        raise SchemaError(f"unknown attribute {name!r}; have {self.names}")

    def index_of(self, name: str) -> int:
        """Column index of the named attribute."""
        for i, a in enumerate(self.attributes):
            if a.name == name:
                return i
        from repro.errors import SchemaError

        raise SchemaError(f"unknown attribute {name!r}; have {self.names}")

    def compatible_with(self, other: "AttributeSpace") -> bool:
        """Whether two spaces describe the same attributes and classes."""
        return (
            self.attributes == other.attributes
            and self.class_labels == other.class_labels
        )
