"""Aggregate functions ``g`` (Section 3.3.2).

An aggregate function folds the per-region deviations into a single
number: ``g : P(R+) -> R+``. The paper's two instantiations are ``sum``
and ``max``; together with ``f_a``/``f_s`` they generate the four
deviation measures studied in Section 6. Aggregating an empty region set
yields 0 (no regions, no work to transform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class AggregateFunction:
    """A named reduction over a vector of per-region deviations."""

    name: str
    fn: Callable[[np.ndarray], float]

    def __call__(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0.0
        return float(self.fn(values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateFunction({self.name})"


SUM = AggregateFunction("g_sum", np.sum)
MAX = AggregateFunction("g_max", np.max)

#: Registry of the paper's named aggregate functions.
AGGREGATE_FUNCTIONS: dict[str, AggregateFunction] = {
    "g_sum": SUM,
    "g_max": MAX,
}
