"""A tiny declarative predicate language for focussing regions (Section 5).

The paper's operators "declaratively specify a set of interesting
regions"; this parser turns strings like::

    age < 30 and salary >= 100000
    elevel in {0, 1} and 40 <= age
    age < 30 and class = 1

into :class:`~repro.core.region.BoxRegion` objects, so analysts can
write focussing regions without touching predicate objects.

Grammar (conjunctions only, matching FOCUS's conjunctive regions)::

    predicate := clause ("and" clause)*
    clause    := NAME cmp NUMBER | NUMBER cmp NAME
               | NAME "in" "{" NUMBER ("," NUMBER)* "}"
               | "class" "=" INT
    cmp       := "<" | "<=" | ">" | ">=" | "="

``x <= v`` is translated to the half-open ``x < nextafter(v, inf)`` so
every interval stays ``[lo, hi)``; ``name = v`` on a numeric attribute
means the degenerate interval ``[v, nextafter(v))``.
"""

from __future__ import annotations

import math
import re

from repro.core.predicate import Conjunction, Interval, ValueSet
from repro.core.region import BoxRegion
from repro.errors import InvalidParameterError

_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<op><=|>=|<|>|=)"
    r"|(?P<brace>[{}])"
    r"|(?P<comma>,))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise InvalidParameterError(
                f"cannot tokenize predicate at: {text[pos:pos + 20]!r}"
            )
        pos = match.end()
        for kind in ("name", "number", "op", "brace", "comma"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


def _split_clauses(tokens: list[tuple[str, str]]) -> list[list[tuple[str, str]]]:
    clauses: list[list[tuple[str, str]]] = [[]]
    for kind, value in tokens:
        if kind == "name" and value.lower() == "and":
            if not clauses[-1]:
                raise InvalidParameterError("empty clause before 'and'")
            clauses.append([])
        else:
            clauses[-1].append((kind, value))
    if not clauses[-1]:
        raise InvalidParameterError("trailing 'and' in predicate")
    return clauses


def _interval_for(op: str, value: float, name_on_left: bool) -> Interval:
    if not name_on_left:
        # "30 <= age" is "age >= 30": flip the comparison.
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
    if op == "<":
        return Interval(hi=value)
    if op == "<=":
        return Interval(hi=math.nextafter(value, math.inf))
    if op == ">":
        return Interval(lo=math.nextafter(value, math.inf))
    if op == ">=":
        return Interval(lo=value)
    return Interval(value, math.nextafter(value, math.inf))


def _parse_clause(
    clause: list[tuple[str, str]]
) -> tuple[str, ValueSet | Interval]:
    kinds = [k for k, _ in clause]
    # NAME in { ... }
    if (
        len(clause) >= 4
        and kinds[0] == "name"
        and clause[1] == ("name", "in")
        and clause[2] == ("brace", "{")
        and clause[-1] == ("brace", "}")
    ):
        name = clause[0][1]
        values = []
        for kind, value in clause[3:-1]:
            if kind == "comma":
                continue
            if kind != "number" or "." in value:
                raise InvalidParameterError(
                    f"value set for {name!r} must contain integers"
                )
            values.append(int(value))
        if not values:
            raise InvalidParameterError(f"empty value set for {name!r}")
        return name, ValueSet(values)
    # NAME op NUMBER or NUMBER op NAME
    if kinds == ["name", "op", "number"]:
        name, op, number = clause[0][1], clause[1][1], float(clause[2][1])
        return name, _interval_for(op, number, name_on_left=True)
    if kinds == ["number", "op", "name"]:
        number, op, name = float(clause[0][1]), clause[1][1], clause[2][1]
        return name, _interval_for(op, number, name_on_left=False)
    raise InvalidParameterError(
        "clause must be 'name op number', 'number op name', or "
        f"'name in {{...}}'; got {' '.join(v for _, v in clause)!r}"
    )


def parse_predicate(text: str) -> Conjunction:
    """Parse a conjunction string into a :class:`Conjunction`."""
    if not text or not text.strip():
        return Conjunction()
    constraints: dict[str, Interval | ValueSet] = {}
    for clause in _split_clauses(_tokenize(text)):
        name, constraint = _parse_clause(clause)
        if name in constraints:
            existing = constraints[name]
            if isinstance(existing, Interval) != isinstance(constraint, Interval):
                raise InvalidParameterError(
                    f"mixed interval/value-set constraints on {name!r}"
                )
            constraints[name] = existing.intersect(constraint)
        else:
            constraints[name] = constraint
    return Conjunction(constraints)


def format_predicate(predicate: Conjunction) -> str:
    """Render a conjunction as text that :func:`parse_predicate` accepts.

    Inverse of :func:`parse_predicate` up to predicate equality: interval
    bounds become ``>=`` / ``<`` clauses (the native half-open form) and
    value sets become ``in {...}`` clauses.
    """
    clauses: list[str] = []
    for name in sorted(predicate.constraints):
        constraint = predicate.constraints[name]
        if isinstance(constraint, Interval):
            if constraint.lo != -math.inf:
                clauses.append(f"{name} >= {constraint.lo!r}")
            if constraint.hi != math.inf:
                clauses.append(f"{name} < {constraint.hi!r}")
        else:
            values = ", ".join(str(v) for v in sorted(constraint.values))
            clauses.append(f"{name} in {{{values}}}")
    return " and ".join(clauses)


def format_region(region: BoxRegion) -> str:
    """Render a box region as text that :func:`parse_region` accepts."""
    parts = []
    predicate_text = format_predicate(region.predicate)
    if predicate_text:
        parts.append(predicate_text)
    if region.class_label is not None:
        parts.append(f"class = {region.class_label}")
    return " and ".join(parts)


def parse_region(text: str) -> BoxRegion:
    """Parse a region string; a ``class = k`` clause sets the class label."""
    if not text or not text.strip():
        return BoxRegion()
    class_label: int | None = None
    kept: list[str] = []
    for part in re.split(r"\band\b", text):
        stripped = part.strip()
        match = re.fullmatch(r"class\s*=\s*(-?\d+)", stripped)
        if match:
            if class_label is not None:
                raise InvalidParameterError("multiple class clauses")
            class_label = int(match.group(1))
        elif stripped:
            kept.append(stripped)
    predicate = parse_predicate(" and ".join(kept))
    return BoxRegion(predicate, class_label)
