"""dt-models: decision trees as 2-component models (Sections 2.1, 4.2).

The structural component of a dt-model with ``k`` classes is the set of
``n_leaves x k`` regions -- each leaf's box crossed with each class
label -- which partitions the attribute space. Measures are the fractions
of tuples falling in each (box, class) region.

The structure is a :class:`~repro.core.model.PartitionStructure` whose
assigner is the tree's vectorised leaf descent, so measuring any number
of regions costs one scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import Model, PartitionStructure
from repro.data.tabular import TabularDataset
from repro.mining.tree.builder import TreeParams, build_tree
from repro.mining.tree.tree import DecisionTree


@dataclass(frozen=True)
class DtModel(Model):
    """A decision-tree model over a labelled attribute space."""

    tree: DecisionTree
    _structure: PartitionStructure = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        tree = self.tree
        structure = PartitionStructure(
            cells=tuple(tree.leaf_predicates()),
            class_labels=tree.space.class_labels,
            assigner=tree.assign_dataset,
        )
        object.__setattr__(self, "_structure", structure)

    @classmethod
    def fit(
        cls, dataset: TabularDataset, params: TreeParams | None = None
    ) -> "DtModel":
        """Induce a dt-model from a labelled dataset with the CART builder."""
        return cls(build_tree(dataset, params))

    @property
    def structure(self) -> PartitionStructure:
        return self._structure

    @property
    def n_leaves(self) -> int:
        return self.tree.n_leaves

    def predict(self, dataset: TabularDataset) -> np.ndarray:
        """Majority-class predictions (delegates to the tree)."""
        return self.tree.predict(dataset)
