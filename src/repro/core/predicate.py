"""Predicate algebra for regions.

Each region of the attribute space is identified by a predicate
(Definition 3.1). This module implements the conjunctive predicates that
arise from the paper's three model classes:

* :class:`Interval` -- ``lo <= x < hi`` for numeric attributes (decision
  tree splits produce half-open intervals; overlaying two trees
  intersects them, which stays half-open).
* :class:`ValueSet` -- ``x in S`` for categorical attributes.
* :class:`Conjunction` -- an AND of per-attribute constraints. An
  attribute absent from the conjunction is unconstrained.

Conjunctions are closed under intersection, which is exactly what the
greatest common refinement of two dt-models requires: "anding all
possible pairs of predicates from both structural components"
(Section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Mapping, Union

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class Interval:
    """A half-open interval ``[lo, hi)`` over a numeric attribute."""

    lo: float = -math.inf
    hi: float = math.inf

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise InvalidParameterError("interval bounds must not be NaN")

    @property
    def is_empty(self) -> bool:
        return not self.lo < self.hi

    @property
    def is_universal(self) -> bool:
        return self.lo == -math.inf and self.hi == math.inf

    def intersect(self, other: "Interval") -> "Interval":
        """The (possibly empty) intersection of two intervals."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def contains(self, value: float) -> bool:
        return self.lo <= value < self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` (non-empty) is a subset of this interval."""
        if other.is_empty:
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def mask(self, column: np.ndarray) -> np.ndarray:
        """Vectorised membership test over a data column."""
        out = np.ones(column.shape, dtype=bool)
        if self.lo != -math.inf:
            out &= column >= self.lo
        if self.hi != math.inf:
            out &= column < self.hi
        return out

    def describe(self, name: str) -> str:
        if self.is_universal:
            return f"{name}: any"
        if self.lo == -math.inf:
            return f"{name} < {self.hi:g}"
        if self.hi == math.inf:
            return f"{name} >= {self.lo:g}"
        return f"{self.lo:g} <= {name} < {self.hi:g}"


@dataclass(frozen=True)
class ValueSet:
    """A finite set of admissible integer codes for a categorical attribute."""

    values: frozenset[int]

    def __init__(self, values: Iterable[int]) -> None:
        object.__setattr__(self, "values", frozenset(int(v) for v in values))

    @property
    def is_empty(self) -> bool:
        return not self.values

    def intersect(self, other: "ValueSet") -> "ValueSet":
        return ValueSet(self.values & other.values)

    def contains(self, value: float) -> bool:
        return int(value) in self.values and value == int(value)

    def contains_set(self, other: "ValueSet") -> bool:
        return other.values <= self.values

    def mask(self, column: np.ndarray) -> np.ndarray:
        if not self.values:
            return np.zeros(column.shape, dtype=bool)
        return np.isin(column, np.array(sorted(self.values), dtype=column.dtype))

    def describe(self, name: str) -> str:
        vals = ",".join(str(v) for v in sorted(self.values))
        return f"{name} in {{{vals}}}"


Constraint = Union[Interval, ValueSet]

UNIVERSAL_INTERVAL = Interval()


def _constraints_intersect(a: Constraint, b: Constraint) -> Constraint:
    if isinstance(a, Interval) != isinstance(b, Interval):
        raise InvalidParameterError(
            "cannot intersect an Interval with a ValueSet on the same attribute"
        )
    return a.intersect(b)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Conjunction:
    """An AND of per-attribute constraints; the predicate of a box region.

    The empty conjunction is the always-true predicate (the whole
    attribute space). Conjunctions are hashable and comparable so they
    can serve as structural-component keys.
    """

    constraints: Mapping[str, Constraint]

    def __init__(self, constraints: Mapping[str, Constraint] | None = None) -> None:
        items = dict(constraints or {})
        # Drop universal constraints so that equal predicates hash equally.
        items = {
            name: c
            for name, c in items.items()
            if not (isinstance(c, Interval) and c.is_universal)
        }
        object.__setattr__(self, "constraints", MappingProxyType(items))

    def __hash__(self) -> int:
        return hash(frozenset(self.constraints.items()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Conjunction):
            return NotImplemented
        return dict(self.constraints) == dict(other.constraints)

    @property
    def is_universal(self) -> bool:
        return not self.constraints

    @property
    def is_empty(self) -> bool:
        return any(c.is_empty for c in self.constraints.values())

    def constraint_for(self, name: str) -> Constraint | None:
        return self.constraints.get(name)

    def intersect(self, other: "Conjunction") -> "Conjunction":
        """Per-attribute intersection; may produce an empty conjunction."""
        merged: dict[str, Constraint] = dict(self.constraints)
        for name, c in other.constraints.items():
            if name in merged:
                merged[name] = _constraints_intersect(merged[name], c)
            else:
                merged[name] = c
        return Conjunction(merged)

    def contains_point(self, point: Mapping[str, float]) -> bool:
        """Whether a point (attribute name -> value) satisfies the predicate."""
        for name, c in self.constraints.items():
            if name not in point or not c.contains(point[name]):
                return False
        return True

    def contains_conjunction(self, other: "Conjunction") -> bool:
        """Whether ``other``'s box is a subset of this box (both non-empty)."""
        for name, c in self.constraints.items():
            other_c = other.constraints.get(name)
            if other_c is None:
                return False
            if isinstance(c, Interval):
                if not isinstance(other_c, Interval):
                    return False
                if not c.contains_interval(other_c):
                    return False
            else:
                if not isinstance(other_c, ValueSet):
                    return False
                if not c.contains_set(other_c):
                    return False
        return True

    def mask(self, columns: Mapping[str, np.ndarray], n_rows: int) -> np.ndarray:
        """Vectorised membership over named columns of equal length."""
        out = np.ones(n_rows, dtype=bool)
        for name, c in self.constraints.items():
            if name not in columns:
                from repro.errors import SchemaError

                raise SchemaError(f"predicate references unknown attribute {name!r}")
            out &= c.mask(columns[name])
        return out

    def describe(self) -> str:
        if self.is_universal:
            return "true"
        parts = [
            self.constraints[name].describe(name)
            for name in sorted(self.constraints)
        ]
        return " and ".join(parts)


TRUE = Conjunction()


def interval_constraint(name: str, lo: float = -math.inf, hi: float = math.inf) -> Conjunction:
    """A conjunction with a single interval constraint, e.g. ``age < 30``."""
    return Conjunction({name: Interval(lo, hi)})


def value_constraint(name: str, values: Iterable[int]) -> Conjunction:
    """A conjunction with a single categorical constraint, e.g. ``elevel in {0,1}``."""
    return Conjunction({name: ValueSet(values)})
