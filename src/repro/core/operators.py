"""Structural and rank operators for exploratory analysis (Section 5).

The paper equips FOCUS with a small algebra over *sets of regions* so an
analyst can declaratively specify where to look for change:

* ``structural_union`` (the paper's square-cup) -- the GCR of two
  structures;
* ``structural_intersection`` (square-cap) -- regions present in both;
* ``structural_difference`` -- ``(union) minus (intersection)``;
* ``predicate_region`` -- an explicitly specified region;
* ``rank`` (the paper's rho operator) -- order regions by the
  "interestingness" of change between two datasets, measured by a
  deviation function;
* selectors ``top`` / ``top_n`` / ``min_region`` / ``bottom_n``.

Rank works on any iterable of regions (from structures, unions of
structural components, or hand-built), measuring each region's deviation
with one selectivity query per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro._typing import DatasetLike
from repro.core.aggregate import AggregateFunction, SUM
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.gcr import gcr
from repro.core.model import Structure
from repro.core.region import ItemsetRegion, Region


def structural_union(s1: Structure, s2: Structure) -> Structure:
    """The paper's structural union: the GCR of the two region sets."""
    return gcr(s1, s2)


def structural_intersection(s1: Structure, s2: Structure) -> tuple[Region, ...]:
    """Regions that appear in both structural components (set semantics)."""
    keys2 = {r.key for r in s2.regions}
    return tuple(r for r in s1.regions if r.key in keys2)


def structural_difference(s1: Structure, s2: Structure) -> tuple[Region, ...]:
    """``(s1 union s2) minus (s1 intersect s2)`` on region sets."""
    union = structural_union(s1, s2).regions
    common = {r.key for r in structural_intersection(s1, s2)}
    return tuple(r for r in union if r.key not in common)


def region_set_union(*region_sets: Iterable[Region]) -> tuple[Region, ...]:
    """Plain set union of region collections (the paper's ``Lambda1 U Lambda2``)."""
    seen: dict[Hashable, Region] = {}
    for regions in region_sets:
        for r in regions:
            seen.setdefault(r.key, r)
    return tuple(seen.values())


def itemsets_over(
    regions: Iterable[Region], items: Iterable[int]
) -> tuple[Region, ...]:
    """Filter itemset regions to those drawn from an item subset.

    Implements the paper's ``P(I_1)`` device: the region set of all
    itemsets over a department's items ``I_1``, intersected with a
    structural component.
    """
    universe = frozenset(int(i) for i in items)
    return tuple(
        r
        for r in regions
        if isinstance(r, ItemsetRegion) and r.items <= universe
    )


@dataclass(frozen=True)
class RankedRegion:
    """A region with its interestingness score (deviation contribution)."""

    region: Region
    score: float
    selectivity1: float
    selectivity2: float

    def describe(self) -> str:
        return (
            f"{self.region.describe()}: score={self.score:.6g} "
            f"(sigma1={self.selectivity1:.4g}, sigma2={self.selectivity2:.4g})"
        )


def rank(
    regions: Iterable[Region],
    dataset1: DatasetLike,
    dataset2: DatasetLike,
    f: DifferenceFunction = ABSOLUTE,
    g: AggregateFunction = SUM,
) -> list[RankedRegion]:
    """The rank operator: regions in decreasing order of interestingness.

    Each region's score is its own deviation between the two datasets --
    ``g({f(nu1, nu2, N1, N2)})`` over the singleton region set, which for
    both ``g_sum`` and ``g_max`` is just the ``f`` value.
    """
    n1, n2 = len(dataset1), len(dataset2)
    ranked: list[RankedRegion] = []
    for region in regions:
        s1 = region.selectivity(dataset1)
        s2 = region.selectivity(dataset2)
        nu1 = np.array([round(s1 * n1)])
        nu2 = np.array([round(s2 * n2)])
        score = g(f(nu1, nu2, max(n1, 1), max(n2, 1)))
        ranked.append(RankedRegion(region, score, s1, s2))
    ranked.sort(key=lambda rr: (-rr.score, str(rr.region.describe())))
    return ranked


def top(ranked: Sequence[RankedRegion]) -> RankedRegion:
    """``sigma_top``: the most interesting region."""
    return ranked[0]


def top_n(ranked: Sequence[RankedRegion], n: int) -> list[RankedRegion]:
    """``sigma_n``: the ``n`` most interesting regions."""
    return list(ranked[:n])


def min_region(ranked: Sequence[RankedRegion]) -> RankedRegion:
    """``sigma_min``: the least interesting region."""
    return ranked[-1]


def bottom_n(ranked: Sequence[RankedRegion], n: int) -> list[RankedRegion]:
    """``sigma_-n``: the ``n`` least interesting regions."""
    return list(ranked[-n:])
