"""cluster-models: grid clusterings as 2-component models (Section 2.4).

The paper notes that cluster-models are "a special case of dt-models": a
set of non-overlapping box regions with measures. Here a cluster-model's
structural component is the full set of grid cells of the clustering's
grid (dense *and* sparse, making the region set an exhaustive partition,
so the dt-model theory applies verbatim); the clustering itself (dense
cells, connected components) rides along for interpretation.

The GCR of two cluster-models over different grids is the overlay of the
grids -- handled by the same partition-overlay code path as dt-models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import Model, PartitionStructure
from repro.data.tabular import TabularDataset
from repro.mining.cluster.grid import GridClustering, grid_cluster


@dataclass(frozen=True)
class ClusterModel(Model):
    """A grid-clustering model over (a projection of) the attribute space."""

    clustering: GridClustering
    _structure: PartitionStructure = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        grid = self.clustering.grid
        n_cells = int(np.prod(grid.shape()))
        cells = tuple(grid.cell_predicate(i) for i in range(n_cells))
        structure = PartitionStructure(
            cells=cells,
            class_labels=(),
            assigner=grid.assign,
        )
        object.__setattr__(self, "_structure", structure)

    @classmethod
    def fit(
        cls,
        dataset: TabularDataset,
        bins: int = 8,
        density_threshold: float | None = None,
        attributes: tuple[str, ...] | None = None,
    ) -> "ClusterModel":
        """Cluster a dataset on a uniform grid (optionally a projection)."""
        clustering = grid_cluster(
            dataset,
            bins=bins,
            density_threshold=density_threshold,
            attributes=attributes,
        )
        return cls(clustering)

    @property
    def structure(self) -> PartitionStructure:
        return self._structure

    @property
    def n_clusters(self) -> int:
        return self.clustering.n_clusters
