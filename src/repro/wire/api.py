"""One-call pack/unpack over every wire kind, plus payload inspection.

:func:`pack` dispatches on the object's class, :func:`unpack` on the
payload's verified kind tag -- the pair the CLI, the federated fleet
entry point, and model persistence all use. :func:`payload_info`
describes a payload (kind, version, per-section sizes) after full
verification, for ``repro sketch inspect``.
"""

from __future__ import annotations

from typing import Any, Union

from repro.core.cluster_model import ClusterModel
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.errors import InvalidParameterError
from repro.stream.sketch import PartitionSketch, SupportSketch
from repro.wire.format import (
    KIND_PARTITION_SKETCH,
    KIND_SUPPORT_SKETCH,
    read_envelope,
)
from repro.wire.models import WireModel, model_from_envelope, pack_model
from repro.wire.sketches import (
    PartitionModel,
    _partition_from_envelope,
    _support_from_envelope,
    pack_partition_sketch,
    pack_support_sketch,
)

#: Everything the wire can carry.
WirePayload = Union[SupportSketch, PartitionSketch, WireModel]


def pack(
    obj: WirePayload, *, model: PartitionModel | None = None
) -> bytes:
    """Encode any sketch or model as one versioned checksummed payload.

    A :class:`PartitionSketch` needs its inducing ``model`` (the
    structure travels as the model; see
    :func:`repro.wire.sketches.pack_partition_sketch`); everything else
    packs alone.
    """
    if isinstance(obj, SupportSketch):
        return pack_support_sketch(obj)
    if isinstance(obj, PartitionSketch):
        if model is None:
            raise InvalidParameterError(
                "packing a PartitionSketch requires its inducing dt- or "
                "cluster-model (pass model=...): the structure travels "
                "as the model"
            )
        return pack_partition_sketch(obj, model)
    if isinstance(obj, (LitsModel, DtModel, ClusterModel)):
        return pack_model(obj)
    raise InvalidParameterError(
        f"{type(obj).__name__} is not wire-packable (expected a sketch "
        "or a reference model)"
    )


def unpack(data: bytes) -> WirePayload:
    """Decode any payload, dispatching on the verified kind tag.

    Partition-sketch payloads decode to the sketch alone; use
    :func:`repro.wire.sketches.unpack_partition_payload` when the
    embedded model is wanted too.
    """
    envelope = read_envelope(data)
    if envelope.kind == KIND_SUPPORT_SKETCH:
        return _support_from_envelope(envelope)
    if envelope.kind == KIND_PARTITION_SKETCH:
        sketch, _ = _partition_from_envelope(envelope)
        return sketch
    return model_from_envelope(envelope)


def payload_info(data: bytes) -> dict[str, Any]:
    """Describe a payload after full verification (for inspection)."""
    envelope = read_envelope(data)
    return {
        "kind": envelope.kind_name,
        "version": envelope.version,
        "total_bytes": len(data),
        "sections": [
            {"name": name, "bytes": len(payload)}
            for name, payload in envelope.sections
        ],
    }
