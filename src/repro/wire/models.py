"""Model codecs: lits-, dt-, and cluster-models on the wire.

The delta* workflow keeps mined models around ("which will probably fit
in main memory, unlike the datasets"); these codecs put them *on the
wire* in the same envelope sketches travel in, so a federated site ships
its model + sketch as two small verified payloads.

Layouts (section order is canonical per kind; see
:meth:`repro.wire.format.Envelope.expect`):

* **lits-model** -- ``meta`` (min_support, n_items JSON), the itemset
  table (``sizes``/``items`` int64 arrays), and the aligned ``supports``
  float64 array. Binary-exact: supports travel as raw float64, not
  decimal strings.
* **dt-model** / **cluster-model** -- one ``model`` JSON section holding
  the canonical dict form shared with :mod:`repro.data.model_io` (floats
  round-trip exactly through JSON repr). Trees and grids are small and
  irregular; JSON-in-envelope keeps one canonical form while still
  getting versioning + CRC from the frame.

:func:`unpack_model` dispatches on the envelope's kind tag; every byte
is CRC-verified by :func:`~repro.wire.format.read_envelope` before any
model object is constructed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.cluster_model import ClusterModel
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.data.model_io import (
    cluster_model_from_dict,
    cluster_model_to_dict,
    dt_model_from_dict,
    dt_model_to_dict,
)
from repro.errors import InvalidParameterError, WireFormatError
from repro.wire.encoding import (
    itemset_sections,
    itemsets_from_sections,
    pack_array,
    pack_json,
    unpack_array,
    unpack_json_object,
)
from repro.wire.format import (
    KIND_CLUSTER_MODEL,
    KIND_DT_MODEL,
    KIND_LITS_MODEL,
    Envelope,
    pack_envelope,
    read_envelope,
)

#: The model classes the wire knows how to carry.
WireModel = Union[LitsModel, DtModel, ClusterModel]

_LITS_SECTIONS = ("meta", "sizes", "items", "supports")
_DICT_SECTIONS = ("model",)


def pack_lits_model(model: LitsModel) -> bytes:
    """Encode a lits-model (binary-exact supports)."""
    itemsets = model.itemsets
    supports = np.array(
        [model.supports[s] for s in itemsets], dtype=np.float64
    )
    sizes, items = itemset_sections(itemsets)
    meta = pack_json(
        {"min_support": model.min_support, "n_items": model.n_items}
    )
    return pack_envelope(
        KIND_LITS_MODEL,
        [
            ("meta", meta),
            ("sizes", sizes),
            ("items", items),
            ("supports", pack_array(supports)),
        ],
    )


def _lits_from_envelope(envelope: Envelope) -> LitsModel:
    meta_payload, sizes, items, supports_payload = envelope.expect(
        _LITS_SECTIONS
    )
    meta = unpack_json_object(
        meta_payload, "meta", ("min_support", "n_items")
    )
    itemsets = itemsets_from_sections(sizes, items)
    supports = unpack_array(supports_payload, "supports")
    if supports.shape != (len(itemsets),):
        raise WireFormatError(
            f"supports array of shape {supports.shape} does not align "
            f"with the {len(itemsets)} itemsets",
            section="supports",
        )
    try:
        return LitsModel(
            {s: float(v) for s, v in zip(itemsets, supports)},
            float(meta["min_support"]),
            int(meta["n_items"]),
        )
    except (InvalidParameterError, TypeError, ValueError) as exc:
        raise WireFormatError(
            f"lits-model metadata is invalid: {exc}", section="meta"
        ) from None


def unpack_lits_model(data: bytes) -> LitsModel:
    """Decode a lits-model payload (checksums verified first)."""
    return _lits_from_envelope(
        read_envelope(data, expect_kind=KIND_LITS_MODEL)
    )


def pack_dt_model(model: DtModel) -> bytes:
    """Encode a dt-model (canonical dict form in one JSON section)."""
    return pack_envelope(
        KIND_DT_MODEL, [("model", pack_json(dt_model_to_dict(model)))]
    )


def _dt_from_envelope(envelope: Envelope) -> DtModel:
    (payload,) = envelope.expect(_DICT_SECTIONS)
    obj = unpack_json_object(payload, "model", ("kind", "space", "root"))
    try:
        return dt_model_from_dict(obj)
    except (InvalidParameterError, KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(
            f"dt-model payload is malformed: {exc!r}", section="model"
        ) from None


def unpack_dt_model(data: bytes) -> DtModel:
    """Decode a dt-model payload (checksums verified first)."""
    return _dt_from_envelope(read_envelope(data, expect_kind=KIND_DT_MODEL))


def pack_cluster_model(model: ClusterModel) -> bytes:
    """Encode a cluster-model (canonical dict form in one JSON section)."""
    return pack_envelope(
        KIND_CLUSTER_MODEL,
        [("model", pack_json(cluster_model_to_dict(model)))],
    )


def _cluster_from_envelope(envelope: Envelope) -> ClusterModel:
    (payload,) = envelope.expect(_DICT_SECTIONS)
    obj = unpack_json_object(
        payload,
        "model",
        (
            "kind",
            "space",
            "attributes",
            "cuts",
            "densities",
            "dense_cells",
            "cluster_of_cell",
            "n_clusters",
        ),
    )
    try:
        return cluster_model_from_dict(obj)
    except (InvalidParameterError, KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(
            f"cluster-model payload is malformed: {exc!r}", section="model"
        ) from None


def unpack_cluster_model(data: bytes) -> ClusterModel:
    """Decode a cluster-model payload (checksums verified first)."""
    return _cluster_from_envelope(
        read_envelope(data, expect_kind=KIND_CLUSTER_MODEL)
    )


def pack_model(model: WireModel) -> bytes:
    """Encode any reference model, dispatching on its class."""
    if isinstance(model, LitsModel):
        return pack_lits_model(model)
    if isinstance(model, DtModel):
        return pack_dt_model(model)
    if isinstance(model, ClusterModel):
        return pack_cluster_model(model)
    raise InvalidParameterError(
        f"{type(model).__name__} is not a wire-packable model "
        "(expected LitsModel, DtModel, or ClusterModel)"
    )


def model_from_envelope(envelope: Envelope) -> WireModel:
    """Decode a model from an already-verified envelope."""
    if envelope.kind == KIND_LITS_MODEL:
        return _lits_from_envelope(envelope)
    if envelope.kind == KIND_DT_MODEL:
        return _dt_from_envelope(envelope)
    if envelope.kind == KIND_CLUSTER_MODEL:
        return _cluster_from_envelope(envelope)
    raise WireFormatError(
        f"payload is a {envelope.kind_name}, not a model", section="header"
    )


def unpack_model(data: bytes) -> WireModel:
    """Decode any model payload, dispatching on the verified kind tag."""
    return model_from_envelope(read_envelope(data))
