"""repro.wire: the sketch-exchange wire format.

Compact, versioned, checksummed binary payloads for sketches and
reference models -- the serialization boundary that turns the fleet
subsystem federated: sites exchange kilobyte-scale payloads, and the
comparer (:meth:`repro.fleet.FleetDeviationMatrix.from_sketches`) never
sees a row.

Layering:

* :mod:`~repro.wire.format` -- the envelope: magic, version, kind tag,
  per-section CRC32. The single trust boundary
  (:func:`~repro.wire.format.read_envelope`).
* :mod:`~repro.wire.encoding` -- section payload primitives (arrays,
  JSON metadata, itemset tables).
* :mod:`~repro.wire.models` / :mod:`~repro.wire.sketches` -- per-kind
  codecs.
* :mod:`~repro.wire.api` -- one-call :func:`pack` / :func:`unpack` /
  :func:`payload_info`.

Malformed input raises :class:`repro.errors.WireFormatError` naming the
bad section; ``wire.bytes_packed`` / ``wire.payloads_unpacked`` /
``wire.checksum_failures`` counters tally through :mod:`repro.obs`.
"""

from repro.wire.api import WirePayload, pack, payload_info, unpack
from repro.wire.format import (
    KIND_CLUSTER_MODEL,
    KIND_DT_MODEL,
    KIND_LITS_MODEL,
    KIND_NAMES,
    KIND_PARTITION_SKETCH,
    KIND_SUPPORT_SKETCH,
    MAGIC,
    VERSION,
    Envelope,
    kind_of,
    pack_envelope,
    read_envelope,
)
from repro.wire.models import (
    WireModel,
    pack_cluster_model,
    pack_dt_model,
    pack_lits_model,
    pack_model,
    unpack_cluster_model,
    unpack_dt_model,
    unpack_lits_model,
    unpack_model,
)
from repro.wire.sketches import (
    pack_partition_sketch,
    pack_support_sketch,
    unpack_partition_payload,
    unpack_partition_sketch,
    unpack_support_sketch,
)

__all__ = [
    "Envelope",
    "KIND_CLUSTER_MODEL",
    "KIND_DT_MODEL",
    "KIND_LITS_MODEL",
    "KIND_NAMES",
    "KIND_PARTITION_SKETCH",
    "KIND_SUPPORT_SKETCH",
    "MAGIC",
    "VERSION",
    "WireModel",
    "WirePayload",
    "kind_of",
    "pack",
    "pack_cluster_model",
    "pack_dt_model",
    "pack_envelope",
    "pack_lits_model",
    "pack_model",
    "pack_partition_sketch",
    "pack_support_sketch",
    "payload_info",
    "read_envelope",
    "unpack",
    "unpack_cluster_model",
    "unpack_dt_model",
    "unpack_lits_model",
    "unpack_model",
    "unpack_partition_payload",
    "unpack_partition_sketch",
    "unpack_support_sketch",
]
