"""Section-payload primitives: arrays, JSON metadata, itemset tables.

The envelope (:mod:`repro.wire.format`) frames and checksums opaque
section payloads; this module defines the three payload encodings every
codec is built from:

* **arrays** -- a self-describing numpy encoding: length-prefixed ascii
  dtype string (normalised to little-endian), ``u8`` ndim, ``u64``
  shape, then the C-order buffer. Decoding validates every length
  against the payload size, so a truncated or padded section fails
  loudly even if (impossibly) its CRC matched.
* **JSON metadata** -- compact, sorted-key UTF-8 JSON. Sorted keys make
  :func:`repro.wire.format.pack_envelope` deterministic: equal objects
  produce byte-identical payloads, which the golden suite pins.
* **itemset tables** -- an itemset collection as two aligned int64
  arrays (per-itemset sizes + flattened items), the compact form shared
  by lits-models and support sketches.

Every decode failure raises :class:`~repro.errors.WireFormatError`
naming the offending section.
"""

from __future__ import annotations

import json
import struct
from typing import Any

import numpy as np

from repro.errors import WireFormatError

_DTYPE_LEN = struct.Struct("<B")
_NDIM = struct.Struct("<B")
_DIM = struct.Struct("<Q")

#: dtype strings a payload may carry. A closed set: the codecs only emit
#: these, and refusing the rest means a forged dtype string can never
#: make numpy interpret attacker-controlled bytes as objects.
_ALLOWED_DTYPES = frozenset(
    {"<i8", "<i4", "<u8", "<u4", "<f8", "<f4", "|u1", "|i1"}
)

#: Dimension ceiling: nothing in this codebase ships tensors.
_MAX_NDIM = 4


def pack_array(array: np.ndarray) -> bytes:
    """Encode an array: dtype string, ndim, shape, C-order buffer."""
    arr = np.ascontiguousarray(array)
    if arr.dtype.byteorder == ">":  # pragma: no cover - big-endian hosts
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    dtype_str = arr.dtype.str
    if dtype_str not in _ALLOWED_DTYPES:
        raise WireFormatError(
            f"dtype {dtype_str!r} is not wire-encodable; allowed dtypes "
            f"are {sorted(_ALLOWED_DTYPES)}"
        )
    if arr.ndim > _MAX_NDIM:
        raise WireFormatError(
            f"arrays of ndim {arr.ndim} exceed the wire ceiling of "
            f"{_MAX_NDIM}"
        )
    encoded = dtype_str.encode("ascii")
    parts = [_DTYPE_LEN.pack(len(encoded)), encoded, _NDIM.pack(arr.ndim)]
    parts.extend(_DIM.pack(dim) for dim in arr.shape)
    parts.append(arr.tobytes())
    return b"".join(parts)


def unpack_array(payload: bytes, section: str) -> np.ndarray:
    """Decode :func:`pack_array` output, validating every length."""

    def bad(reason: str) -> WireFormatError:
        return WireFormatError(
            f"section {section!r} does not hold a valid array: {reason}",
            section=section,
        )

    if len(payload) < _DTYPE_LEN.size:
        raise bad("truncated before the dtype length")
    (dtype_len,) = _DTYPE_LEN.unpack_from(payload)
    offset = _DTYPE_LEN.size
    if offset + dtype_len + _NDIM.size > len(payload):
        raise bad("truncated inside the dtype/ndim header")
    try:
        dtype_str = payload[offset : offset + dtype_len].decode("ascii")
    except UnicodeDecodeError:
        raise bad("dtype string is not ascii") from None
    if dtype_str not in _ALLOWED_DTYPES:
        raise bad(
            f"dtype {dtype_str!r} is not in the allowed set "
            f"{sorted(_ALLOWED_DTYPES)}"
        )
    offset += dtype_len
    (ndim,) = _NDIM.unpack_from(payload, offset)
    offset += _NDIM.size
    if ndim > _MAX_NDIM:
        raise bad(f"ndim {ndim} exceeds the wire ceiling of {_MAX_NDIM}")
    if offset + ndim * _DIM.size > len(payload):
        raise bad("truncated inside the shape")
    shape = []
    for _ in range(ndim):
        (dim,) = _DIM.unpack_from(payload, offset)
        shape.append(int(dim))
        offset += _DIM.size
    dtype = np.dtype(dtype_str)
    n_items = 1
    for dim in shape:
        n_items *= dim
    expected = n_items * dtype.itemsize
    if len(payload) - offset != expected:
        raise bad(
            f"buffer holds {len(payload) - offset} bytes, shape "
            f"{tuple(shape)} of {dtype_str} needs {expected}"
        )
    data = np.frombuffer(payload, dtype=dtype, count=n_items, offset=offset)
    # frombuffer views are read-only; copy so callers own a normal array
    return data.reshape(tuple(shape)).copy()


def pack_json(obj: Any) -> bytes:
    """Compact, sorted-key JSON (deterministic for equal objects)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def unpack_json(payload: bytes, section: str) -> Any:
    """Decode a JSON metadata section."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(
            f"section {section!r} does not hold valid JSON: {exc}",
            section=section,
        ) from None


def unpack_json_object(
    payload: bytes, section: str, keys: tuple[str, ...]
) -> dict[str, Any]:
    """A JSON metadata section that must be an object with exactly *keys*."""
    obj = unpack_json(payload, section)
    if not isinstance(obj, dict) or set(obj) != set(keys):
        got = sorted(obj) if isinstance(obj, dict) else type(obj).__name__
        raise WireFormatError(
            f"section {section!r} must be a JSON object with keys "
            f"{sorted(keys)}, got {got}",
            section=section,
        )
    return obj


def itemset_sections(
    itemsets: tuple[frozenset[int], ...],
) -> tuple[bytes, bytes]:
    """An itemset collection as (sizes, items) array payloads.

    The collection must already be in canonical order (size, then
    lexicographic) -- both producers (lits-models, support sketches)
    store it that way -- and items within an itemset are emitted sorted,
    so equal collections always encode to identical bytes.
    """
    sizes = np.array([len(s) for s in itemsets], dtype=np.int64)
    flat = np.array(
        [item for s in itemsets for item in sorted(s)], dtype=np.int64
    )
    return pack_array(sizes), pack_array(flat)


def itemsets_from_sections(
    sizes_payload: bytes,
    items_payload: bytes,
    *,
    sizes_section: str = "sizes",
    items_section: str = "items",
) -> tuple[frozenset[int], ...]:
    """Decode an itemset table, enforcing the canonical invariants.

    Rejects (naming the offending section) anything the producers can
    never emit: negative sizes or items, a sizes/items length mismatch,
    duplicate items within an itemset, or a collection that is not in
    canonical order -- because a decoded collection is immediately
    zipped against a positional counts/supports vector, and silently
    re-sorting it would transpose those values.
    """
    sizes = unpack_array(sizes_payload, sizes_section)
    flat = unpack_array(items_payload, items_section)
    if sizes.ndim != 1 or flat.ndim != 1:
        raise WireFormatError(
            "itemset tables must be 1-d arrays", section=sizes_section
        )
    if sizes.size and int(sizes.min()) < 0:
        raise WireFormatError(
            "negative itemset size", section=sizes_section
        )
    if int(sizes.sum()) != flat.size:
        raise WireFormatError(
            f"itemset sizes sum to {int(sizes.sum())} but "
            f"{flat.size} items are present",
            section=items_section,
        )
    if flat.size and int(flat.min()) < 0:
        raise WireFormatError("negative item id", section=items_section)
    itemsets: list[frozenset[int]] = []
    offset = 0
    for size in (int(s) for s in sizes):
        group = flat[offset : offset + size]
        itemset = frozenset(int(i) for i in group)
        if len(itemset) != size:
            raise WireFormatError(
                "duplicate items within one itemset",
                section=items_section,
            )
        itemsets.append(itemset)
        offset += size
    canonical = sorted(
        set(itemsets), key=lambda s: (len(s), tuple(sorted(s)))
    )
    if len(canonical) != len(itemsets) or canonical != itemsets:
        raise WireFormatError(
            "itemset collection is not in canonical order (size, then "
            "lexicographic, no duplicates); refusing to silently "
            "re-sort it against its positional counts",
            section=items_section,
        )
    return tuple(itemsets)
