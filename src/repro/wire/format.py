"""The sketch-exchange envelope: versioned, checksummed, little-endian.

Every payload :mod:`repro.wire` emits is one *envelope*::

    magic "RPRW" | version u16 | kind u8 | n_sections u8 | section*

and every section is length-prefixed and individually checksummed::

    name_len u8 | name (ascii) | payload_len u64 | payload | crc32 u32

with the CRC32 computed over the section's *entire* prefix (name length,
name, payload length, payload) so a bit flip anywhere inside a section
-- including its framing -- fails that section's checksum, and a swap of
two section bodies fails both. All integers are little-endian.

Design rules the test suites pin:

* **versioned** -- the version is rejected, not ignored, when it is not
  one this reader implements; an old reader never misparses a future
  payload as garbage counts.
* **kind-tagged** -- the payload says what it is; decoding a partition
  sketch as a support sketch is impossible by construction.
* **verify before construct** -- :func:`read_envelope` checks magic,
  version, kind, framing, and every section CRC *before* any caller
  sees a byte of payload (reprolint rule RL009 enforces that unpackers
  go through it).
* **canonical order** -- each kind fixes its section names *and their
  order* (:meth:`Envelope.expect`), which both rejects section-swapped
  payloads and makes ``pack`` deterministic: equal objects produce
  byte-identical payloads.

Failures raise :class:`~repro.errors.WireFormatError` naming the bad
section (``error.section``); checksum failures additionally increment
the ``wire.checksum_failures`` counter. Successful packs and unpacks
tally ``wire.bytes_packed`` and ``wire.payloads_unpacked``.
"""

from __future__ import annotations

import struct
import zlib
from typing import Sequence

from repro.errors import WireFormatError
from repro.obs import metrics

#: Wire magic: "RePRo Wire". A payload not starting with it is not ours.
MAGIC = b"RPRW"

#: The format version this module reads and writes.
VERSION = 1

#: Kind tags (u8). New kinds append; existing codes are frozen forever.
KIND_SUPPORT_SKETCH = 1
KIND_PARTITION_SKETCH = 2
KIND_LITS_MODEL = 3
KIND_DT_MODEL = 4
KIND_CLUSTER_MODEL = 5

#: kind code -> human name, for error messages and the CLI.
KIND_NAMES: dict[int, str] = {
    KIND_SUPPORT_SKETCH: "support-sketch",
    KIND_PARTITION_SKETCH: "partition-sketch",
    KIND_LITS_MODEL: "lits-model",
    KIND_DT_MODEL: "dt-model",
    KIND_CLUSTER_MODEL: "cluster-model",
}

_HEADER = struct.Struct("<4sHBB")  # magic, version, kind, n_sections
_SECTION_LEN = struct.Struct("<Q")
_CRC = struct.Struct("<I")

#: Section names are short ascii identifiers; 255 is the u8 ceiling.
_MAX_NAME_LEN = 255
_MAX_SECTIONS = 255


def _crc32(chunks: Sequence[bytes]) -> int:
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


class Envelope:
    """A decoded envelope: kind, version, and the ordered sections.

    Instances only come out of :func:`read_envelope`, so holding one
    certifies that the header parsed, the kind is known, and every
    section passed its CRC and framing checks.
    """

    __slots__ = ("kind", "version", "sections")

    def __init__(
        self,
        kind: int,
        version: int,
        sections: tuple[tuple[str, bytes], ...],
    ) -> None:
        self.kind = kind
        self.version = version
        self.sections = sections

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"kind-{self.kind}")

    def expect(self, names: Sequence[str]) -> tuple[bytes, ...]:
        """The section payloads, after enforcing the exact name *order*.

        Each kind's codec declares its canonical section sequence; a
        payload whose sections are missing, extra, renamed, or reordered
        is rejected here -- which is what turns a section swap into a
        loud :class:`WireFormatError` instead of transposed counts.
        """
        got = tuple(name for name, _ in self.sections)
        if got != tuple(names):
            raise WireFormatError(
                f"{self.kind_name} payload carries sections {list(got)}, "
                f"expected exactly {list(names)} in that order",
                section=next(
                    (g for g, n in zip(got, names) if g != n),
                    got[len(names)] if len(got) > len(names) else None,
                ),
            )
        return tuple(payload for _, payload in self.sections)


def pack_envelope(kind: int, sections: Sequence[tuple[str, bytes]]) -> bytes:
    """Frame the sections into one versioned, checksummed payload."""
    if kind not in KIND_NAMES:
        raise WireFormatError(f"unknown wire kind code {kind}")
    if len(sections) > _MAX_SECTIONS:
        raise WireFormatError(
            f"an envelope holds at most {_MAX_SECTIONS} sections, "
            f"got {len(sections)}"
        )
    out = [_HEADER.pack(MAGIC, VERSION, kind, len(sections))]
    for name, payload in sections:
        encoded = name.encode("ascii")
        if not 0 < len(encoded) <= _MAX_NAME_LEN:
            raise WireFormatError(
                f"section name {name!r} must be 1-{_MAX_NAME_LEN} ascii bytes",
                section=name,
            )
        prefix = bytes([len(encoded)]) + encoded + _SECTION_LEN.pack(len(payload))
        out.append(prefix)
        out.append(payload)
        out.append(_CRC.pack(_crc32((prefix, payload))))
    data = b"".join(out)
    metrics().inc("wire.bytes_packed", len(data))
    return data


def _read_header(data: bytes) -> tuple[int, int, int]:
    """(version, kind, n_sections) after magic/version/kind checks."""
    if len(data) < _HEADER.size:
        raise WireFormatError(
            f"payload of {len(data)} bytes is shorter than the "
            f"{_HEADER.size}-byte envelope header",
            section="header",
        )
    magic, version, kind, n_sections = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WireFormatError(
            f"bad magic {magic!r}: not a repro wire payload "
            f"(expected {MAGIC!r})",
            section="header",
        )
    if version != VERSION:
        raise WireFormatError(
            f"unsupported wire format version {version}; this reader "
            f"implements version {VERSION} -- refusing to guess at a "
            "future layout",
            section="header",
        )
    if kind not in KIND_NAMES:
        raise WireFormatError(
            f"unknown wire kind code {kind}; known kinds are "
            f"{sorted(KIND_NAMES)} ({', '.join(KIND_NAMES.values())})",
            section="header",
        )
    return version, kind, n_sections


def kind_of(data: bytes) -> int:
    """The payload's kind code, from the header alone (fully validated)."""
    _, kind, _ = _read_header(data)
    return kind


def read_envelope(data: bytes, *, expect_kind: int | None = None) -> Envelope:
    """Parse and verify a payload: header, framing, and every section CRC.

    This is the single trust boundary of the wire format: nothing
    constructs an object from payload bytes without the bytes having
    passed through here first. Any malformation -- truncation, trailing
    garbage, a failing checksum, an unexpected kind -- raises
    :class:`WireFormatError` before a caller sees section data.
    """
    version, kind, n_sections = _read_header(data)
    if expect_kind is not None and kind != expect_kind:
        raise WireFormatError(
            f"expected a {KIND_NAMES[expect_kind]} payload, got "
            f"{KIND_NAMES[kind]}",
            section="header",
        )
    offset = _HEADER.size
    sections: list[tuple[str, bytes]] = []
    for index in range(n_sections):
        where = f"section {index}"
        if offset + 1 > len(data):
            raise WireFormatError(
                f"payload truncated before {where}'s name length",
                section=where,
            )
        name_len = data[offset]
        name_end = offset + 1 + name_len
        if name_len == 0 or name_end > len(data):
            raise WireFormatError(
                f"payload truncated inside {where}'s name", section=where
            )
        try:
            name = data[offset + 1 : name_end].decode("ascii")
        except UnicodeDecodeError:
            raise WireFormatError(
                f"{where} name is not ascii", section=where
            ) from None
        len_end = name_end + _SECTION_LEN.size
        if len_end > len(data):
            raise WireFormatError(
                f"payload truncated inside section {name!r}'s length prefix",
                section=name,
            )
        (payload_len,) = _SECTION_LEN.unpack_from(data, name_end)
        body_end = len_end + payload_len
        crc_end = body_end + _CRC.size
        if crc_end > len(data):
            raise WireFormatError(
                f"payload truncated inside section {name!r} "
                f"(declared {payload_len} payload bytes)",
                section=name,
            )
        payload = data[len_end:body_end]
        (stored_crc,) = _CRC.unpack_from(data, body_end)
        computed = _crc32((data[offset:len_end], payload))
        if stored_crc != computed:
            metrics().inc("wire.checksum_failures")
            raise WireFormatError(
                f"checksum mismatch in section {name!r}: stored "
                f"{stored_crc:#010x}, computed {computed:#010x} -- the "
                "payload is corrupted",
                section=name,
            )
        sections.append((name, payload))
        offset = crc_end
    if offset != len(data):
        raise WireFormatError(
            f"{len(data) - offset} trailing bytes after the last section",
            section="trailer",
        )
    metrics().inc("wire.payloads_unpacked")
    return Envelope(kind, version, tuple(sections))
