"""Sketch codecs: mergeable counts as kilobyte-scale payloads.

A sketch is the thing a federated site actually ships: absolute counts
of a fixed structure over its local rows. These codecs make the two
sketch kinds travel:

* **support-sketch** -- ``meta`` (n_transactions, n_items), the itemset
  table (``sizes``/``items``), and the aligned int64 ``counts``. A few
  hundred itemsets fit in a couple of KiB.
* **partition-sketch** -- ``meta`` (n_rows), a ``model`` section holding
  a *nested model envelope* (dt- or cluster-model), and the aligned
  int64 ``counts``. A partition structure's assigner is an arbitrary
  callable and cannot be serialised; the model it came from can, and
  rebuilding the model rebuilds the structure -- so the payload carries
  the model, and unpacking yields a sketch whose ``counts_key`` equals
  the original's (frozen predicate dataclasses + exact float round-trip
  make the rebuilt regions compare equal). GCR-overlay sketches have no
  inducing model and are therefore not packable.

Decoded sketches are fully validated before construction: counts must
align with the structure, be non-negative, and not exceed the row count
-- invariants every honest producer satisfies, so a violation means the
payload is forged or the producer is broken, and the decoder says so
instead of handing the deviation engine poisoned counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.cluster_model import ClusterModel
from repro.core.dtree_model import DtModel
from repro.errors import InvalidParameterError, WireFormatError
from repro.stream.sketch import PartitionSketch, SupportSketch
from repro.wire.encoding import (
    itemset_sections,
    itemsets_from_sections,
    pack_array,
    pack_json,
    unpack_array,
    unpack_json_object,
)
from repro.wire.format import (
    KIND_PARTITION_SKETCH,
    KIND_SUPPORT_SKETCH,
    Envelope,
    pack_envelope,
    read_envelope,
)
from repro.wire.models import model_from_envelope, pack_model

#: Model classes that can induce (and therefore ship) a partition sketch.
PartitionModel = DtModel | ClusterModel

_SUPPORT_SECTIONS = ("meta", "sizes", "items", "counts")
_PARTITION_SECTIONS = ("meta", "model", "counts")


def pack_support_sketch(sketch: SupportSketch) -> bytes:
    """Encode a support sketch."""
    sizes, items = itemset_sections(sketch.itemsets)
    meta = pack_json(
        {
            "n_transactions": sketch.n_transactions,
            "n_items": sketch.n_items,
        }
    )
    return pack_envelope(
        KIND_SUPPORT_SKETCH,
        [
            ("meta", meta),
            ("sizes", sizes),
            ("items", items),
            ("counts", pack_array(np.asarray(sketch.counts, dtype=np.int64))),
        ],
    )


def _counts_from_payload(
    payload: bytes, n_expected: int, n_rows: int, what: str
) -> np.ndarray:
    """Decode and validate an aligned counts vector."""
    counts = unpack_array(payload, "counts")
    if counts.shape != (n_expected,):
        raise WireFormatError(
            f"counts array of shape {counts.shape} does not align with "
            f"the {n_expected} {what}",
            section="counts",
        )
    counts = counts.astype(np.int64)
    if counts.size and (
        int(counts.min()) < 0 or int(counts.max()) > n_rows
    ):
        raise WireFormatError(
            f"counts must lie in [0, {n_rows}] (the sketched row count); "
            "the payload violates the sketch invariant",
            section="counts",
        )
    return counts


def _support_from_envelope(envelope: Envelope) -> SupportSketch:
    meta_payload, sizes, items, counts_payload = envelope.expect(
        _SUPPORT_SECTIONS
    )
    meta = unpack_json_object(
        meta_payload, "meta", ("n_transactions", "n_items")
    )
    try:
        n_transactions = int(meta["n_transactions"])
        n_items = int(meta["n_items"])
    except (TypeError, ValueError) as exc:
        raise WireFormatError(
            f"support-sketch metadata is invalid: {exc}", section="meta"
        ) from None
    if n_transactions < 0 or n_items < 0:
        raise WireFormatError(
            "n_transactions and n_items must be >= 0", section="meta"
        )
    itemsets = itemsets_from_sections(sizes, items)
    counts = _counts_from_payload(
        counts_payload, len(itemsets), n_transactions, "itemsets"
    )
    return SupportSketch(itemsets, counts, n_transactions, n_items)


def unpack_support_sketch(data: bytes) -> SupportSketch:
    """Decode a support-sketch payload (checksums verified first)."""
    return _support_from_envelope(
        read_envelope(data, expect_kind=KIND_SUPPORT_SKETCH)
    )


def pack_partition_sketch(
    sketch: PartitionSketch, model: PartitionModel
) -> bytes:
    """Encode a partition sketch together with its inducing model.

    ``model`` must be the dt- or cluster-model whose structure the
    sketch counts -- the receiver rebuilds the structure from it. A
    sketch over a GCR overlay (or any structure without an inducing
    model) cannot travel; ship the two originals instead.
    """
    if not isinstance(model, (DtModel, ClusterModel)):
        raise InvalidParameterError(
            f"a partition sketch ships with its inducing dt- or "
            f"cluster-model, got {type(model).__name__}"
        )
    if model.structure.counts_key != sketch.key:
        raise InvalidParameterError(
            "model structure does not match the sketch: the sketch counts "
            "a different partition (GCR-overlay sketches have no inducing "
            "model and are not packable -- ship the original sketches)"
        )
    meta = pack_json({"n_rows": sketch.n_rows})
    return pack_envelope(
        KIND_PARTITION_SKETCH,
        [
            ("meta", meta),
            ("model", pack_model(model)),
            ("counts", pack_array(np.asarray(sketch.counts, dtype=np.int64))),
        ],
    )


def _partition_from_envelope(
    envelope: Envelope,
) -> tuple[PartitionSketch, PartitionModel]:
    meta_payload, model_payload, counts_payload = envelope.expect(
        _PARTITION_SECTIONS
    )
    meta = unpack_json_object(meta_payload, "meta", ("n_rows",))
    try:
        n_rows = int(meta["n_rows"])
    except (TypeError, ValueError) as exc:
        raise WireFormatError(
            f"partition-sketch metadata is invalid: {exc}", section="meta"
        ) from None
    if n_rows < 0:
        raise WireFormatError("n_rows must be >= 0", section="meta")
    # the nested envelope goes through read_envelope like any payload,
    # so the model section is CRC-verified twice: outer and inner
    model = model_from_envelope(read_envelope(model_payload))
    if not isinstance(model, (DtModel, ClusterModel)):
        raise WireFormatError(
            f"a partition sketch must embed a dt- or cluster-model, "
            f"found a {type(model).__name__}",
            section="model",
        )
    structure = model.structure
    counts = _counts_from_payload(
        counts_payload, len(structure.regions), n_rows, "structure regions"
    )
    return PartitionSketch(structure, counts, n_rows), model


def unpack_partition_sketch(data: bytes) -> PartitionSketch:
    """Decode a partition-sketch payload (checksums verified first)."""
    sketch, _ = _partition_from_envelope(
        read_envelope(data, expect_kind=KIND_PARTITION_SKETCH)
    )
    return sketch


def unpack_partition_payload(
    data: bytes,
) -> tuple[PartitionSketch, PartitionModel]:
    """Decode a partition-sketch payload *and* its embedded model.

    The federated comparer wants both: the sketch for exact counts, the
    model for structure/bound bookkeeping.
    """
    return _partition_from_envelope(
        read_envelope(data, expect_kind=KIND_PARTITION_SKETCH)
    )
