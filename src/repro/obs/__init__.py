"""``repro.obs``: mergeable metrics + span tracing for the engine.

Dependency-free instrumentation substrate. Enable it around any engine
call with :func:`use_registry`; read the active sink with
:func:`metrics`; merge per-shard registries with ``+`` / ``sum``. See
:mod:`repro.obs.registry` for the design notes (null-registry disabled
mode, deterministic worker-side collection, snapshot/report formats).
"""

from repro.obs.registry import (
    DEFAULT_EDGES,
    LATENCY_EDGES,
    NULL_REGISTRY,
    AnyRegistry,
    MetricsRegistry,
    NullRegistry,
    enabled,
    metrics,
    report,
    use_registry,
)

__all__ = [
    "DEFAULT_EDGES",
    "LATENCY_EDGES",
    "NULL_REGISTRY",
    "AnyRegistry",
    "MetricsRegistry",
    "NullRegistry",
    "enabled",
    "metrics",
    "report",
    "use_registry",
]
