"""Mergeable metrics registry and span tracing for the engine.

The engine's subsystems each grew private, ad-hoc introspection —
``WindowManager.rows_sketched``, ``FleetMatrix.n_pruned``, bench-local
scan accounting. This module replaces them with one substrate:

* :class:`MetricsRegistry` holds **counters** (monotonic ints),
  **gauges** (last-written floats), **histograms** over *fixed* bucket
  edges, and **span** timing statistics. Registries are *mergeable*
  with ``+`` — the same algebra as the stream sketches — so metrics
  collected inside ``ThreadExecutor``/``ProcessExecutor`` workers
  travel back with their results and combine into one view. Counter,
  bucket, and count merges are integer sums, and histogram value sums
  accumulate through exact Shewchuk expansions (the ``math.fsum``
  algorithm), so a merged snapshot is bit-stable: per-shard collection
  merged in ANY grouping equals serial collection exactly.
* :func:`metrics` returns the *active* registry. The default is a
  module-level :data:`NULL_REGISTRY` whose methods are no-ops, so hot
  paths call ``metrics().inc(...)`` unconditionally — no branches in
  hot loops, and no measurable overhead while instrumentation is off
  (``benchmarks/bench_streaming.py``'s floor is asserted with the null
  registry active).
* :func:`use_registry` installs a registry for a ``with`` scope via a
  :class:`contextvars.ContextVar`; worker threads and processes do NOT
  inherit it, which is deliberate — fan-out sites pass an explicit
  collect flag and return per-shard registries (see
  ``repro.stream.executor``), keeping merges deterministic.
* ``span(name)`` contexts time a block with :func:`time.perf_counter`
  and nest: entering a span inside another records under the dotted
  path (``"fleet.scan.count"``). Spans must be used as ``with``
  contexts — reprolint rule RL007 rejects manual enter/exit pairs,
  which can leak the nesting stack on exceptions.

``registry.snapshot()`` returns a stable, JSON-able dict (sorted keys,
builtin types only); :func:`report` renders the same data as a
human-readable table for the ``--profile`` CLI flag.
"""

from __future__ import annotations

import json
import math
import time
from bisect import bisect_left
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from types import TracebackType
from typing import Any, Union

__all__ = [
    "DEFAULT_EDGES",
    "LATENCY_EDGES",
    "NULL_REGISTRY",
    "MetricsRegistry",
    "NullRegistry",
    "enabled",
    "metrics",
    "report",
    "use_registry",
]

# Power-of-ten edges for size-like observations (rows, bytes, counts).
DEFAULT_EDGES: tuple[float, ...] = (1.0, 10.0, 100.0, 1e3, 1e4, 1e5)
# Edges for second-valued latency observations (100us .. 10s).
LATENCY_EDGES: tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


def _accumulate_exact(partials: list[float], value: float) -> None:
    """One Shewchuk accumulation step (the ``math.fsum`` algorithm).

    Afterwards ``partials`` is a non-overlapping expansion representing
    ``value + sum(old partials)`` *exactly*. Because the expansion
    tracks the exact real sum, accumulation is associative and
    commutative — the property naive float ``+=`` lacks — which is what
    keeps merged histogram sums bit-identical to serial collection
    regardless of how observations were sharded.
    """
    x = value
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class _Histogram:
    """Fixed-edge histogram: ``counts[i]`` holds values in
    ``(edges[i-1], edges[i]]``; the trailing bucket is overflow.

    A value exactly equal to an edge lands in that edge's bucket
    (upper-bound inclusive), so bucket assignment is deterministic —
    the merge-equality property tests pin this.
    """

    __slots__ = ("_partials", "count", "counts", "edges")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self._partials: list[float] = []
        self.count = 0

    @property
    def total(self) -> float:
        return math.fsum(self._partials)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        _accumulate_exact(self._partials, value)
        self.count += 1

    def merge(self, other: _Histogram) -> None:
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        for p in other._partials:
            _accumulate_exact(self._partials, p)
        self.count += other.count

    def __getstate__(self) -> dict[str, Any]:
        return {
            "edges": self.edges,
            "counts": self.counts,
            "_partials": self._partials,
            "count": self.count,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)


class _SpanStats:
    """Aggregated wall-clock statistics for one span name."""

    __slots__ = ("count", "max_s", "min_s", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def record(self, elapsed: float) -> None:
        self.count += 1
        self.total_s += elapsed
        self.min_s = min(self.min_s, elapsed)
        self.max_s = max(self.max_s, elapsed)

    def merge(self, other: _SpanStats) -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def __getstate__(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)


class _Span:
    """A live timing context; created by :meth:`MetricsRegistry.span`."""

    __slots__ = ("_name", "_qualified", "_registry", "_start")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._registry = registry
        self._name = name
        self._qualified = name
        self._start = 0.0

    def __enter__(self) -> None:
        stack = self._registry._span_stack
        stack.append(self._name)
        self._qualified = ".".join(stack)
        self._start = time.perf_counter()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        elapsed = time.perf_counter() - self._start
        self._registry._record_span(self._qualified, elapsed)
        self._registry._span_stack.pop()


class _NullSpan:
    """Shared no-op context returned by :meth:`NullRegistry.span`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRegistry:
    """The disabled-mode sink: every method is a no-op.

    Hot paths call ``metrics().inc(...)`` / ``with metrics().span(...)``
    unconditionally; when instrumentation is off those calls land here
    and do nothing. One shared instance, :data:`NULL_REGISTRY`, is the
    context-var default.
    """

    __slots__ = ()

    def inc(self, name: str, n: int = 1) -> None:
        return None

    def counter(self, name: str) -> int:
        return 0

    def gauge(self, name: str, value: float) -> None:
        return None

    def observe(
        self, name: str, value: float, edges: Sequence[float] | None = None
    ) -> None:
        return None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def absorb(self, other: AnyRegistry) -> None:
        return None

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}

    def report(self) -> str:
        return "(metrics disabled: no active registry)"


NULL_REGISTRY = NullRegistry()


class MetricsRegistry:
    """Counters, gauges, fixed-edge histograms, and span timings.

    Mergeable with ``+`` (and in place with :meth:`absorb`); ``sum``
    over per-shard registries works because ``0 + registry`` is the
    registry. Merging follows the sketch algebra: a
    :meth:`_check_mergeable` guard rejects histogram bucket-edge
    mismatches before any state combines.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_span_stack", "_spans")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._spans: dict[str, _SpanStats] = {}
        self._span_stack: list[str] = []

    # -- recording ---------------------------------------------------- #

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float, edges: Sequence[float] | None = None
    ) -> None:
        """Record ``value`` into histogram ``name``.

        Bucket edges are fixed at the histogram's first observation
        (``edges`` or :data:`DEFAULT_EDGES`); passing different edges
        later raises ``ValueError`` rather than silently re-bucketing.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = _Histogram(tuple(edges) if edges is not None else DEFAULT_EDGES)
            self._histograms[name] = hist
        elif edges is not None and tuple(edges) != hist.edges:
            raise ValueError(
                f"histogram {name!r} has fixed edges {hist.edges}; "
                f"got conflicting edges {tuple(edges)}"
            )
        hist.observe(value)

    def span(self, name: str) -> _Span:
        """A ``with`` context timing a block under ``name``.

        Spans nest: entering ``span("b")`` inside ``span("a")`` records
        under ``"a.b"``. Use only as a ``with`` context (reprolint
        RL007) — manual ``__enter__``/``__exit__`` pairs can leak the
        nesting stack on exceptions.
        """
        return _Span(self, name)

    def _record_span(self, qualified: str, elapsed: float) -> None:
        stats = self._spans.get(qualified)
        if stats is None:
            stats = _SpanStats()
            self._spans[qualified] = stats
        stats.record(elapsed)

    # -- merge algebra ------------------------------------------------ #

    def _check_mergeable(self, other: MetricsRegistry) -> None:
        for name, hist in self._histograms.items():
            theirs = other._histograms.get(name)
            if theirs is not None and theirs.edges != hist.edges:
                raise ValueError(
                    f"cannot merge registries: histogram {name!r} bucket "
                    f"edges differ ({hist.edges} vs {theirs.edges})"
                )

    def absorb(self, other: AnyRegistry) -> None:
        """Merge ``other`` into this registry in place.

        Counters, histogram buckets, and span counts add; span min/max
        combine; gauges are right-biased (``other`` wins). Absorbing a
        :class:`NullRegistry` is a no-op, so merge loops need no
        isinstance branches.
        """
        if isinstance(other, NullRegistry):
            return
        self._check_mergeable(other)
        for name, n in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + n
        self._gauges.update(other._gauges)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                mine = _Histogram(hist.edges)
                self._histograms[name] = mine
            mine.merge(hist)
        for name, stats in other._spans.items():
            ours = self._spans.get(name)
            if ours is None:
                ours = _SpanStats()
                self._spans[name] = ours
            ours.merge(stats)

    def __add__(self, other: AnyRegistry | int) -> MetricsRegistry:
        if isinstance(other, int):
            if other == 0:
                return self
            return NotImplemented
        merged = MetricsRegistry()
        merged.absorb(self)
        merged.absorb(other)
        return merged

    def __radd__(self, other: AnyRegistry | int) -> MetricsRegistry:
        return self.__add__(other)

    # -- output ------------------------------------------------------- #

    def snapshot(self) -> dict[str, Any]:
        """A stable JSON-able view: sorted keys, builtin types only."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for k, h in sorted(self._histograms.items())
            },
            "spans": {
                k: {
                    "count": s.count,
                    "total_s": s.total_s,
                    "min_s": s.min_s,
                    "max_s": s.max_s,
                }
                for k, s in sorted(self._spans.items())
            },
        }

    def snapshot_json(self) -> str:
        """The snapshot serialised as deterministic, sorted-key JSON."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def report(self) -> str:
        """Render the snapshot as an aligned human-readable table."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["counters"]:
            lines.append("counters")
            width = max(len(k) for k in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value:>12}")
        if snap["gauges"]:
            lines.append("gauges")
            width = max(len(k) for k in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value:>12.6g}")
        if snap["histograms"]:
            lines.append("histograms")
            for name, h in snap["histograms"].items():
                buckets = " ".join(str(c) for c in h["counts"])
                lines.append(
                    f"  {name}  n={h['count']}  sum={h['sum']:.6g}"
                    f"  buckets=[{buckets}]"
                )
        if snap["spans"]:
            lines.append("spans")
            for name, s in snap["spans"].items():
                lines.append(
                    f"  {name}  n={s['count']}  total={s['total_s']:.4f}s"
                    f"  min={s['min_s']:.4f}s  max={s['max_s']:.4f}s"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


AnyRegistry = Union[MetricsRegistry, NullRegistry]

_ACTIVE: ContextVar[AnyRegistry] = ContextVar(
    "repro_obs_registry", default=NULL_REGISTRY
)


def metrics() -> AnyRegistry:
    """The active registry (the shared null registry when disabled)."""
    return _ACTIVE.get()


def enabled() -> bool:
    """Is a real registry active in the current context?"""
    return _ACTIVE.get() is not NULL_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the active sink for the ``with`` scope.

    Scoping is per :mod:`contextvars` context: executor worker threads
    and processes do **not** see the parent's registry — fan-out sites
    collect per-shard registries explicitly and merge them back (see
    ``repro.stream.executor``), which is what keeps merged snapshots
    deterministic.
    """
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def report(registry: AnyRegistry | None = None) -> str:
    """Human-readable table for ``registry`` (default: the active one)."""
    return (registry if registry is not None else metrics()).report()
