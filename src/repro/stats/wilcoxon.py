"""The Wilcoxon two-sample (rank-sum) test (Section 6 of the paper).

The paper uses this test on sets of 50 sample-deviation values to decide
whether increasing the sample size *significantly* decreases the SD
(Tables 1 and 2 report ``100(1 - alpha)%`` confidence percentages).

Implemented from first principles: mid-ranks for ties, the normal
approximation with tie-corrected variance and continuity correction
(Bickel & Doksum, the paper's reference [7]). The test-suite
cross-checks p-values against ``scipy.stats.mannwhitneyu``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.errors import InvalidParameterError


def _normal_cdf(z: float) -> float:
    """Standard normal CDF via the complementary error function."""
    return 0.5 * math.erfc(-z / math.sqrt(2.0))


def _midranks(pooled: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties sharing their average rank."""
    order = np.argsort(pooled, kind="stable")
    ranks = np.empty(len(pooled), dtype=np.float64)
    sorted_vals = pooled[order]
    i = 0
    while i < len(pooled):
        j = i
        while j + 1 < len(pooled) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        # Positions i..j (0-based) share the average of ranks i+1..j+1.
        avg_rank = (i + j + 2) / 2.0
        ranks[order[i : j + 1]] = avg_rank
        i = j + 1
    return ranks


@dataclass(frozen=True)
class WilcoxonResult:
    """Rank-sum test outcome."""

    statistic: float  # rank sum of the first sample
    z: float
    p_value: float
    alternative: str

    @property
    def significance_percent(self) -> float:
        """The paper's ``100(1 - alpha)%`` confidence of rejecting the null."""
        return 100.0 * (1.0 - self.p_value)


def rank_sum_test(
    x: ArrayLike, y: ArrayLike, alternative: str = "less"
) -> WilcoxonResult:
    """Wilcoxon rank-sum test of ``x`` versus ``y``.

    Parameters
    ----------
    x, y:
        The two samples.
    alternative:
        ``"less"`` -- values of ``x`` tend to be smaller than those of
        ``y`` (the paper's direction: SDs at the larger sample size are
        smaller); ``"greater"``; or ``"two-sided"``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n1, n2 = len(x), len(y)
    if n1 == 0 or n2 == 0:
        raise InvalidParameterError("both samples must be non-empty")
    if alternative not in ("less", "greater", "two-sided"):
        raise InvalidParameterError(f"unknown alternative {alternative!r}")

    pooled = np.concatenate([x, y])
    ranks = _midranks(pooled)
    w = float(ranks[:n1].sum())
    n = n1 + n2
    mean = n1 * (n + 1) / 2.0

    # Tie correction: subtract n1*n2 * sum(t^3 - t) / (12 n (n-1)).
    _, tie_counts = np.unique(pooled, return_counts=True)
    tie_term = float(((tie_counts**3) - tie_counts).sum())
    var = n1 * n2 * (n + 1) / 12.0
    if n > 1:
        var -= n1 * n2 * tie_term / (12.0 * n * (n - 1))
    if var <= 0:
        # All values identical: no evidence either way.
        return WilcoxonResult(statistic=w, z=0.0, p_value=1.0, alternative=alternative)

    sd = math.sqrt(var)
    if alternative == "less":
        z = (w - mean + 0.5) / sd
        p = _normal_cdf(z)
    elif alternative == "greater":
        z = (w - mean - 0.5) / sd
        p = 1.0 - _normal_cdf(z)
    else:
        z = (w - mean) / sd
        shift = 0.5 if z < 0 else -0.5
        z_cc = (w - mean + shift) / sd
        p = 2.0 * min(_normal_cdf(z_cc), 1.0 - _normal_cdf(z_cc))
        p = min(p, 1.0)
    return WilcoxonResult(statistic=w, z=z, p_value=p, alternative=alternative)
