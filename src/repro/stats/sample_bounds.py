"""Analytic sample-size bounds for support estimation (Section 6 companion).

The paper answers "how big a sample?" empirically with sample
deviations. These Hoeffding-style bounds give the analytic counterpart:
how many tuples guarantee every itemset support is estimated within
``epsilon`` with probability ``1 - delta`` -- a quick a-priori check
before running the SD study, and the reason the SD curves flatten
(estimation error shrinks as ``1/sqrt(n)``).

For a sample of size ``n`` and one fixed itemset, Hoeffding's
inequality gives ``P(|s_hat - s| >= eps) <= 2 exp(-2 n eps^2)``; a union
bound extends it to ``m`` itemsets simultaneously.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError


def required_sample_size(
    epsilon: float, delta: float, n_itemsets: int = 1
) -> int:
    """Tuples needed so all ``n_itemsets`` supports are within ``epsilon``
    of truth with probability at least ``1 - delta``."""
    if not 0 < epsilon < 1:
        raise InvalidParameterError("epsilon must be in (0, 1)")
    if not 0 < delta < 1:
        raise InvalidParameterError("delta must be in (0, 1)")
    if n_itemsets < 1:
        raise InvalidParameterError("n_itemsets must be >= 1")
    return math.ceil(math.log(2 * n_itemsets / delta) / (2 * epsilon**2))


def support_error_bound(n: int, delta: float, n_itemsets: int = 1) -> float:
    """The ``epsilon`` guaranteed by ``n`` tuples at confidence ``1 - delta``."""
    if n < 1:
        raise InvalidParameterError("n must be >= 1")
    if not 0 < delta < 1:
        raise InvalidParameterError("delta must be in (0, 1)")
    if n_itemsets < 1:
        raise InvalidParameterError("n_itemsets must be >= 1")
    return math.sqrt(math.log(2 * n_itemsets / delta) / (2 * n))


def failure_probability(n: int, epsilon: float, n_itemsets: int = 1) -> float:
    """Upper bound on the probability that some support errs by >= epsilon."""
    if n < 1:
        raise InvalidParameterError("n must be >= 1")
    if not 0 < epsilon < 1:
        raise InvalidParameterError("epsilon must be in (0, 1)")
    if n_itemsets < 1:
        raise InvalidParameterError("n_itemsets must be >= 1")
    return min(1.0, 2 * n_itemsets * math.exp(-2 * n * epsilon**2))


def sd_bound_sum(
    n_sample: int, delta: float, n_regions: int
) -> float:
    """A crude bound on the ``(f_a, g_sum)`` sample deviation.

    With probability ``1 - delta`` every region's measure is within
    ``support_error_bound(n_sample, delta, n_regions)``, so the summed
    deviation is at most ``n_regions`` times that. Loose (errors are not
    adversarially aligned in practice) but explains the SD curve's
    ``1/sqrt(n)`` envelope in Figures 7-12.
    """
    return n_regions * support_error_bound(n_sample, delta, n_regions)
