"""Count-space bootstrap: the whole significance null from one scan.

The qualification procedure (Section 3.4) estimates the null deviation
distribution by pooling the two datasets and repeatedly resampling pairs
of the original sizes. The naive loop materialises two resampled
datasets per replicate and re-scans each from scratch, so ``n_boot``
replicates cost ``n_boot`` full dataset scans.

When the GCR structure is held fixed (``refit_models=False``, the
paper's construction), every replicate's region counts are a *linear
functional of row multiplicities*: resampling ``n`` rows with
replacement from the pool is a multinomial draw of a multiplicity
vector ``w``, and the count of region ``r`` under the resample is
``sum_i w_i * [row i in r]``. So the pooled data only needs to be
scanned **once**, into a per-row region-membership representation:

* :class:`LitsResamplePlan` -- an ``(n_rows x n_regions)`` 0/1
  membership matrix, unpacked from the bitmap index's intersection
  bits; all ``B`` replicates' counts are one
  ``(B x n_rows) @ (n_rows x n_regions)`` product.
* :class:`PartitionResamplePlan` -- the pooled cell-assignment vector
  from the partition structure's counting plan (regions are disjoint,
  so membership collapses to one index per row); replicate counts are
  ``B`` weighted bincounts.
* :class:`CountsResamplePlan` -- for *disjoint, exhaustive* regions the
  rows themselves are exchangeable within a region, so the pooled
  region counts alone determine the null: each replicate is a
  multinomial draw over region bins. Zero row-level state -- this is
  how the streaming monitor bootstraps from sketches without ever
  materialising window rows.

Exactness: multiplicities and memberships are small non-negative
integers, so every partial sum in the products is an integer below the
float mantissa limit -- replicate counts are *exact*, and feeding them
through :func:`repro.core.deviation.deviation_from_counts` reproduces
the per-replicate loop's null values bit for bit under shared draws
(the property suite pins this).

Reproducibility: every draw goes through the caller's
``numpy.random.Generator``. Passing neither ``rng`` nor ``seed`` falls
back to an *unseeded* generator and emits a :class:`UserWarning`,
because significance numbers published from an unseeded run cannot be
reproduced.

Large ``B`` can fan replicate blocks over the streaming layer's
executors (``executor="thread"``/``"process"`` with ``n_blocks > 1``);
blocks are deterministic -- multiplicities are drawn up front in the
caller's process -- and integer-exact, so every backend produces the
identical null vector.
"""

from __future__ import annotations

import os
import warnings
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro._typing import DatasetLike, ExecutorLike
from repro.core.aggregate import SUM, AggregateFunction
from repro.core.deviation import deviation_from_counts
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.model import LitsStructure, PartitionStructure, Structure
from repro.errors import IncompatibleModelsError, InvalidParameterError
from repro.obs import metrics

if TYPE_CHECKING:
    from repro.core.deviation import DeviationResult
    from repro.stats.bootstrap import BootstrapResult

#: Row counts at or above 2**24 overflow float32's exact-integer range;
#: the membership matmul then switches to float64 (still exact: counts
#: stay far below 2**53).
_FLOAT32_EXACT_ROWS = 1 << 24

#: Cap on the transient multiplicity-draw matrix (int64 bytes). Beyond
#: it, replicates are drawn and counted in chunks -- numpy's generator
#: draws are sequential, so chunked draws consume the identical stream
#: (pinned by test) and same-seed results never depend on the cap.
_MAX_DRAW_BYTES = 1 << 28  # 256 MiB

#: Cap on the dense lits membership matrix (float32 bytes). A pool
#: whose ``rows x regions`` product would exceed it compiles to the
#: packed plan instead (:class:`PackedLitsResamplePlan`): membership
#: stays in bit-packed form (32-64x smaller) and the GEMM runs over
#: unpacked row blocks, so the dense matrix is never resident. Override
#: per call (``max_membership_bytes=``) or per process
#: (``REPRO_MAX_MEMBERSHIP_BYTES``).
_MAX_MEMBERSHIP_BYTES = 1 << 31  # 2 GiB

#: Transient budget for one unpacked membership block inside the packed
#: plan's GEMM loop (bytes of the exact float dtype). Exactness does not
#: depend on the blocking -- partial sums are integers either way -- so
#: this only trades temporaries against matmul call overhead.
_MEMBERSHIP_BLOCK_BYTES = 1 << 26  # 64 MiB


def max_membership_bytes(limit: int | None = None) -> int:
    """The dense-membership cap: param, else env, else the default.

    Resolution mirrors :func:`repro.data.storage.scan_budget_bytes`:
    an explicit ``limit`` wins, then ``REPRO_MAX_MEMBERSHIP_BYTES``,
    then :data:`_MAX_MEMBERSHIP_BYTES`.
    """
    if limit is None:
        raw = os.environ.get("REPRO_MAX_MEMBERSHIP_BYTES")
        limit = _MAX_MEMBERSHIP_BYTES if raw is None else int(raw)
    if limit < 1:
        raise InvalidParameterError("max_membership_bytes must be >= 1")
    return int(limit)


# the compile entry point has a keyword of the same name; alias for it
_resolve_membership_cap = max_membership_bytes


def _resolve_rng(
    rng: np.random.Generator | None, seed: int | None, caller: str
) -> np.random.Generator:
    """The caller's generator, a seeded one, or (with a warning) entropy.

    The unseeded fallback keeps ad-hoc exploration frictionless but is
    loudly discouraged: a significance number computed from OS entropy
    cannot be reproduced, which is exactly the wrong property for a
    published qualification verdict.
    """
    if rng is not None:
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    warnings.warn(
        f"{caller}: no rng or seed given; falling back to an unseeded "
        "generator, so the significance estimate is not reproducible. "
        "Pass rng=np.random.default_rng(seed) or seed=... to pin it.",
        UserWarning,
        stacklevel=3,
    )
    return np.random.default_rng()


def draw_multiplicities(
    n_rows: int, n_sample: int, n_boot: int, rng: np.random.Generator
) -> np.ndarray:
    """``(n_boot, n_rows)`` multiplicity vectors of with-replacement draws.

    Sampling ``n_sample`` rows uniformly with replacement and counting
    how often each row was picked is exactly a multinomial draw with
    equal cell probabilities -- the count-space equivalent of
    :func:`repro.data.sampling.bootstrap_pair`'s index draw.
    """
    if n_rows < 1:
        raise InvalidParameterError("cannot resample from an empty pool")
    if n_sample < 0 or n_boot < 0:
        raise InvalidParameterError("n_sample and n_boot must be >= 0")
    return rng.multinomial(n_sample, np.full(n_rows, 1.0 / n_rows), size=n_boot)


def multiplicities_from_indices(indices: np.ndarray, n_rows: int) -> np.ndarray:
    """Row-index draws ``(B, k)`` -> multiplicity vectors ``(B, n_rows)``.

    The bridge between the per-replicate loop oracle (which materialises
    ``pooled.take(indices[b])``) and the count-space engine: feeding
    both the same index draws must produce bit-identical nulls.
    """
    indices = np.asarray(indices)
    if indices.ndim != 2:
        raise InvalidParameterError("indices must be a (n_boot, k) matrix")
    out = np.zeros((indices.shape[0], n_rows), dtype=np.int64)
    for b in range(indices.shape[0]):
        out[b] = np.bincount(indices[b], minlength=n_rows)
    return out


def lits_membership(structure: LitsStructure, index: object) -> np.ndarray:
    """``(n_transactions, n_regions)`` 0/1 membership from a bitmap index.

    One column per itemset region, unpacked from the index's packed
    intersection bits; column sums equal the structure's support counts
    (property-tested). This is the plan-compilation scan for
    lits-structures: the index itself embodies one pass over the rows,
    and everything after it is bit unpacking.
    """
    n = index.n_transactions
    metrics().inc("bootstrap.membership.scans")
    itemsets = structure.itemsets
    if not itemsets:
        return np.zeros((n, 0), dtype=np.uint8)
    packed = np.stack([index.intersection_bits(s) for s in itemsets])
    bits = np.unpackbits(packed, axis=1, count=n)
    return np.ascontiguousarray(bits.T)


# --------------------------------------------------------------------- #
# Block workers (top-level: picklable for the process executor)
# --------------------------------------------------------------------- #


def _lits_block_counts(payload: tuple[Any, ...]) -> np.ndarray:
    """Replicate counts of one multiplicity block via part-wise matmul.

    ``parts`` are row blocks of the pooled membership matrix (already in
    the exact float dtype); the block's counts are the sum of one GEMM
    per part. Every term is a small non-negative integer, so all partial
    sums stay exactly representable and the rounded result is exact.
    """
    parts, offsets, w = payload
    n_regions = parts[0].shape[1] if parts else 0
    acc = np.zeros((w.shape[0], n_regions), dtype=parts[0].dtype if parts else np.float64)
    for part, off in zip(parts, offsets):
        acc += w[:, off : off + part.shape[0]].astype(part.dtype) @ part
    return np.rint(acc).astype(np.int64)


def _packed_block_counts(payload: tuple[Any, ...]) -> np.ndarray:
    """Replicate counts of one multiplicity block from *packed* membership.

    ``packed_parts`` hold the membership bits column-compressed (one
    ``(n_regions, ceil(rows/8))`` uint8 matrix per pool part); each part
    is unpacked in byte-aligned row blocks small enough to fit the
    block budget and fed to the same exact-integer GEMM the dense plan
    uses. Identical partial sums in a different association order of
    exact integers -- the result is bit-identical to the dense path.
    """
    packed_parts, part_rows, offsets, block_rows, dtype, w = payload
    n_regions = packed_parts[0].shape[0] if packed_parts else 0
    acc = np.zeros((w.shape[0], n_regions), dtype=dtype)
    for packed, rows, off in zip(packed_parts, part_rows, offsets):
        for start in range(0, rows, block_rows):
            stop = min(start + block_rows, rows)
            # block starts are multiples of 8, so the byte slice is
            # bit-aligned and ``count`` trims the tail exactly
            block = np.unpackbits(
                packed[:, start >> 3 : (stop + 7) >> 3], axis=1, count=stop - start
            )
            acc += w[:, off + start : off + stop].astype(dtype) @ block.T.astype(
                dtype
            )
    return np.rint(acc).astype(np.int64)


def _packed_prefix_counts(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Per-row popcount of the first ``n_bits`` bits of packed rows."""
    n_bytes = n_bits >> 3
    counts = np.bitwise_count(packed[:, :n_bytes]).sum(
        axis=1, dtype=np.int64
    )
    if n_bits & 7:
        mask = np.uint8((0xFF << (8 - (n_bits & 7))) & 0xFF)
        counts += np.bitwise_count(packed[:, n_bytes] & mask).astype(np.int64)
    return counts


def _partition_block_counts(payload: tuple[Any, ...]) -> np.ndarray:
    """Replicate counts of one multiplicity block via weighted bincount.

    The trailing bin (index ``n_regions``) collects rows excluded by an
    active focus and is dropped; float64 accumulation is exact for
    integer weights below 2**53.
    """
    assignments, n_regions, w = payload
    out = np.empty((w.shape[0], n_regions), dtype=np.int64)
    for b in range(w.shape[0]):
        binned = np.bincount(
            assignments, weights=w[b].astype(np.float64), minlength=n_regions + 1
        )
        out[b] = np.rint(binned[:n_regions]).astype(np.int64)
    return out


def _fan_blocks(
    worker: Callable[[tuple[Any, ...]], np.ndarray],
    payload_of: Callable[[np.ndarray], tuple[Any, ...]],
    w: np.ndarray,
    executor: ExecutorLike,
    n_blocks: int,
) -> np.ndarray:
    """Map a block worker over replicate blocks on the chosen executor.

    Each payload carries the plan's compiled state (membership parts or
    the assignment vector) alongside its multiplicity block. Threads
    share that state by reference; the ``"process"`` backend pickles it
    once per block, so fan processes only when the per-block compute
    (huge region counts, very large ``B``) clearly outweighs shipping
    the compiled state ``n_blocks`` times -- ``"thread"`` is the safe
    default for parallelism, since the underlying GEMM/bincount kernels
    release the GIL.

    Lifecycle: an executor given by *name* is constructed here and its
    worker pool released before returning (a one-shot call must not
    leak idle workers until interpreter exit); an executor *instance*
    is used as-is, and its owner keeps the pool alive for reuse across
    calls (the online monitor's shape -- see
    :meth:`repro.stream.monitor.OnlineChangeMonitor.close`).
    """
    if n_blocks < 1:
        raise InvalidParameterError("n_blocks must be >= 1")
    if n_blocks == 1:
        # a single block has nothing to parallelise: never pay a pool
        # spawn (or, for processes, a full compiled-state pickle) for it
        return worker(payload_of(w))
    from repro.stream.executor import get_executor

    runner = get_executor(executor)
    owns_runner = isinstance(executor, str)
    blocks = np.array_split(w, n_blocks)
    try:
        results = runner.map(worker, [payload_of(b) for b in blocks])
    finally:
        if owns_runner:
            shutdown = getattr(runner, "shutdown", None)
            if shutdown is not None:
                shutdown()
    return np.vstack(results)


# --------------------------------------------------------------------- #
# Plans
# --------------------------------------------------------------------- #


class ResamplePlan(ABC):
    """Compiled count-space bootstrap of a fixed structure over a pool.

    A plan captures everything the null construction needs from the
    pooled data in one scan; :meth:`null_deviations` then emits the
    entire null vector with zero resampled-dataset materialisation, and
    :meth:`significance` packages it as a
    :class:`~repro.stats.bootstrap.BootstrapResult`.
    """

    def __init__(self, structure: Structure, n1: int, n2: int) -> None:
        if n1 < 0 or n2 < 0:
            raise InvalidParameterError("dataset sizes must be >= 0")
        if n1 + n2 < 1:
            raise InvalidParameterError("cannot resample from an empty pool")
        self.structure = structure
        self.n1 = int(n1)
        self.n2 = int(n2)
        self.n_pooled = self.n1 + self.n2

    @abstractmethod
    def observed_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """The two observed count vectors (aligned with the regions)."""

    @abstractmethod
    def _replicate_count_pairs(
        self,
        n_boot: int,
        rng: np.random.Generator,
        executor: ExecutorLike,
        n_blocks: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n_boot`` replicate ``(counts1, counts2)`` matrices."""

    # ------------------------------------------------------------------ #
    # Deviation assembly
    # ------------------------------------------------------------------ #

    def observed_deviation(
        self, f: DifferenceFunction = ABSOLUTE, g: AggregateFunction = SUM
    ) -> "DeviationResult":
        """``delta_1`` of the observed split, from the compiled counts.

        Equals ``deviation_over_structure(structure, d1, d2, f, g)``
        without touching either dataset again.
        """
        counts1, counts2 = self.observed_counts()
        return deviation_from_counts(
            self.structure, counts1, counts2, self.n1, self.n2, f, g
        )

    def _null_from_count_pairs(
        self,
        counts1: np.ndarray,
        counts2: np.ndarray,
        f: DifferenceFunction,
        g: AggregateFunction,
    ) -> np.ndarray:
        """Per-replicate ``delta_1`` values from stacked count matrices.

        Applied replicate-by-replicate through the same
        ``deviation_from_counts`` code path the serial oracle uses, so
        the emitted floats are bit-identical to it.
        """
        return np.array(
            [
                deviation_from_counts(
                    self.structure, c1, c2, self.n1, self.n2, f, g
                ).value
                for c1, c2 in zip(counts1, counts2)
            ]
        )

    def null_deviations(
        self,
        n_boot: int,
        rng: np.random.Generator | None = None,
        *,
        f: DifferenceFunction = ABSOLUTE,
        g: AggregateFunction = SUM,
        seed: int | None = None,
        executor: ExecutorLike = "serial",
        n_blocks: int = 1,
    ) -> np.ndarray:
        """The whole bootstrap null vector, in count-space.

        Draws are made up front in the caller's process (one rng stream,
        independent of executor and blocking), so the result is
        deterministic for a given generator state.
        """
        if n_boot < 1:
            raise InvalidParameterError("n_boot must be >= 1")
        rng = _resolve_rng(rng, seed, "null_deviations")
        counts1, counts2 = self._replicate_count_pairs(
            n_boot, rng, executor, n_blocks
        )
        return self._null_from_count_pairs(counts1, counts2, f, g)

    def significance(
        self,
        n_boot: int,
        rng: np.random.Generator | None = None,
        *,
        f: DifferenceFunction = ABSOLUTE,
        g: AggregateFunction = SUM,
        seed: int | None = None,
        executor: ExecutorLike = "serial",
        n_blocks: int = 1,
    ) -> "BootstrapResult":
        """Observed deviation + count-space null as a ``BootstrapResult``."""
        from repro.stats.bootstrap import BootstrapResult

        observed = self.observed_deviation(f, g).value
        null = self.null_deviations(
            n_boot, rng, f=f, g=g, seed=seed, executor=executor, n_blocks=n_blocks
        )
        return BootstrapResult(observed=observed, null_values=null)


class RowResamplePlan(ResamplePlan):
    """A plan holding per-row state: replicates are multiplicity draws."""

    def _replicate_count_pairs(
        self,
        n_boot: int,
        rng: np.random.Generator,
        executor: ExecutorLike,
        n_blocks: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        dtype = np.int32 if max(self.n1, self.n2) < 2**31 else np.int64
        rows_per_chunk = max(1, _MAX_DRAW_BYTES // (8 * self.n_pooled))
        if 2 * n_boot <= rows_per_chunk:
            # One fan over the stacked draws: counts are computed
            # row-wise, so stacking changes nothing in the values
            # (integer-exact) while shipping the compiled state to
            # pooled workers once per block instead of once per side
            # per block. The draws land in one preallocated int32
            # matrix (multiplicities are bounded by the side sizes) --
            # each side's int64 multinomial temporary is released
            # before the next draw.
            stacked_w = np.empty((2 * n_boot, self.n_pooled), dtype=dtype)
            stacked_w[:n_boot] = draw_multiplicities(
                self.n_pooled, self.n1, n_boot, rng
            )
            stacked_w[n_boot:] = draw_multiplicities(
                self.n_pooled, self.n2, n_boot, rng
            )
            stacked = self.replicate_counts(
                stacked_w, executor=executor, n_blocks=n_blocks
            )
            return stacked[:n_boot], stacked[n_boot:]

        # Paper-scale pools (millions of rows x many replicates) would
        # make the stacked matrix multi-GB, so draw and count in
        # replicate chunks instead: transient memory stays bounded by
        # the cap and the draw stream is identical (generator draws are
        # sequential), so same-seed nulls match the unchunked path.
        def side_counts(n_sample: int) -> np.ndarray:
            parts = []
            for start in range(0, n_boot, rows_per_chunk):
                b = min(rows_per_chunk, n_boot - start)
                w = draw_multiplicities(self.n_pooled, n_sample, b, rng)
                parts.append(
                    self.replicate_counts(
                        w, executor=executor, n_blocks=n_blocks
                    )
                )
            return np.vstack(parts)

        return side_counts(self.n1), side_counts(self.n2)

    @abstractmethod
    def replicate_counts(
        self,
        multiplicities: np.ndarray,
        *,
        executor: ExecutorLike = "serial",
        n_blocks: int = 1,
    ) -> np.ndarray:
        """``(B, n_pooled)`` multiplicities -> exact ``(B, R)`` counts."""

    def _check_multiplicities(self, w: np.ndarray) -> np.ndarray:
        w = np.asarray(w)
        if w.ndim != 2 or w.shape[1] != self.n_pooled:
            raise InvalidParameterError(
                f"multiplicities must be (n_boot, {self.n_pooled}), got "
                f"shape {tuple(w.shape)}"
            )
        return w

    def null_from_multiplicities(
        self,
        w1: np.ndarray,
        w2: np.ndarray,
        *,
        f: DifferenceFunction = ABSOLUTE,
        g: AggregateFunction = SUM,
        executor: ExecutorLike = "serial",
        n_blocks: int = 1,
    ) -> np.ndarray:
        """The null vector for externally supplied multiplicity draws.

        This is the shared-draw seam the property suite exercises: feed
        the same draws here and to the per-replicate loop oracle and the
        two nulls must be exactly equal.
        """
        counts1 = self.replicate_counts(w1, executor=executor, n_blocks=n_blocks)
        counts2 = self.replicate_counts(w2, executor=executor, n_blocks=n_blocks)
        return self._null_from_count_pairs(counts1, counts2, f, g)


class LitsResamplePlan(RowResamplePlan):
    """Membership-matrix bootstrap for (overlapping) itemset regions.

    Memory: the compiled membership is dense -- ``4 * n_rows *
    n_regions`` bytes (float32) -- which is what buys the single-GEMM
    null. At very large scales (millions of pooled rows times
    thousands of regions) that residency dominates; callers that
    cannot afford it should fall back to the per-replicate loop
    (:func:`repro.stats.bootstrap.significance_of_statistic`), which
    stays O(rows). Replicate draws are chunked automatically, so they
    never add more than a bounded transient on top.

    Parameters
    ----------
    structure:
        The fixed :class:`~repro.core.model.LitsStructure`.
    membership_parts:
        Row blocks of the pooled ``(n_rows x n_regions)`` 0/1 membership
        matrix, in pool order (dataset 1's rows first). Keeping the
        parts separate lets a streaming caller reuse a long-lived
        reference block across windows without re-copying it.
    n1, n2:
        The original dataset sizes (``n1 + n2`` rows in the pool).
    """

    def __init__(
        self,
        structure: LitsStructure,
        membership_parts: Sequence[np.ndarray],
        n1: int,
        n2: int,
    ) -> None:
        super().__init__(structure, n1, n2)
        n_regions = len(structure.regions)
        dtype = (
            np.float64 if self.n_pooled >= _FLOAT32_EXACT_ROWS else np.float32
        )
        parts: list[np.ndarray] = []
        offsets: list[int] = []
        offset = 0
        for part in membership_parts:
            part = np.asarray(part)
            if part.ndim != 2 or part.shape[1] != n_regions:
                raise InvalidParameterError(
                    f"membership parts must have {n_regions} columns, got "
                    f"shape {tuple(part.shape)}"
                )
            parts.append(np.ascontiguousarray(part, dtype=dtype))
            offsets.append(offset)
            offset += part.shape[0]
        if offset != self.n_pooled:
            raise InvalidParameterError(
                f"membership parts cover {offset} rows, expected "
                f"{self.n_pooled} (= n1 + n2)"
            )
        self._parts = tuple(parts)
        self._offsets = tuple(offsets)

    @classmethod
    def from_datasets(
        cls,
        structure: LitsStructure,
        dataset1: DatasetLike,
        dataset2: DatasetLike,
    ) -> "LitsResamplePlan":
        """Compile from the two datasets' bitmap indexes (one scan each)."""
        return cls(
            structure,
            (
                lits_membership(structure, dataset1.index),
                lits_membership(structure, dataset2.index),
            ),
            len(dataset1),
            len(dataset2),
        )

    def observed_counts(self) -> tuple[np.ndarray, np.ndarray]:
        sums = [part.sum(axis=0) for part in self._parts]
        n_regions = len(self.structure.regions)
        counts1 = np.zeros(n_regions, dtype=np.float64)
        counts2 = np.zeros(n_regions, dtype=np.float64)
        for part_sum, off, part in zip(sums, self._offsets, self._parts):
            # a part straddling the n1 boundary is split column-sum-wise
            if off + part.shape[0] <= self.n1:
                counts1 += part_sum
            elif off >= self.n1:
                counts2 += part_sum
            else:
                split = self.n1 - off
                counts1 += part[:split].sum(axis=0)
                counts2 += part[split:].sum(axis=0)
        return (
            np.rint(counts1).astype(np.int64),
            np.rint(counts2).astype(np.int64),
        )

    def replicate_counts(
        self,
        multiplicities: np.ndarray,
        *,
        executor: ExecutorLike = "serial",
        n_blocks: int = 1,
    ) -> np.ndarray:
        w = self._check_multiplicities(multiplicities)
        # counted parent-side so the tally is executor-independent
        metrics().inc("bootstrap.replicates.gemm", int(w.shape[0]))
        parts, offsets = self._parts, self._offsets
        return _fan_blocks(
            _lits_block_counts,
            lambda block: (parts, offsets, block),
            w,
            executor,
            n_blocks,
        )


class PackedLitsResamplePlan(RowResamplePlan):
    """Bit-packed membership bootstrap: the over-cap lits plan.

    Holds the same information as :class:`LitsResamplePlan` at 1/32nd
    (float32 pools) to 1/64th (float64 pools) the residency: membership
    stays in the bitmap index's packed form -- one
    ``(n_regions, ceil(rows/8))`` uint8 matrix per pool part -- and the
    replicate GEMM streams over byte-aligned row blocks, unpacking at
    most :data:`_MEMBERSHIP_BLOCK_BYTES` of dense float at a time.
    Partial sums are the same exact integers in a different association
    order, so the emitted null is bit-identical to the dense plan's
    (regression-pinned), just slower per replicate. This is what lifts
    the old hard 2 GiB compile ceiling: pools past
    :func:`max_membership_bytes` now compile here instead of falling
    back to the per-replicate loop.

    Parameters
    ----------
    structure:
        The fixed :class:`~repro.core.model.LitsStructure`.
    packed_parts:
        Bit-packed membership per pool part, ``(n_regions,
        ceil(part_rows/8))`` uint8 each, MSB-first within a byte (the
        bitmap index's native layout); bits past a part's row count
        must be zero.
    part_rows:
        Row count of each part, in pool order (dataset 1's rows first).
    n1, n2:
        The original dataset sizes (``n1 + n2`` rows in the pool).
    """

    def __init__(
        self,
        structure: LitsStructure,
        packed_parts: Sequence[np.ndarray],
        part_rows: Sequence[int],
        n1: int,
        n2: int,
    ) -> None:
        super().__init__(structure, n1, n2)
        n_regions = len(structure.regions)
        if len(packed_parts) != len(part_rows):
            raise InvalidParameterError(
                "packed_parts and part_rows must align"
            )
        parts: list[np.ndarray] = []
        offsets: list[int] = []
        rows_list: list[int] = []
        offset = 0
        for packed, rows in zip(packed_parts, part_rows):
            packed = np.ascontiguousarray(packed, dtype=np.uint8)
            rows = int(rows)
            if packed.ndim != 2 or packed.shape[0] != n_regions or (
                packed.shape[1] < (rows + 7) >> 3
            ):
                raise InvalidParameterError(
                    f"packed parts must be (n_regions={n_regions}, "
                    f">= ceil(rows/8)) uint8, got shape "
                    f"{tuple(packed.shape)} for {rows} rows"
                )
            parts.append(packed)
            offsets.append(offset)
            rows_list.append(rows)
            offset += rows
        if offset != self.n_pooled:
            raise InvalidParameterError(
                f"packed parts cover {offset} rows, expected "
                f"{self.n_pooled} (= n1 + n2)"
            )
        self._packed_parts = tuple(parts)
        self._part_rows = tuple(rows_list)
        self._offsets = tuple(offsets)
        self._dtype = (
            np.float64 if self.n_pooled >= _FLOAT32_EXACT_ROWS else np.float32
        )
        per_row = max(1, np.dtype(self._dtype).itemsize * n_regions)
        self._block_rows = max(8, (_MEMBERSHIP_BLOCK_BYTES // per_row) & ~7)

    @classmethod
    def from_datasets(
        cls,
        structure: LitsStructure,
        dataset1: DatasetLike,
        dataset2: DatasetLike,
    ) -> "PackedLitsResamplePlan":
        """Compile from the two bitmap indexes, never unpacking membership."""

        def packed_of(index: Any, n: int) -> np.ndarray:
            metrics().inc("bootstrap.membership.scans")
            itemsets = structure.itemsets
            if not itemsets:
                return np.zeros((0, (n + 7) >> 3), dtype=np.uint8)
            return np.stack([index.intersection_bits(s) for s in itemsets])

        n1, n2 = len(dataset1), len(dataset2)
        return cls(
            structure,
            (
                packed_of(dataset1.index, n1),
                packed_of(dataset2.index, n2),
            ),
            (n1, n2),
            n1,
            n2,
        )

    def observed_counts(self) -> tuple[np.ndarray, np.ndarray]:
        n_regions = len(self.structure.regions)
        counts1 = np.zeros(n_regions, dtype=np.int64)
        counts2 = np.zeros(n_regions, dtype=np.int64)
        for packed, rows, off in zip(
            self._packed_parts, self._part_rows, self._offsets
        ):
            if off + rows <= self.n1:
                counts1 += _packed_prefix_counts(packed, rows)
            elif off >= self.n1:
                counts2 += _packed_prefix_counts(packed, rows)
            else:
                split = self.n1 - off
                head = _packed_prefix_counts(packed, split)
                counts1 += head
                counts2 += _packed_prefix_counts(packed, rows) - head
        return counts1, counts2

    def replicate_counts(
        self,
        multiplicities: np.ndarray,
        *,
        executor: ExecutorLike = "serial",
        n_blocks: int = 1,
    ) -> np.ndarray:
        w = self._check_multiplicities(multiplicities)
        # counted parent-side so the tally is executor-independent
        metrics().inc("bootstrap.replicates.packed_gemm", int(w.shape[0]))
        packed, rows, offs = self._packed_parts, self._part_rows, self._offsets
        block_rows, dtype = self._block_rows, self._dtype
        return _fan_blocks(
            _packed_block_counts,
            lambda block: (packed, rows, offs, block_rows, dtype, block),
            w,
            executor,
            n_blocks,
        )


class PartitionResamplePlan(RowResamplePlan):
    """Assignment-vector bootstrap for disjoint partition regions.

    ``assignments`` maps every pooled row to its region index in
    ``[0, n_regions]``; the sentinel ``n_regions`` marks rows excluded
    by an active focus (they occupy pool slots -- the resample can draw
    them -- but count toward no region, exactly as in
    :meth:`~repro.core.partition_plan.PartitionCountingPlan.counts`).
    """

    def __init__(
        self,
        structure: PartitionStructure,
        assignments: np.ndarray,
        n1: int,
        n2: int,
    ) -> None:
        super().__init__(structure, n1, n2)
        assignments = np.ascontiguousarray(assignments, dtype=np.int64)
        if assignments.shape != (self.n_pooled,):
            raise InvalidParameterError(
                f"assignments must be a ({self.n_pooled},) vector, got "
                f"shape {tuple(assignments.shape)}"
            )
        n_regions = len(structure.regions)
        if assignments.size and (
            assignments.min() < 0 or assignments.max() > n_regions
        ):
            raise InvalidParameterError(
                f"assignments must lie in [0, {n_regions}] (the top bin "
                "marks focus-excluded rows)"
            )
        self._assignments = assignments
        self._n_regions = n_regions

    @classmethod
    def from_datasets(
        cls,
        structure: PartitionStructure,
        dataset1: DatasetLike,
        dataset2: DatasetLike,
    ) -> "PartitionResamplePlan":
        """Compile from the structure's counting plan (one pass per side)."""
        plan = structure.plan
        return cls(
            structure,
            np.concatenate(
                [
                    plan.region_assignments(dataset1),
                    plan.region_assignments(dataset2),
                ]
            ),
            len(dataset1),
            len(dataset2),
        )

    def observed_counts(self) -> tuple[np.ndarray, np.ndarray]:
        r = self._n_regions
        head = self._assignments[: self.n1]
        tail = self._assignments[self.n1 :]
        counts1 = np.bincount(head, minlength=r + 1)[:r].astype(np.int64)
        counts2 = np.bincount(tail, minlength=r + 1)[:r].astype(np.int64)
        return counts1, counts2

    def replicate_counts(
        self,
        multiplicities: np.ndarray,
        *,
        executor: ExecutorLike = "serial",
        n_blocks: int = 1,
    ) -> np.ndarray:
        w = self._check_multiplicities(multiplicities)
        # counted parent-side so the tally is executor-independent
        metrics().inc("bootstrap.replicates.bincount", int(w.shape[0]))
        assignments, n_regions = self._assignments, self._n_regions
        return _fan_blocks(
            _partition_block_counts,
            lambda block: (assignments, n_regions, block),
            w,
            executor,
            n_blocks,
        )


class CountsResamplePlan(ResamplePlan):
    """Counts-only bootstrap for disjoint regions: no row-level state.

    For a structure whose regions are pairwise disjoint, pooled rows
    within one region are exchangeable under uniform resampling, so the
    joint distribution of a replicate's counts is exactly a multinomial
    over the region bins (plus one bin for rows outside every region).
    The pooled counts -- e.g. a stored reference vector plus a window
    sketch -- are all the state needed, which is what lets the
    streaming monitor qualify a partition window without materialising
    a single row.

    Only valid for disjoint regions. Lits structures are rejected
    outright -- itemset regions overlap by construction (a row in
    ``{A, B}`` is also in ``{A}``), and no counts vector can reveal
    that, so a multinomial over their bins would destroy the
    cross-region correlations and bias every marginal low; use
    :class:`LitsResamplePlan` there. For other structures the
    constructor additionally rejects counts that sum past the pool
    size, which a disjoint region set can never produce.
    """

    def __init__(
        self,
        structure: Structure,
        counts1: np.ndarray,
        counts2: np.ndarray,
        n1: int,
        n2: int,
    ) -> None:
        super().__init__(structure, n1, n2)
        if isinstance(structure, LitsStructure):
            raise InvalidParameterError(
                "itemset regions overlap, so their pooled counts do not "
                "determine the bootstrap null; use LitsResamplePlan "
                "(per-row membership) for lits structures"
            )
        n_regions = len(structure.regions)
        counts1 = np.asarray(counts1, dtype=np.int64)
        counts2 = np.asarray(counts2, dtype=np.int64)
        if counts1.shape != (n_regions,) or counts2.shape != (n_regions,):
            raise InvalidParameterError(
                f"counts must align with the {n_regions} regions"
            )
        if counts1.size and (counts1.min() < 0 or counts2.min() < 0):
            raise InvalidParameterError("counts must be non-negative")
        pooled = counts1 + counts2
        outside = self.n_pooled - int(pooled.sum())
        if outside < 0:
            raise InvalidParameterError(
                "pooled counts exceed the pool size: regions overlap, so "
                "the counts-only resample plan does not apply (use a "
                "row-level plan)"
            )
        self._counts1 = counts1
        self._counts2 = counts2
        self._pvals = np.append(pooled, outside) / self.n_pooled

    @classmethod
    def from_sketches(
        cls, sketch1: object, sketch2: object
    ) -> "CountsResamplePlan":
        """Compile from two mergeable partition sketches -- no rows needed.

        The federated qualification path: two sites each ship a
        :class:`~repro.stream.sketch.PartitionSketch` (kilobytes), and
        the comparer bootstraps the pair's significance from the counts
        alone. The sketches must measure the same structure in the same
        region order (``sketch.key`` equality, the sketches' own merge
        rule); disjointness then holds by construction because partition
        regions are disjoint.
        """
        from repro.stream.sketch import PartitionSketch

        if not (
            isinstance(sketch1, PartitionSketch)
            and isinstance(sketch2, PartitionSketch)
        ):
            raise InvalidParameterError(
                "from_sketches takes two PartitionSketch objects, got "
                f"{type(sketch1).__name__} and {type(sketch2).__name__} "
                "(support sketches have overlapping itemset regions; see "
                "LitsResamplePlan)"
            )
        if sketch1.key != sketch2.key:
            raise IncompatibleModelsError(
                "sketches measure different partition structures (or the "
                "same regions in a different order); their counts cannot "
                "be pooled into one bootstrap null"
            )
        return cls(
            sketch1.plan.structure,
            sketch1.counts,
            sketch2.counts,
            sketch1.n_rows,
            sketch2.n_rows,
        )

    def observed_counts(self) -> tuple[np.ndarray, np.ndarray]:
        return self._counts1, self._counts2

    def _replicate_count_pairs(
        self,
        n_boot: int,
        rng: np.random.Generator,
        executor: ExecutorLike,
        n_blocks: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        metrics().inc("bootstrap.replicates.multinomial", n_boot)
        r = len(self._counts1)
        counts1 = rng.multinomial(self.n1, self._pvals, size=n_boot)[:, :r]
        counts2 = rng.multinomial(self.n2, self._pvals, size=n_boot)[:, :r]
        return counts1.astype(np.int64), counts2.astype(np.int64)


def compile_resample_plan(
    structure: Structure,
    dataset1: DatasetLike,
    dataset2: DatasetLike,
    *,
    max_membership_bytes: int | None = None,
) -> ResamplePlan | None:
    """Compile the count-space bootstrap for a structure/dataset pair.

    Lits pools pick their representation by the dense membership
    footprint: below the cap (:func:`max_membership_bytes`; override
    with the keyword or ``REPRO_MAX_MEMBERSHIP_BYTES``) the dense
    single-GEMM :class:`LitsResamplePlan` compiles; past it the
    bit-packed block-streaming :class:`PackedLitsResamplePlan` takes
    over with the identical (bit-for-bit) null. Returns ``None`` only
    when no count-space representation applies at all: an unknown
    structure kind, an empty pool, or transaction data without a
    bitmap index -- callers fall back to the per-replicate loop.
    """
    if len(dataset1) + len(dataset2) < 1:
        return None
    if (
        isinstance(structure, LitsStructure)
        and hasattr(dataset1, "index")
        and hasattr(dataset2, "index")
    ):
        n_pooled = len(dataset1) + len(dataset2)
        # the same dtype rule the plans themselves apply: huge pools
        # need float64 columns, doubling the bytes the cap must cover
        item_bytes = 8 if n_pooled >= _FLOAT32_EXACT_ROWS else 4
        cap = _resolve_membership_cap(max_membership_bytes)
        metrics().inc("bootstrap.pooled_scans")
        if item_bytes * n_pooled * len(structure.regions) > cap:
            return PackedLitsResamplePlan.from_datasets(
                structure, dataset1, dataset2
            )
        return LitsResamplePlan.from_datasets(structure, dataset1, dataset2)
    if isinstance(structure, PartitionStructure):
        metrics().inc("bootstrap.pooled_scans")
        return PartitionResamplePlan.from_datasets(structure, dataset1, dataset2)
    return None
