"""Statistical machinery: bootstrap qualification, Wilcoxon, chi-squared."""

from repro.stats.bootstrap import (
    BootstrapResult,
    deviation_significance,
    significance_of_statistic,
)
from repro.stats.resample_plan import (
    CountsResamplePlan,
    LitsResamplePlan,
    PackedLitsResamplePlan,
    PartitionResamplePlan,
    ResamplePlan,
    compile_resample_plan,
    max_membership_bytes,
    draw_multiplicities,
    lits_membership,
    multiplicities_from_indices,
)
from repro.stats.chisq import chi2_cdf, chi2_sf, gammainc_lower, gammainc_upper
from repro.stats.descriptive import (
    mean_std,
    normal_sf,
    pearson_correlation,
    quantiles,
    spearman_correlation,
)
from repro.stats.sample_bounds import (
    failure_probability,
    required_sample_size,
    sd_bound_sum,
    support_error_bound,
)
from repro.stats.wilcoxon import WilcoxonResult, rank_sum_test

__all__ = [
    "BootstrapResult",
    "CountsResamplePlan",
    "LitsResamplePlan",
    "PackedLitsResamplePlan",
    "PartitionResamplePlan",
    "ResamplePlan",
    "WilcoxonResult",
    "chi2_cdf",
    "chi2_sf",
    "compile_resample_plan",
    "deviation_significance",
    "draw_multiplicities",
    "lits_membership",
    "multiplicities_from_indices",
    "failure_probability",
    "gammainc_lower",
    "gammainc_upper",
    "max_membership_bytes",
    "mean_std",
    "normal_sf",
    "pearson_correlation",
    "quantiles",
    "rank_sum_test",
    "required_sample_size",
    "sd_bound_sum",
    "significance_of_statistic",
    "spearman_correlation",
    "support_error_bound",
]
