"""Chi-squared distribution tail probabilities, from first principles.

Section 5.2.2 notes that decision trees routinely violate the
preconditions of the standard ``X^2`` tables, so the paper's
significance runs through the bootstrap. The classical tail probability
is still useful as a diagnostic and as a comparison point, so this
module implements the survival function ``P(X > x)`` for ``X ~
chi^2(df)`` via the regularized incomplete gamma function (series +
continued-fraction evaluation, as in Numerical Recipes). The tests
cross-check against ``scipy.stats.chi2.sf``.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError

_MAX_ITER = 500
_EPS = 3.0e-12


def _gamma_series(a: float, x: float) -> float:
    """Lower regularized incomplete gamma P(a, x) by series expansion."""
    gln = math.lgamma(a)
    ap = a
    total = 1.0 / a
    term = total
    for _ in range(_MAX_ITER):
        ap += 1.0
        term *= x / ap
        total += term
        if abs(term) < abs(total) * _EPS:
            break
    return total * math.exp(-x + a * math.log(x) - gln)


def _gamma_cf(a: float, x: float) -> float:
    """Upper regularized incomplete gamma Q(a, x) by continued fraction."""
    gln = math.lgamma(a)
    tiny = 1.0e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITER + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            break
    return math.exp(-x + a * math.log(x) - gln) * h


def gammainc_lower(a: float, x: float) -> float:
    """Regularized lower incomplete gamma ``P(a, x)``."""
    if a <= 0:
        raise InvalidParameterError("a must be positive")
    if x < 0:
        raise InvalidParameterError("x must be non-negative")
    if x == 0:
        return 0.0
    if x < a + 1.0:
        return _gamma_series(a, x)
    return 1.0 - _gamma_cf(a, x)


def gammainc_upper(a: float, x: float) -> float:
    """Regularized upper incomplete gamma ``Q(a, x) = 1 - P(a, x)``."""
    if a <= 0:
        raise InvalidParameterError("a must be positive")
    if x < 0:
        raise InvalidParameterError("x must be non-negative")
    if x == 0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _gamma_series(a, x)
    return _gamma_cf(a, x)


def chi2_sf(x: float, df: int) -> float:
    """Survival function ``P(X > x)`` of the chi-squared distribution."""
    if df <= 0:
        raise InvalidParameterError("df must be a positive integer")
    if x <= 0:
        return 1.0
    return gammainc_upper(df / 2.0, x / 2.0)


def chi2_cdf(x: float, df: int) -> float:
    """CDF ``P(X <= x)`` of the chi-squared distribution."""
    return 1.0 - chi2_sf(x, df)
