"""Small descriptive-statistics helpers used by the experiment harness."""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike

from repro.errors import InvalidParameterError


def mean_std(values: ArrayLike) -> tuple[float, float]:
    """Sample mean and (ddof=1) standard deviation; std is 0 for n < 2."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise InvalidParameterError("mean_std needs at least one value")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return float(arr.mean()), std


def quantiles(
    values: ArrayLike, qs: tuple[float, ...] = (0.25, 0.5, 0.75)
) -> list[float]:
    """Selected quantiles of a sample."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise InvalidParameterError("quantiles needs at least one value")
    return [float(np.quantile(arr, q)) for q in qs]


def pearson_correlation(x: ArrayLike, y: ArrayLike) -> float:
    """Pearson's r; raises on degenerate input (zero variance)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise InvalidParameterError("samples must have equal length")
    if x.size < 2:
        raise InvalidParameterError("correlation needs at least two points")
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        raise InvalidParameterError("correlation undefined for constant samples")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


def spearman_correlation(x: ArrayLike, y: ArrayLike) -> float:
    """Spearman's rank correlation (Pearson on mid-ranks)."""
    from repro.stats.wilcoxon import _midranks

    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    return pearson_correlation(_midranks(x), _midranks(y))


def normal_sf(z: float) -> float:
    """Standard normal survival function ``P(Z > z)``."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))
