"""Exception hierarchy for the FOCUS reproduction.

All library errors derive from :class:`FocusError` so callers can catch a
single base class. The sub-classes separate configuration mistakes (bad
parameters) from structural violations (e.g. comparing models over different
attribute spaces), which the paper's framework treats as undefined.
"""

from __future__ import annotations


class FocusError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(FocusError):
    """A dataset, region, or model refers to attributes inconsistently."""


class EmptyRegionError(FocusError):
    """An operation produced or required a region with an empty predicate."""


class IncompatibleModelsError(FocusError):
    """Two models cannot be compared (different model classes or spaces)."""


class NotFittedError(FocusError):
    """A miner or model was used before being fitted to data."""


class InvalidParameterError(FocusError):
    """A caller supplied an out-of-range or ill-typed parameter."""


class ExecutorError(FocusError):
    """An executor backend failed outside any single shard's control.

    Raised by the executor layer (:mod:`repro.stream.executor`,
    :mod:`repro.resilience`) when the *backend itself* misbehaves: a
    broken process pool that could not be rebuilt, a map/submit on a
    closed executor, or a raw :mod:`concurrent.futures` failure that
    would otherwise leak a backend-specific exception out of a fan call
    site. Shard-attributable failures raise the more specific
    :class:`ShardFailedError`.
    """


class ShardFailedError(ExecutorError):
    """One or more shards of a supervised fan exhausted their retries.

    Raised instead of returning a silently short (and therefore wrong)
    merge. ``shards`` names the quarantined shard indices in fan order;
    ``errors`` carries one rendered cause per quarantined shard, aligned
    with ``shards``.
    """

    def __init__(
        self,
        message: str,
        *,
        shards: tuple[int, ...] = (),
        errors: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.shards = shards
        self.errors = errors


class CheckpointError(FocusError):
    """A monitor checkpoint could not be written, read, or resumed.

    Covers the whole durability surface of
    :mod:`repro.resilience.checkpoint`: a missing or unreadable
    manifest, a corrupted state/sketch file (wire checksum or JSON
    failure), and a resume against a monitor whose configuration does
    not match the checkpointed fingerprint. ``path`` names the file or
    directory that failed when the failure is file-local.
    """

    def __init__(self, message: str, *, path: str | None = None) -> None:
        super().__init__(message)
        self.path = path


class WireFormatError(FocusError):
    """A packed wire payload is malformed, corrupted, or unsupported.

    Raised by :mod:`repro.wire` whenever a payload fails a structural
    check -- bad magic, an unknown format version or kind tag, a
    truncated or checksum-failing section, sections out of order --
    so a corrupted exchange can never decode into a silently wrong
    sketch or model. ``section`` names the offending section when the
    failure is section-local (``None`` for header-level failures).
    """

    def __init__(self, message: str, *, section: str | None = None) -> None:
        super().__init__(message)
        self.section = section
