"""Exception hierarchy for the FOCUS reproduction.

All library errors derive from :class:`FocusError` so callers can catch a
single base class. The sub-classes separate configuration mistakes (bad
parameters) from structural violations (e.g. comparing models over different
attribute spaces), which the paper's framework treats as undefined.
"""

from __future__ import annotations


class FocusError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(FocusError):
    """A dataset, region, or model refers to attributes inconsistently."""


class EmptyRegionError(FocusError):
    """An operation produced or required a region with an empty predicate."""


class IncompatibleModelsError(FocusError):
    """Two models cannot be compared (different model classes or spaces)."""


class NotFittedError(FocusError):
    """A miner or model was used before being fitted to data."""


class InvalidParameterError(FocusError):
    """A caller supplied an out-of-range or ill-typed parameter."""


class WireFormatError(FocusError):
    """A packed wire payload is malformed, corrupted, or unsupported.

    Raised by :mod:`repro.wire` whenever a payload fails a structural
    check -- bad magic, an unknown format version or kind tag, a
    truncated or checksum-failing section, sections out of order --
    so a corrupted exchange can never decode into a silently wrong
    sketch or model. ``section`` names the offending section when the
    failure is section-local (``None`` for header-level failures).
    """

    def __init__(self, message: str, *, section: str | None = None) -> None:
        super().__init__(message)
        self.section = section
