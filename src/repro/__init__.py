"""FOCUS: a framework for measuring changes in data characteristics.

Reproduction of Ganti, Gehrke, Ramakrishnan & Loh (PODS 1999). The
top-level package re-exports the user-facing API:

>>> from repro import LitsModel, deviation, generate_basket
>>> d1 = generate_basket(5_000, seed=1)
>>> d2 = generate_basket(5_000, seed=2)
>>> m1 = LitsModel.mine(d1, min_support=0.01)
>>> m2 = LitsModel.mine(d2, min_support=0.01)
>>> delta = deviation(m1, m2, d1, d2)
>>> delta.value  # doctest: +SKIP
0.73...

See :mod:`repro.core` for the framework, :mod:`repro.data` for datasets
and generators, :mod:`repro.mining` for the model-building substrates,
:mod:`repro.stats` for the qualification procedure, and
:mod:`repro.experiments` for the paper's tables and figures.
"""

from repro._version import __version__
from repro.core import (
    ABSOLUTE,
    MAX,
    SCALED,
    SUM,
    AggregateFunction,
    AttributeSpace,
    BoxRegion,
    ChangeMonitor,
    ClusterModel,
    DeviationResult,
    DifferenceFunction,
    DtModel,
    ItemsetRegion,
    LitsModel,
    agglomerate,
    box_focus,
    chi_squared_difference,
    chi_squared_statistic,
    chi_squared_statistics,
    classical_mds,
    deviation,
    deviation_many,
    deviation_matrix,
    deviation_over_structure,
    deviation_over_structure_many,
    embed_models,
    focussed_deviation,
    gcr,
    group_stores,
    itemset_focus,
    misclassification_error,
    misclassification_error_via_focus,
    misclassification_errors,
    parse_predicate,
    parse_region,
    predicted_dataset,
    rank,
    Region,
    refines,
    structural_difference,
    structural_intersection,
    structural_union,
    top_n,
    upper_bound_deviation,
    upper_bound_matrix,
)
from repro.data import (
    TabularDataset,
    TransactionDataset,
    generate_basket,
    generate_classification,
    sample,
)
from repro.errors import (
    EmptyRegionError,
    FocusError,
    IncompatibleModelsError,
    InvalidParameterError,
    NotFittedError,
    SchemaError,
)
from repro.stats import (
    BootstrapResult,
    deviation_significance,
    rank_sum_test,
    significance_of_statistic,
)

__all__ = [
    "ABSOLUTE",
    "AggregateFunction",
    "AttributeSpace",
    "BootstrapResult",
    "BoxRegion",
    "ChangeMonitor",
    "ClusterModel",
    "DeviationResult",
    "DifferenceFunction",
    "DtModel",
    "EmptyRegionError",
    "FocusError",
    "IncompatibleModelsError",
    "InvalidParameterError",
    "ItemsetRegion",
    "LitsModel",
    "MAX",
    "NotFittedError",
    "Region",
    "SCALED",
    "SUM",
    "SchemaError",
    "TabularDataset",
    "TransactionDataset",
    "__version__",
    "agglomerate",
    "box_focus",
    "chi_squared_difference",
    "chi_squared_statistic",
    "chi_squared_statistics",
    "classical_mds",
    "deviation",
    "deviation_many",
    "deviation_matrix",
    "deviation_over_structure",
    "deviation_over_structure_many",
    "deviation_significance",
    "embed_models",
    "focussed_deviation",
    "gcr",
    "generate_basket",
    "generate_classification",
    "group_stores",
    "itemset_focus",
    "misclassification_error",
    "misclassification_error_via_focus",
    "misclassification_errors",
    "parse_predicate",
    "parse_region",
    "predicted_dataset",
    "rank",
    "rank_sum_test",
    "refines",
    "sample",
    "significance_of_statistic",
    "structural_difference",
    "structural_intersection",
    "structural_union",
    "top_n",
    "upper_bound_deviation",
    "upper_bound_matrix",
]
