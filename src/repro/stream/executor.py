"""Pluggable execution backends for shard-parallel support counting.

Because :class:`~repro.stream.sketch.SupportSketch` is additive across
disjoint transaction shards, counting a large dataset is a pure
map-merge: split the transactions, sketch every shard independently,
and sum. The *executor* decides where the map runs:

* ``"serial"`` -- in-process loop (deterministic, zero overhead);
* ``"thread"`` -- a thread pool; numpy's bitwise kernels release the
  GIL, so stripe reductions overlap on multi-core machines;
* ``"process"`` -- a process pool; full parallelism at the cost of
  pickling each shard, the distributed-style deployment shape (each
  worker could as well be a different machine).

All three produce bit-identical merged sketches; the Hypothesis
property suite pins ``sum(shard sketches) == single-scan counts`` for
arbitrary partitions, including empty shards.

When a :mod:`repro.obs` registry is active in the *caller's* context,
each map worker collects into a fresh per-shard registry (worker
threads and processes never see the caller's context variable) and
returns it alongside its sketch; the fan-out site merges them back in
shard order. Counters and histogram buckets are integer sums, so the
merged snapshot is identical on every backend — the obs property suite
pins serial == thread == process, counter for counter.
"""

from __future__ import annotations

from concurrent.futures import (
    BrokenExecutor,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, ClassVar, Iterable, Sequence

from repro._typing import DatasetLike, ExecutorLike, StructureOrPlan

from repro.data.transactions import BitmapIndex
from repro.errors import ExecutorError, InvalidParameterError
from repro.obs import MetricsRegistry, enabled, metrics, use_registry
from repro.stream.sketch import (
    PartitionSketch,
    SupportSketch,
    as_partition_plan,
    canonical_itemsets,
)


class SerialExecutor:
    """Run the map step in the calling thread."""

    name = "serial"

    def __init__(self) -> None:
        self._closed = False

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        self._check_open()
        return [fn(item) for item in items]

    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future[Any]:
        """Run ``fn(item)`` eagerly, returning an already-settled future.

        Gives the serial backend the same submit/harvest surface the
        pooled backends have, so a supervisor can drive all three rungs
        of its degradation ladder through one code path.
        """
        self._check_open()
        future: Future[Any] = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(item))
        except Exception as exc:  # reprolint: disable=RL010(failure is captured on the future and re-raised by its result, matching the pooled backends)
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Permanently retire the executor; later map/submit calls raise."""
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutorError(
                "serial executor is closed; close() is permanent -- "
                "construct a new executor to keep mapping"
            )


class _PooledExecutor:
    """Shared lifecycle for the pooled backends.

    The pool is created lazily on first use and **reused across map
    calls**: a streaming workload maps once per chunk, and paying a
    pool spawn/teardown (workers, and for processes an interpreter
    start) per chunk would dwarf the counting itself. Workers are
    released by :meth:`shutdown` (also at interpreter exit).
    """

    #: concrete pool constructor; set by subclasses
    _pool_factory: ClassVar[Callable[..., Executor] | None] = None

    name: ClassVar[str] = "pooled"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool: Executor | None = None
        self._closed = False

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        pool = self._ensure_pool()
        try:
            return list(pool.map(fn, items))
        except BrokenExecutor as exc:
            # Never leak the raw concurrent.futures failure: release the
            # carcass (a later map respawns workers) and raise the typed
            # error. Shard-level retry/re-execution lives one layer up,
            # in repro.resilience.SupervisedExecutor.
            self.shutdown(wait=False)
            raise ExecutorError(
                f"{self.name} pool broke mid-map ({exc!r}); the pool was "
                "released and a later map respawns workers. Wrap the fan "
                "in repro.resilience.SupervisedExecutor to retry the "
                "unfinished shards instead of failing the whole map."
            ) from exc

    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future[Any]:
        """Submit one task, returning its future.

        Unlike :meth:`map`, a :class:`BrokenExecutor` propagates raw
        here: submit/harvest is the supervisor seam, and the supervisor
        needs the backend-specific signal to decide pool rebuilds.
        """
        return self._ensure_pool().submit(fn, item)

    def shutdown(self, wait: bool = True) -> None:
        """Release the worker pool (a later map lazily recreates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    def close(self) -> None:
        """Permanently retire the executor; later map/submit calls raise."""
        self.shutdown(wait=False)
        self._closed = True

    def _ensure_pool(self) -> Executor:
        if self._closed:
            raise ExecutorError(
                f"{self.name} executor is closed; close() is permanent -- "
                "construct a new executor (or use shutdown(), which a "
                "later map recovers from) to keep mapping"
            )
        if self._pool is None:
            factory = self._pool_factory
            if factory is None:  # pragma: no cover - abstract-base misuse
                raise NotImplementedError(
                    "pooled executor subclasses must set _pool_factory"
                )
            self._pool = factory(max_workers=self.max_workers)
        return self._pool


class ThreadExecutor(_PooledExecutor):
    """Run the map step on a thread pool (numpy releases the GIL)."""

    name = "thread"
    _pool_factory = ThreadPoolExecutor


class ProcessExecutor(_PooledExecutor):
    """Run the map step on a process pool (shards are pickled over)."""

    name = "process"
    _pool_factory = ProcessPoolExecutor


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(executor: ExecutorLike) -> ExecutorLike:
    """Resolve an executor name or pass an executor instance through."""
    if isinstance(executor, str):
        if executor == "supervised":
            # Lazy import: repro.resilience sits above this module and
            # wraps the plain backends defined here.
            from repro.resilience import SupervisedExecutor

            return SupervisedExecutor()  # reprolint: disable=RL003(factory hands ownership to the caller, the same contract as every get_executor resolution)
        try:
            return _EXECUTORS[executor]()
        except KeyError:
            raise InvalidParameterError(
                f"unknown executor {executor!r}; expected one of "
                f"{tuple(_EXECUTORS) + ('supervised',)}"
            ) from None
    if hasattr(executor, "map"):
        return executor
    raise InvalidParameterError(
        f"executor must be a name or expose .map(fn, items), got {executor!r}"
    )


def process_backed(executor: ExecutorLike) -> bool:
    """True when the executor's map step runs in worker *processes*.

    The fan call sites use this to decide pickling-cost accounting
    (``storage.bytes_shipped``) and closure-shipping guards. Plain
    executors answer by type; wrappers such as
    :class:`repro.resilience.SupervisedExecutor` answer for their
    *current* rung via a ``process_backed`` attribute.
    """
    if isinstance(executor, ProcessExecutor):
        return True
    return bool(getattr(executor, "process_backed", False))


def _sketch_shard(
    payload: tuple[Any, ...],
) -> SupportSketch | tuple[SupportSketch, MetricsRegistry]:
    """Top-level map worker (must be picklable for the process backend).

    With the collect flag set, the shard is sketched under a fresh
    local registry that travels back with the result; instrumentation
    inside the counting path (bitmap memo hits, plan counts) lands
    there instead of the worker's null default.
    """
    transactions, itemsets, n_items, collect = payload
    if not collect:
        return SupportSketch.from_transactions(transactions, itemsets, n_items)
    local = MetricsRegistry()
    with use_registry(local):
        with local.span("stream.shard.sketch"):
            sketch = SupportSketch.from_transactions(
                transactions, itemsets, n_items
            )
        local.inc("stream.shards.sketched")
        local.observe("stream.shard.rows", float(len(transactions)))
    return sketch, local


def _merge_worker_registries(results: list[Any]) -> list[Any]:
    """Unzip ``(result, registry)`` pairs, merging registries in order."""
    sink = metrics()
    bare: list[Any] = []
    for result, local in results:
        bare.append(result)
        sink.absorb(local)
    return bare


def shipped_row_bytes(shards: Sequence[Sequence[Any]]) -> int:
    """Approximate pickled payload bytes of row shards (8 bytes/item+row).

    Feeds the ``storage.bytes_shipped`` counter when a *process* fan has
    to ship the rows themselves; the handle-based fans over a
    shared-medium store ship none, which is the zero the out-of-core
    invariants pin.
    """
    return sum(8 * (len(shard) + sum(len(t) for t in shard)) for shard in shards)


def shard_transactions(
    transactions: Sequence[Any], n_shards: int
) -> list[list[Any]]:
    """Split transactions into ``n_shards`` contiguous, near-even shards.

    With fewer transactions than shards some shards are empty; the merge
    identity makes that harmless.
    """
    if n_shards < 1:
        raise InvalidParameterError("n_shards must be >= 1")
    transactions = list(transactions)
    n = len(transactions)
    base, extra = divmod(n, n_shards)
    shards: list[list[Any]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(transactions[start : start + size])
        start += size
    return shards


def sketch_shards(
    shards: Sequence[Sequence[Any]],
    itemsets: Iterable[Iterable[int]],
    n_items: int,
    executor: ExecutorLike = "serial",
) -> list[SupportSketch]:
    """Sketch every transaction shard on the chosen backend.

    A backend *name* resolves to a runner this call owns and releases;
    an executor *instance* stays open for its owner to reuse.
    """
    canon = canonical_itemsets(itemsets)
    runner = get_executor(executor)
    owns_runner = isinstance(executor, str)
    collect = enabled()
    payloads = [(list(shard), canon, n_items, collect) for shard in shards]
    if process_backed(runner):
        metrics().inc(
            "storage.bytes_shipped",
            shipped_row_bytes([p[0] for p in payloads]),
        )
    try:
        results = runner.map(_sketch_shard, payloads)
    finally:
        if owns_runner:
            shutdown = getattr(runner, "shutdown", None)
            if shutdown is not None:
                shutdown()
    if not collect:
        return results
    return _merge_worker_registries(results)


def sharded_support_sketch(
    transactions: Sequence[Any],
    itemsets: Iterable[Iterable[int]],
    n_items: int,
    n_shards: int = 1,
    executor: ExecutorLike = "serial",
) -> SupportSketch:
    """Map-merge support counting: shard, sketch in parallel, sum.

    Equivalent to a single-scan :meth:`SupportSketch.from_transactions`
    over the whole bag (the property suite enforces this), but the map
    step fans out over the executor's workers.
    """
    shards = shard_transactions(transactions, n_shards)
    sketches = sketch_shards(shards, itemsets, n_items, executor=executor)
    merged = sum(sketches, SupportSketch.empty(itemsets, n_items))
    return merged


# --------------------------------------------------------------------- #
# Shared-index (zero-copy) map-merge
# --------------------------------------------------------------------- #


def shard_ranges(n_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous, near-even ``[start, stop)`` row ranges covering ``n_rows``."""
    if n_shards < 1:
        raise InvalidParameterError("n_shards must be >= 1")
    base, extra = divmod(n_rows, n_shards)
    ranges: list[tuple[int, int]] = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def _sketch_index_shard(
    payload: tuple[Any, ...],
) -> SupportSketch | tuple[SupportSketch, MetricsRegistry]:
    """Top-level map worker counting one row range of a shared index.

    Serial/thread backends receive the index by reference; the process
    backend receives it through pickle, which for a store with a shared
    medium is a byte-cheap :class:`~repro.data.storage.StripeHandle`
    the worker re-maps zero-copy (``BitmapIndex.__reduce_ex__``) -- the
    attach happens during payload deserialisation, the counting under
    the worker's collect registry.
    """
    index, start, stop, canon, collect = payload
    if not collect:
        counts = canon.plan().count(index, start=start, stop=stop)
        return SupportSketch._from_canonical(
            canon, counts, stop - start, index.n_items
        )
    local = MetricsRegistry()
    with use_registry(local):
        with local.span("stream.shard.sketch"):
            counts = canon.plan().count(index, start=start, stop=stop)
            sketch = SupportSketch._from_canonical(
                canon, counts, stop - start, index.n_items
            )
        local.inc("stream.shards.sketched")
        local.observe("stream.shard.rows", float(stop - start))
    return sketch, local


def sketch_index_shards(
    index: BitmapIndex,
    itemsets: Iterable[Iterable[int]],
    n_shards: int = 1,
    executor: ExecutorLike = "serial",
) -> list[SupportSketch]:
    """Sketch contiguous row ranges of one *shared* index, no row copies.

    The ranged counting seam (:meth:`SupportCountingPlan.count` with
    ``start``/``stop``) lets every shard scan its slice of the same
    stripes. On the serial/thread backends the workers share the index
    by reference. On the process backend the shipping cost depends on
    the index's store: a shared-medium (mmap) store pickles as a stripe
    handle -- ``storage.bytes_shipped`` stays 0 and workers attach
    zero-copy -- while a RAM store must ship the packed buffer to every
    worker, tallied in the same counter (the out-of-core bench measures
    exactly this gap).
    """
    canon = canonical_itemsets(itemsets)
    ranges = shard_ranges(index.n_transactions, n_shards)
    runner = get_executor(executor)
    owns_runner = isinstance(executor, str)
    collect = enabled()
    if process_backed(runner):
        shipped = 0 if index.handle() is not None else index._buf.nbytes
        metrics().inc("storage.bytes_shipped", shipped * len(ranges))
    payloads = [(index, a, b, canon, collect) for a, b in ranges]
    try:
        results = runner.map(_sketch_index_shard, payloads)
    finally:
        if owns_runner:
            shutdown = getattr(runner, "shutdown", None)
            if shutdown is not None:
                shutdown()
    if not collect:
        return results
    return _merge_worker_registries(results)


def sharded_index_sketch(
    index: BitmapIndex,
    itemsets: Iterable[Iterable[int]],
    n_shards: int = 1,
    executor: ExecutorLike = "serial",
) -> SupportSketch:
    """Map-merge counting over a shared index: range-split, sketch, sum.

    Equivalent to one full-scan sketch of the index (the
    backend-parametrized property suite enforces bit-identity across
    backends and executors), but no shard ever holds a row copy.
    """
    sketches = sketch_index_shards(
        index, itemsets, n_shards=n_shards, executor=executor
    )
    return sum(sketches, SupportSketch.empty(itemsets, index.n_items))


# --------------------------------------------------------------------- #
# Partition (tabular) map-merge
# --------------------------------------------------------------------- #


def _sketch_partition_shard(
    payload: tuple[Any, ...],
) -> PartitionSketch | tuple[PartitionSketch, MetricsRegistry]:
    """Top-level map worker for tabular shards.

    Picklable for the process backend as long as the plan's assigner is
    (tree and grid assigners are; composed GCR-overlay assigners are
    closures and need the serial or thread backend). Collects into a
    per-shard registry exactly like :func:`_sketch_shard`.
    """
    dataset, plan, collect = payload
    if not collect:
        return PartitionSketch.from_dataset(dataset, plan)
    local = MetricsRegistry()
    with use_registry(local):
        with local.span("stream.shard.sketch"):
            sketch = PartitionSketch.from_dataset(dataset, plan)
        local.inc("stream.shards.sketched")
        local.observe("stream.shard.rows", float(len(dataset)))
    return sketch, local


def shard_dataset(dataset: DatasetLike, n_shards: int) -> list[Any]:
    """Split a tabular dataset into contiguous, near-even row slices.

    Slices are numpy views (:meth:`TabularDataset.slice_rows`), so
    sharding is O(shards), not O(rows). With fewer rows than shards some
    shards are empty; the merge identity makes that harmless.
    """
    if n_shards < 1:
        raise InvalidParameterError("n_shards must be >= 1")
    n = len(dataset)
    base, extra = divmod(n, n_shards)
    shards = []
    start = 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(dataset.slice_rows(start, start + size))
        start += size
    return shards


def sketch_partition_shards(
    shards: Sequence[Any],
    structure_or_plan: StructureOrPlan,
    executor: ExecutorLike = "serial",
) -> list[PartitionSketch]:
    """Sketch every tabular shard on the chosen backend.

    A backend *name* resolves to a runner this call owns and releases;
    an executor *instance* stays open for its owner to reuse.
    """
    plan = as_partition_plan(structure_or_plan)
    runner = get_executor(executor)
    owns_runner = isinstance(executor, str)
    collect = enabled()
    payloads = [(shard, plan, collect) for shard in shards]
    try:
        results = runner.map(_sketch_partition_shard, payloads)
    finally:
        if owns_runner:
            shutdown = getattr(runner, "shutdown", None)
            if shutdown is not None:
                shutdown()
    if not collect:
        return results
    return _merge_worker_registries(results)


def sharded_partition_sketch(
    dataset: DatasetLike,
    structure_or_plan: StructureOrPlan,
    n_shards: int = 1,
    executor: ExecutorLike = "serial",
) -> PartitionSketch:
    """Map-merge partition counting: shard rows, sketch in parallel, sum.

    Equivalent to a single-scan :meth:`PartitionSketch.from_dataset`
    over the whole dataset (the property suite enforces this), but the
    map step fans out over the executor's workers.
    """
    plan = as_partition_plan(structure_or_plan)
    if n_shards == 1:
        # Single-shard fast path: skip the slice/merge round trip (the
        # streaming hot path sketches every chunk through here).
        return PartitionSketch.from_dataset(dataset, plan)
    shards = shard_dataset(dataset, n_shards)
    sketches = sketch_partition_shards(shards, plan, executor=executor)
    return sum(sketches, PartitionSketch.empty(plan))
