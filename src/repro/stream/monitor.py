"""Online change monitoring over a live transaction stream.

:class:`OnlineChangeMonitor` is the streaming layer over
:class:`repro.core.monitor.ChangeMonitor`: rather than comparing
pre-materialised snapshot datasets (each a full rescan), it consumes raw
transactions as they arrive, forms windows incrementally, and lets the
inner monitor own what it always owned -- qualification, the drift
decision, the history, and the reference policy.

Division of labour per emitted window:

* the **reference measures** come straight from the reference model's
  measure component (no scan; the paper's Section 7.1 observation);
* the **window measures** come from the
  :class:`~repro.stream.windows.WindowManager`'s mergeable sketch --
  each arriving chunk is scanned exactly once, and a sliding advance is
  two vector ops;
* the deviation between them is assembled by
  :func:`repro.core.deviation.deviation_from_counts` over the reference
  model's structural component (``delta_1``);
* qualification is delegated to
  :meth:`ChangeMonitor.observe_precomputed`: either the full bootstrap
  (``n_boot > 0``; the window is materialised for resampling) or the
  cheap ``delta_threshold`` cut-off (``n_boot == 0``; nothing is
  materialised and the whole pipeline stays incremental).

The reference is fitted *lazily*: the first ``window_size`` rows are
buffered untouched, and mining only happens when the first monitored
chunk arrives (or again when a ``reset_on_drift`` reset promotes a
drifted window -- the one case where the buffered chunks are re-sketched
for the new reference's itemsets).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.aggregate import SUM, AggregateFunction
from repro.core.deviation import deviation_from_counts
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.monitor import ChangeMonitor, Observation
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.stream.windows import Window, WindowManager


class OnlineChangeMonitor:
    """Consume a transaction stream; yield drift-flagged observations.

    Parameters
    ----------
    model_builder:
        ``dataset -> model`` with a lits structural component (the
        tracked itemsets come from the reference model's structure).
    n_items:
        Item universe size of the stream.
    window_size:
        Rows per monitored window (and per reference window).
    step:
        Rows between consecutive windows; defaults to ``window_size``
        (tumbling). Must divide ``window_size``; smaller steps give
        sliding windows maintained by sketch add/subtract.
    f, g, n_boot, threshold, delta_threshold, policy, rng, refit_models:
        Forwarded to the inner :class:`ChangeMonitor` (see there;
        ``n_boot=0`` plus ``delta_threshold`` is the cheap fully
        incremental mode).
    executor, n_shards:
        How each chunk is counted (see :mod:`repro.stream.executor`).
    """

    def __init__(
        self,
        model_builder: Callable,
        n_items: int,
        window_size: int,
        step: int | None = None,
        *,
        f: DifferenceFunction = ABSOLUTE,
        g: AggregateFunction = SUM,
        n_boot: int = 16,
        threshold: float = 95.0,
        delta_threshold: float | None = None,
        policy: str = "fixed",
        rng: np.random.Generator | None = None,
        refit_models: bool = False,
        executor="serial",
        n_shards: int = 1,
    ) -> None:
        if n_items <= 0:
            raise InvalidParameterError("n_items must be positive")
        if window_size < 1:
            raise InvalidParameterError("window_size must be >= 1")
        step = window_size if step is None else step
        if step < 1 or window_size % step:
            raise InvalidParameterError(
                f"step must be >= 1 and divide window_size "
                f"({step} vs {window_size})"
            )
        self.n_items = n_items
        self.window_size = window_size
        self.step = step
        self.executor = executor
        self.n_shards = n_shards
        self.monitor = ChangeMonitor(
            model_builder,
            f=f,
            g=g,
            n_boot=n_boot,
            threshold=threshold,
            delta_threshold=delta_threshold,
            policy=policy,
            rng=rng,
            refit_models=refit_models,
        )
        self._buffer: list[tuple[int, ...]] = []
        self._reference_rows: list[tuple[int, ...]] | None = None
        self._windows: WindowManager | None = None
        self._ref_counts: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Stream consumption
    # ------------------------------------------------------------------ #

    def push(self, transactions: Iterable[Iterable[int]]) -> list[Observation]:
        """Feed transactions; return observations for windows completed.

        Arriving rows are buffered until they form the reference window
        (the first ``window_size`` rows) and thereafter ``step``-row
        chunks; each completed chunk advances the window manager and, if
        a window completes, produces one qualified observation.
        """
        self._buffer.extend(tuple(t) for t in transactions)
        observations: list[Observation] = []
        while True:
            if self._reference_rows is None:
                if len(self._buffer) < self.window_size:
                    break
                self._reference_rows = self._buffer[: self.window_size]
                del self._buffer[: self.window_size]
            elif len(self._buffer) >= self.step:
                chunk = self._buffer[: self.step]
                del self._buffer[: self.step]
                observation = self._observe_chunk(chunk)
                if observation is not None:
                    observations.append(observation)
            else:
                break
        return observations

    def monitor_stream(
        self, chunks: Iterable[Iterable[Iterable[int]]]
    ) -> Iterator[Observation]:
        """Drive the monitor from any chunked source, yielding verdicts."""
        for chunk in chunks:
            yield from self.push(chunk)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_warming_up(self) -> bool:
        """True until the reference window has fully arrived."""
        return self._reference_rows is None

    @property
    def history(self) -> list[Observation]:
        return self.monitor.history

    def drift_points(self) -> list[int]:
        return self.monitor.drift_points()

    @property
    def rows_sketched(self) -> int:
        """Rows scanned by the sketch layer so far (excludes reference)."""
        return 0 if self._windows is None else self._windows.rows_sketched

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _lazy_start(self) -> None:
        """Mine the reference and build the window manager, first use."""
        if self._windows is not None:
            return
        reference = TransactionDataset(self._reference_rows, self.n_items)
        self.monitor.fit(reference)
        self._track_reference_structure()
        self._windows = self._new_window_manager()

    def _new_window_manager(self) -> WindowManager:
        return WindowManager(
            self.monitor._reference_model.structure.itemsets,
            self.n_items,
            window_chunks=self.window_size // self.step,
            policy="tumbling" if self.step == self.window_size else "sliding",
            executor=self.executor,
            n_shards=self.n_shards,
        )

    def _track_reference_structure(self) -> None:
        """Cache the reference structure's measure vector as counts."""
        model = self.monitor._reference_model
        if not hasattr(model, "supports") or not hasattr(
            model.structure, "itemsets"
        ):
            raise InvalidParameterError(
                "OnlineChangeMonitor requires a model_builder producing "
                "lits-models (a structure of itemsets with stored supports); "
                f"got {type(model).__name__}"
            )
        structure = model.structure
        n_ref = len(self.monitor._reference_dataset)
        self._ref_counts = np.array(
            [round(model.supports[s] * n_ref) for s in structure.itemsets],
            dtype=np.int64,
        )

    def _observe_chunk(self, chunk: list[tuple[int, ...]]) -> Observation | None:
        self._lazy_start()
        window = self._windows.push(chunk)
        if window is None:
            return None
        return self._qualify_window(window)

    def _qualify_window(self, window: Window) -> Observation:
        monitor = self.monitor
        structure = monitor._reference_model.structure
        result = deviation_from_counts(
            structure,
            self._ref_counts,
            window.sketch.counts,
            len(monitor._reference_dataset),
            len(window),
            f=monitor.f,
            g=monitor.g,
        )
        # The bootstrap resamples rows and a reference reset adopts the
        # snapshot, so those paths need the window materialised; the
        # cheap fixed-policy mode never touches it.
        needs_rows = monitor.n_boot > 0 or monitor.policy == "reset_on_drift"
        snapshot = window.to_dataset() if needs_rows else window
        before = monitor._reference_index
        observation = monitor.observe_precomputed(snapshot, result.value)
        if monitor._reference_index != before:
            # reset_on_drift promoted this window: re-track the new
            # reference structure and re-sketch the buffered chunks (the
            # one place a surviving row is scanned twice).
            self._track_reference_structure()
            buffered = self._windows.buffered_chunks
            scanned_before = self._windows.rows_sketched
            self._windows = self._new_window_manager()
            for chunk in buffered:
                self._windows.push(chunk)
            # carry the lifetime scan count across the rebuild (the
            # re-fed chunks count again: they really were re-scanned)
            self._windows.rows_sketched += scanned_before
        return observation
