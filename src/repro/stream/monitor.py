"""Online change monitoring over a live stream (both dataset kinds).

:class:`OnlineChangeMonitor` is the streaming layer over
:class:`repro.core.monitor.ChangeMonitor`: rather than comparing
pre-materialised snapshot datasets (each a full rescan), it consumes raw
rows as they arrive, forms windows incrementally, and lets the inner
monitor own what it always owned -- qualification, the drift decision,
the history, and the reference policy.

The monitor is generic over the dataset kind through the
:class:`~repro.stream.windows.ChunkSketcher` protocol:

* ``kind="transactions"`` -- the reference model is a lits-model; window
  measures come from mergeable :class:`~repro.stream.sketch.SupportSketch`
  counts over the reference structure's itemsets, and the reference
  measures are read straight off the model's stored supports (no scan;
  the paper's Section 7.1 observation).
* ``kind="tabular"`` -- the reference model is a dt- or cluster-model
  (any partition structure); window measures come from mergeable
  :class:`~repro.stream.sketch.PartitionSketch` histograms over the
  structure's precompiled counting plan, and the reference measures are
  histogrammed once from the reference window.

Division of labour per emitted window:

* the deviation between reference and window counts is assembled by
  :func:`repro.core.deviation.deviation_from_counts` over the reference
  model's structural component (``delta_1``);
* qualification is delegated to
  :meth:`ChangeMonitor.observe_precomputed`: the full bootstrap
  (``n_boot > 0``) or the cheap ``delta_threshold`` cut-off
  (``n_boot == 0``).

Bootstrapping a *fixed* reference structure no longer materialises
window rows: the null is computed by the count-space engine
(:mod:`repro.stats.resample_plan`). For tabular streams the pooled
region counts -- reference counts plus the window sketch, both already
in hand -- fully determine the null (disjoint regions resample as a
multinomial over region bins), so qualification touches no row at all.
For transaction streams itemset regions overlap, so the engine needs
per-row membership: the reference rows' membership matrix is compiled
once per reference (not per window) and each window contributes one
membership pass over its own rows -- never a pooled-dataset rebuild,
and never a per-replicate resample materialisation. Windows are only
materialised as datasets when a ``reset_on_drift`` reset promotes one
to reference, or when ``refit_models=True`` re-mines per replicate.

The reference is fitted *lazily*: the first ``window_size`` rows are
buffered untouched, and mining only happens when the first monitored
chunk arrives (or again when a ``reset_on_drift`` reset promotes a
drifted window -- the one case where the buffered chunks are re-sketched
for the new reference's structure). :meth:`OnlineChangeMonitor.flush`
drains the trailing rows into a final partial window so a finite stream
never silently drops its tail.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Iterator

import numpy as np

from repro._typing import DatasetLike, ExecutorLike, ModelBuilder
from repro.core.aggregate import SUM, AggregateFunction
from repro.core.deviation import deviation_from_counts
from repro.core.difference import ABSOLUTE, DifferenceFunction
from repro.core.model import PartitionStructure
from repro.core.monitor import ChangeMonitor, Observation
from repro.data.tabular import TabularDataset
from repro.data.transactions import BitmapIndex, TransactionDataset
from repro.errors import InvalidParameterError
from repro.obs import LATENCY_EDGES, metrics
from repro.stats.resample_plan import (
    CountsResamplePlan,
    LitsResamplePlan,
    lits_membership,
)
from repro.stream.executor import get_executor
from repro.stream.windows import (
    ChunkSketcher,
    PartitionChunkSketcher,
    TransactionChunkSketcher,
    Window,
    WindowManager,
)

KINDS = ("transactions", "tabular")


class _TransactionBuffer:
    """Row buffer for transaction streams: plain tuples in a list."""

    def __init__(self) -> None:
        self._rows: list[tuple[int, ...]] = []

    def extend(self, transactions: Iterable[Iterable[int]]) -> None:
        self._rows.extend(tuple(t) for t in transactions)

    def __len__(self) -> int:
        return len(self._rows)

    def pop(self, k: int) -> list[tuple[int, ...]]:
        chunk = self._rows[:k]
        del self._rows[:k]
        return chunk


class _TabularBuffer:
    """Row buffer for tabular streams: queued view-backed slices.

    ``pop`` splits on row boundaries with views, so buffering never
    copies a row more than the one ``vstack`` that forms its chunk.
    """

    def __init__(self) -> None:
        self._chunks: list[Any] = []
        self._n = 0
        self.space: Any = None

    def extend(self, chunk: DatasetLike) -> None:
        if not hasattr(chunk, "X") or not hasattr(chunk, "space"):
            raise InvalidParameterError(
                "a tabular monitor consumes TabularDataset chunks, got "
                f"{type(chunk).__name__}"
            )
        if self.space is None:
            self.space = chunk.space
        if len(chunk):
            self._chunks.append(chunk)
            self._n += len(chunk)

    def __len__(self) -> int:
        return self._n

    def pop(self, k: int) -> TabularDataset:
        taken: list[TabularDataset] = []
        need = k
        while need > 0:
            head = self._chunks[0]
            if len(head) <= need:
                taken.append(self._chunks.pop(0))
                need -= len(head)
            else:
                taken.append(head.slice_rows(0, need))
                self._chunks[0] = head.slice_rows(need, len(head))
                need = 0
        self._n -= k
        if len(taken) == 1:
            return taken[0]
        return TabularDataset.concat_many(taken)


class OnlineChangeMonitor:
    """Consume a row stream; yield drift-flagged observations.

    Parameters
    ----------
    model_builder:
        ``dataset -> model``. For ``kind="transactions"`` the model must
        have a lits structural component (the tracked itemsets come from
        the reference model's structure); for ``kind="tabular"`` it must
        have a partition structural component (a dt- or cluster-model).
    n_items:
        Item universe size of the stream (transactions kind only; must
        be omitted for tabular streams).
    window_size:
        Rows per monitored window (and per reference window).
    step:
        Rows between consecutive windows; defaults to ``window_size``
        (tumbling). Must divide ``window_size``; smaller steps give
        sliding windows maintained by sketch add/subtract.
    kind:
        ``"transactions"`` (default) or ``"tabular"``.
    f, g, n_boot, threshold, delta_threshold, policy, rng, refit_models:
        Forwarded to the inner :class:`ChangeMonitor` (see there;
        ``n_boot=0`` plus ``delta_threshold`` is the cheap fully
        incremental mode).
    executor, n_shards:
        How each chunk is counted (see :mod:`repro.stream.executor`).
        ``executor`` is also forwarded to the inner monitor, so the
        count-space bootstrap fans its replicate blocks over the same
        backend.
    n_blocks:
        Replicate blocks the bootstrap fans over ``executor`` (see
        :meth:`~repro.stats.resample_plan.ResamplePlan.null_deviations`).
    """

    def __init__(
        self,
        model_builder: ModelBuilder,
        n_items: int | None = None,
        window_size: int = 0,
        step: int | None = None,
        *,
        kind: str = "transactions",
        f: DifferenceFunction = ABSOLUTE,
        g: AggregateFunction = SUM,
        n_boot: int = 16,
        threshold: float = 95.0,
        delta_threshold: float | None = None,
        policy: str = "fixed",
        rng: np.random.Generator | None = None,
        refit_models: bool = False,
        executor: ExecutorLike = "serial",
        n_shards: int = 1,
        n_blocks: int = 1,
    ) -> None:
        if kind not in KINDS:
            raise InvalidParameterError(
                f"kind must be one of {KINDS}, got {kind!r}"
            )
        if kind == "transactions":
            if n_items is None or n_items <= 0:
                raise InvalidParameterError("n_items must be positive")
        elif n_items is not None:
            raise InvalidParameterError(
                "n_items only applies to transaction streams"
            )
        if window_size < 1:
            raise InvalidParameterError("window_size must be >= 1")
        step = window_size if step is None else step
        if step < 1 or window_size % step:
            raise InvalidParameterError(
                f"step must be >= 1 and divide window_size "
                f"({step} vs {window_size})"
            )
        self.kind = kind
        self.n_items = n_items
        self.window_size = window_size
        self.step = step
        # resolved once: every sketcher (including post-reset rebuilds)
        # and the inner monitor's bootstrap share one executor instance,
        # so a pooled backend owns exactly one worker pool, releasable
        # deterministically via close()
        self.executor = get_executor(executor)
        self.n_shards = n_shards
        self.monitor = ChangeMonitor(
            model_builder,
            f=f,
            g=g,
            n_boot=n_boot,
            threshold=threshold,
            delta_threshold=delta_threshold,
            policy=policy,
            rng=rng,
            refit_models=refit_models,
            # the resolved instance, not the name: the bootstrap's fanned
            # blocks then reuse this monitor's one pool (released by
            # close()) instead of spawning a pool per qualification
            executor=self.executor,
            n_blocks=n_blocks,
        )
        self._buffer = (
            _TransactionBuffer() if kind == "transactions" else _TabularBuffer()
        )
        #: lifetime rows accepted by :meth:`push`, including warm-up and
        #: rows still buffered -- the exact stream offset a resumed run
        #: must skip to (see :meth:`checkpoint` / :meth:`resume`)
        self.rows_ingested = 0
        self._reference_data: Any = None
        self._windows: WindowManager | None = None
        self._ref_counts: np.ndarray | None = None
        # Reference rows' region-membership matrix (transactions kind,
        # bootstrap mode only): compiled lazily on the first
        # qualification and reused by every window until a reference
        # reset invalidates it.
        self._ref_membership: np.ndarray | None = None
        # Per-chunk membership blocks for the chunks currently in the
        # sliding ring (id(chunk) -> (chunk, membership)): a surviving
        # chunk's rows keep their compiled membership across window
        # advances, so a qualification costs one membership pass over
        # the *entering* chunk only. The chunk object is stored in the
        # entry so a recycled id can never alias a different chunk.
        self._chunk_membership: dict[int, tuple[Any, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Stream consumption
    # ------------------------------------------------------------------ #

    def push(self, data: DatasetLike) -> list[Observation]:
        """Feed arriving rows; return observations for windows completed.

        For transaction streams ``data`` is an iterable of transactions;
        for tabular streams it is a :class:`TabularDataset` chunk (any
        size). Arriving rows are buffered until they form the reference
        window (the first ``window_size`` rows) and thereafter
        ``step``-row chunks; each completed chunk advances the window
        manager and, if a window completes, produces one qualified
        observation.
        """
        before = len(self._buffer)
        self._buffer.extend(data)
        self.rows_ingested += len(self._buffer) - before
        observations: list[Observation] = []
        while True:
            if self._reference_data is None:
                if len(self._buffer) < self.window_size:
                    break
                self._reference_data = self._buffer.pop(self.window_size)
            elif len(self._buffer) >= self.step:
                observation = self._observe_chunk(self._buffer.pop(self.step))
                if observation is not None:
                    observations.append(observation)
            else:
                break
        return observations

    def monitor_stream(self, chunks: Iterable[Any]) -> Iterator[Observation]:
        """Drive the monitor from any chunked source, yielding verdicts."""
        for chunk in chunks:
            yield from self.push(chunk)

    def flush(self) -> list[Observation]:
        """Drain trailing rows into a final partial window, if possible.

        A finite stream rarely ends on a window boundary: rows shorter
        than a step sit in the buffer, and the window manager may hold
        chunks short of a full window (a tumbling buffer, or a sliding
        ring that never filled once). ``flush`` pushes the buffered
        remainder through as one last (short) chunk and then flushes the
        window manager (see :meth:`WindowManager.flush`), qualifying
        whatever windows emerge. Returns the observations (empty when
        the stream ended during warm-up, or when nothing was pending --
        a sliding stream whose tail is already inside the last emitted
        window reports nothing new). The monitor remains usable
        afterwards, but a flushed partial chunk makes subsequent window
        offsets partial too -- flush is meant for end-of-stream.
        """
        observations: list[Observation] = []
        if self._reference_data is None:
            return observations  # warm-up never completed: nothing to flush
        if len(self._buffer):
            observation = self._observe_chunk(
                self._buffer.pop(len(self._buffer))
            )
            if observation is not None:
                observations.append(observation)
        if self._windows is not None:
            window = self._windows.flush()
            if window is not None:
                observations.append(self._qualify_window(window))
        return observations

    def checkpoint(self, directory: Any) -> Any:
        """Persist the full monitor state durably under ``directory``.

        Atomic-manifest publish (the ``MmapStripeStore`` pattern): the
        new generation's files are written first, the manifest is
        swapped in last via ``os.replace``, and a kill at *any* point
        leaves the previous committed checkpoint intact. Returns the
        manifest path. See :mod:`repro.resilience.checkpoint`.
        """
        from repro.resilience.checkpoint import write_checkpoint

        return write_checkpoint(self, directory)

    def resume(self, directory: Any) -> "OnlineChangeMonitor":
        """Restore the last committed checkpoint into this fresh monitor.

        The monitor must be newly constructed with the same
        configuration that wrote the checkpoint (the persisted
        fingerprint is verified). Afterwards, pushing the stream's
        remaining rows (``rows_ingested`` rows were already consumed)
        produces bit-identical observations to the uninterrupted run.
        """
        from repro.resilience.checkpoint import resume_checkpoint

        resume_checkpoint(self, directory)
        return self

    def close(self) -> None:
        """Release pooled executor workers (thread/process backends).

        A no-op for the serial backend. Letting the interpreter reap a
        process pool at exit instead can race CPython's atexit wakeup
        and print a spurious ``OSError``; long-lived callers should
        close explicitly once the stream ends. The monitor stays usable
        -- a pooled backend lazily respawns workers on the next map.
        """
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_warming_up(self) -> bool:
        """True until the reference window has fully arrived."""
        return self._reference_data is None

    @property
    def history(self) -> list[Observation]:
        return self.monitor.history

    def drift_points(self) -> list[int]:
        return self.monitor.drift_points()

    @property
    def rows_sketched(self) -> int:
        """Rows scanned by the sketch layer so far (excludes reference)."""
        return 0 if self._windows is None else self._windows.rows_sketched

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _lazy_start(self) -> None:
        """Mine the reference and build the window manager, first use."""
        if self._windows is not None:
            return
        if self.kind == "transactions":
            assert self.n_items is not None  # enforced by __init__
            reference: DatasetLike = TransactionDataset(
                self._reference_data, self.n_items
            )
        else:
            reference = self._reference_data
        self.monitor.fit(reference)
        self._track_reference_structure()
        self._windows = self._new_window_manager()

    def _new_window_manager(self) -> WindowManager:
        structure = self.monitor._reference_model.structure
        sketcher: ChunkSketcher
        if self.kind == "transactions":
            assert self.n_items is not None  # enforced by __init__
            sketcher = TransactionChunkSketcher(
                structure.itemsets,
                self.n_items,
                executor=self.executor,
                n_shards=self.n_shards,
            )
        else:
            sketcher = PartitionChunkSketcher(
                structure.plan,
                executor=self.executor,
                n_shards=self.n_shards,
            )
        return WindowManager(
            sketcher,
            window_chunks=self.window_size // self.step,
            policy="tumbling" if self.step == self.window_size else "sliding",
        )

    def _track_reference_structure(self) -> None:
        """Cache the reference structure's measure vector as counts."""
        model = self.monitor._reference_model
        structure = getattr(model, "structure", None)
        # stale after any reference change: membership columns are the
        # (new) reference structure's regions
        self._ref_membership = None
        self._chunk_membership = {}
        if self.kind == "tabular":
            if not isinstance(structure, PartitionStructure):
                raise InvalidParameterError(
                    "a tabular OnlineChangeMonitor requires a model_builder "
                    "producing partition models (dt- or cluster-models); "
                    f"got {type(model).__name__}"
                )
            # dt-/cluster-models do not store their measure component, so
            # the reference window is histogrammed once (a single
            # memoised assigner pass + bincount).
            self._ref_counts = np.asarray(
                structure.counts(self.monitor._reference_dataset),
                dtype=np.int64,
            )
            return
        if not hasattr(model, "supports") or not hasattr(
            structure, "itemsets"
        ):
            raise InvalidParameterError(
                "a transaction OnlineChangeMonitor requires a model_builder "
                "producing lits-models (a structure of itemsets with stored "
                f"supports); got {type(model).__name__}"
            )
        n_ref = len(self.monitor._reference_dataset)
        self._ref_counts = np.array(
            [round(model.supports[s] * n_ref) for s in structure.itemsets],
            dtype=np.int64,
        )

    def _observe_chunk(self, chunk: Any) -> Observation | None:
        self._lazy_start()
        assert self._windows is not None  # _lazy_start built it
        window = self._windows.push(chunk)
        if window is None:
            return None
        return self._qualify_window(window)

    def _qualify_window(self, window: Window) -> Observation:
        monitor = self.monitor
        sink = metrics()
        started = time.perf_counter()
        structure = monitor._reference_model.structure
        assert self._ref_counts is not None  # set when the reference fit
        result = deviation_from_counts(
            structure,
            self._ref_counts,
            window.sketch.counts,
            len(monitor._reference_dataset),
            len(window),
            f=monitor.f,
            g=monitor.g,
        )
        # A fixed-structure bootstrap runs in count-space, so the only
        # consumers that still need the window as a dataset are a
        # reference reset (the snapshot is adopted) and refit_models
        # (models are re-mined from resampled rows).
        needs_rows = monitor.policy == "reset_on_drift" or (
            monitor.n_boot > 0 and monitor.refit_models
        )
        snapshot = window.to_dataset() if needs_rows else window
        plan = None
        if monitor.n_boot > 0 and not monitor.refit_models:
            plan = self._window_resample_plan(window)
        sink.inc(
            "monitor.qualify.bootstrap"
            if monitor.n_boot > 0
            else "monitor.qualify.cheap"
        )
        before = monitor._reference_index
        with sink.span("monitor.observe"):
            observation = monitor.observe_precomputed(
                snapshot, result.value, resample_plan=plan
            )
        if observation.drifted:
            sink.inc("monitor.drift.events")
        if monitor._reference_index != before:
            sink.inc("monitor.reference.resets")
            # reset_on_drift promoted this window: re-track the new
            # reference structure and re-sketch the buffered chunks (the
            # one place a surviving row is scanned twice).
            self._track_reference_structure()
            assert self._windows is not None
            buffered = self._windows.buffered_chunks
            scanned_before = self._windows.rows_sketched
            self._windows = self._new_window_manager()
            for chunk in buffered:
                self._windows.push(chunk)
            # carry the lifetime scan count across the rebuild (the
            # re-fed chunks count again: they really were re-scanned)
            self._windows.rows_sketched += scanned_before
        sink.observe(
            "monitor.observe.latency_s",
            time.perf_counter() - started,
            edges=LATENCY_EDGES,
        )
        return observation

    def _window_resample_plan(
        self, window: Window
    ) -> CountsResamplePlan | LitsResamplePlan:
        """Compile the count-space bootstrap for one window's pool.

        Tabular streams need no rows at all: partition regions are
        disjoint, so the pooled counts (cached reference counts + the
        window's sketch) determine the null as a multinomial over
        region bins. Transaction streams need per-row membership
        because itemset regions overlap: the reference block is
        compiled once per reference, each *chunk*'s block is compiled
        once when it first appears in a window and cached for as long
        as it survives the sliding ring, and the plan is assembled from
        those blocks -- so a window advance costs one membership pass
        over the entering chunk only, never over surviving rows.
        """
        monitor = self.monitor
        structure = monitor._reference_model.structure
        n_ref = len(monitor._reference_dataset)
        assert self._ref_counts is not None  # set when the reference fit
        if self.kind == "tabular":
            return CountsResamplePlan(
                structure,
                self._ref_counts,
                window.sketch.counts,
                n_ref,
                len(window),
            )
        if self._ref_membership is None:
            # float32 up front: the plan's exact-matmul dtype, so the
            # long-lived blocks are adopted without a per-window copy
            # (windows this size keep the pool far below 2**24).
            self._ref_membership = lits_membership(
                structure, monitor._reference_dataset.index
            ).astype(np.float32)
        surviving: dict[int, tuple[Any, np.ndarray]] = {}
        parts: list[np.ndarray] = [self._ref_membership]
        for chunk in window.chunks:
            key = id(chunk)
            entry = self._chunk_membership.get(key)
            if entry is None or entry[0] is not chunk:
                assert self.n_items is not None  # transactions kind
                membership = lits_membership(
                    structure, BitmapIndex(chunk, self.n_items)
                ).astype(np.float32)
                entry = (chunk, membership)
            surviving[key] = entry
            parts.append(entry[1])
        # retain exactly the current window's chunks: retired chunks
        # can never reappear, so their blocks are dropped here
        self._chunk_membership = surviving
        return LitsResamplePlan(structure, parts, n_ref, len(window))
