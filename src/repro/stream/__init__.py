"""Streaming deviation measurement: incremental, mergeable, online.

The paper's motivating loop -- "analyze the data thoroughly only if the
current snapshot differs significantly" -- is a *streaming* workload:
data arrives continuously and every window of it needs a deviation
verdict against a reference. This subsystem makes that loop incremental
end to end, for **both** dataset kinds (transactions / lits-models and
tabular / partition models):

* :mod:`repro.stream.chunks` -- chunked stream sources plus the
  appendable :class:`TransactionLog` (live incremental bitmap index)
  and :class:`TabularLog` (grow-in-place ``X``/``y`` buffers);
* :mod:`repro.stream.sketch` -- mergeable sketches:
  :class:`SupportSketch` (itemset supports) and
  :class:`PartitionSketch` (per-(cell x class) histograms), both
  combining with ``+`` and subtracting for window retirement;
* :mod:`repro.stream.executor` -- serial / thread / process map-merge
  backends for shard-parallel counting of either kind;
* :mod:`repro.stream.windows` -- the :class:`ChunkSketcher` protocol,
  its :class:`TransactionChunkSketcher` / :class:`PartitionChunkSketcher`
  implementations, and :class:`WindowManager`: tumbling and sliding
  window maintenance with no rescan of surviving rows;
* :mod:`repro.stream.monitor` -- :class:`OnlineChangeMonitor`, the
  drift loop over a live stream of either kind, layered on
  :class:`repro.core.monitor.ChangeMonitor`.
"""

from repro.stream.chunks import (
    TabularLog,
    TransactionLog,
    iter_chunks,
    iter_tabular_chunks,
    stream_tabular_chunks,
    stream_transaction_chunks,
)
from repro.stream.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    shard_dataset,
    shard_ranges,
    shard_transactions,
    sharded_index_sketch,
    sharded_partition_sketch,
    sharded_support_sketch,
    sketch_index_shards,
    sketch_partition_shards,
    sketch_shards,
)
from repro.stream.monitor import OnlineChangeMonitor
from repro.stream.sketch import (
    PartitionSketch,
    SupportSketch,
    as_partition_plan,
    canonical_itemsets,
)
from repro.stream.windows import (
    ChunkSketcher,
    PartitionChunkSketcher,
    TransactionChunkSketcher,
    Window,
    WindowManager,
)

__all__ = [
    "ChunkSketcher",
    "OnlineChangeMonitor",
    "PartitionChunkSketcher",
    "PartitionSketch",
    "ProcessExecutor",
    "SerialExecutor",
    "SupportSketch",
    "TabularLog",
    "ThreadExecutor",
    "TransactionChunkSketcher",
    "TransactionLog",
    "Window",
    "WindowManager",
    "as_partition_plan",
    "canonical_itemsets",
    "get_executor",
    "iter_chunks",
    "iter_tabular_chunks",
    "shard_dataset",
    "shard_ranges",
    "shard_transactions",
    "sharded_index_sketch",
    "sharded_partition_sketch",
    "sharded_support_sketch",
    "sketch_index_shards",
    "sketch_partition_shards",
    "sketch_shards",
    "stream_tabular_chunks",
    "stream_transaction_chunks",
]
