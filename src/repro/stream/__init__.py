"""Streaming deviation measurement: incremental, mergeable, online.

The paper's motivating loop -- "analyze the data thoroughly only if the
current snapshot differs significantly" -- is a *streaming* workload:
data arrives continuously and every window of it needs a deviation
verdict against a reference. This subsystem makes that loop incremental
end to end:

* :mod:`repro.stream.chunks` -- chunked stream sources and the
  appendable :class:`TransactionLog` over the incremental bitmap index;
* :mod:`repro.stream.sketch` -- :class:`SupportSketch`, per-shard
  support counts for a fixed itemset collection that merge with ``+``
  (and subtract, for window retirement);
* :mod:`repro.stream.executor` -- serial / thread / process map-merge
  backends for shard-parallel counting;
* :mod:`repro.stream.windows` -- :class:`WindowManager`, tumbling and
  sliding window maintenance with no rescan of surviving rows;
* :mod:`repro.stream.monitor` -- :class:`OnlineChangeMonitor`, the
  drift loop over a live stream, layered on
  :class:`repro.core.monitor.ChangeMonitor`.
"""

from repro.stream.chunks import (
    TransactionLog,
    iter_chunks,
    stream_transaction_chunks,
)
from repro.stream.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    shard_transactions,
    sharded_support_sketch,
    sketch_shards,
)
from repro.stream.monitor import OnlineChangeMonitor
from repro.stream.sketch import SupportSketch, canonical_itemsets
from repro.stream.windows import Window, WindowManager

__all__ = [
    "OnlineChangeMonitor",
    "ProcessExecutor",
    "SerialExecutor",
    "SupportSketch",
    "ThreadExecutor",
    "TransactionLog",
    "Window",
    "WindowManager",
    "canonical_itemsets",
    "get_executor",
    "iter_chunks",
    "shard_transactions",
    "sharded_support_sketch",
    "sketch_shards",
    "stream_transaction_chunks",
]
