"""Mergeable sketches: per-shard counts that combine with ``+``.

A sketch holds the absolute counts of a *fixed* structural component
over some bag of rows. Because measures are plain counts, sketches over
disjoint row bags are **additive**:

``sketch(A + B) == sketch(A) + sketch(B)``

which buys two things the streaming layer is built on:

* *map-merge counting* -- shard a dataset, count every shard
  independently (serially, on a thread pool, or on a process pool; see
  :mod:`repro.stream.executor`), and sum the shard sketches. The merged
  sketch equals a single-scan count of the whole dataset.
* *window maintenance by difference* -- sketches also subtract, so a
  sliding window advances by adding the entering chunk's sketch and
  subtracting the leaving one. No row surviving in the window is
  ever rescanned (:class:`repro.stream.windows.WindowManager`).

Two sketch kinds cover the paper's model classes:

* :class:`SupportSketch` -- support counts of an itemset collection over
  transactions (lits-models). The collection is canonicalised exactly
  like :class:`repro.core.model.LitsStructure` orders its regions, so
  the counts vector aligns 1:1 with the structure built from the same
  itemsets.
* :class:`PartitionSketch` -- per-(cell x class) histograms of a
  :class:`~repro.core.model.PartitionStructure` over tabular rows
  (dt-/cluster-models), counted through the structure's precompiled
  :class:`~repro.core.partition_plan.PartitionCountingPlan` and aligned
  1:1 with its regions.

Either way the deviation engine consumes the counts vector directly via
:func:`repro.core.deviation.deviation_from_counts`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro._typing import DatasetLike, StructureOrPlan

import numpy as np

from repro.core.partition_plan import PartitionCountingPlan
from repro.data.transactions import BitmapIndex, SupportCountingPlan
from repro.errors import IncompatibleModelsError, InvalidParameterError


class _Canonical(tuple[frozenset[int], ...]):
    """Marker type: a tuple of frozensets already in canonical order.

    :func:`canonical_itemsets` returns (and short-circuits on) this type
    so the canonicalisation cost is paid once per itemset collection,
    not once per sketch construction -- the streaming hot path builds
    hundreds of sketches over the same collection. The sorted-tuple form
    the bitmap index consumes is cached for the same reason.
    """

    # no __slots__: variable-length tuple subtypes cannot declare them;
    # the per-collection __dict__ holds the lazily cached counting plan.
    _plan: SupportCountingPlan

    def plan(self) -> SupportCountingPlan:
        """The precompiled counting plan for this collection, built once
        and reused by every sketch (hence every chunk) over it."""
        try:
            return self._plan
        except AttributeError:
            self._plan = SupportCountingPlan(self)
            return self._plan


def canonical_itemsets(
    itemsets: Iterable[Iterable[int]],
) -> tuple[frozenset[int], ...]:
    """The deduplicated itemsets in LitsStructure order (size, then lex)."""
    if isinstance(itemsets, _Canonical):
        return itemsets
    unique = {frozenset(int(i) for i in s) for s in itemsets}
    return _Canonical(sorted(unique, key=lambda s: (len(s), tuple(sorted(s)))))


class SupportSketch:
    """Support counts of a fixed itemset collection over a transaction bag.

    Parameters
    ----------
    itemsets:
        The tracked collection; deduplicated and canonically ordered.
    counts:
        Absolute support count per itemset, aligned with ``itemsets``.
    n_transactions:
        Size of the underlying transaction bag.
    n_items:
        Size of the item universe (sketches over different universes
        never merge).
    """

    __slots__ = ("itemsets", "counts", "n_transactions", "n_items")

    def __init__(
        self,
        itemsets: Iterable[Iterable[int]],
        counts: np.ndarray,
        n_transactions: int,
        n_items: int,
    ) -> None:
        self.itemsets = canonical_itemsets(itemsets)
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (len(self.itemsets),):
            raise InvalidParameterError(
                f"counts must align with the {len(self.itemsets)} itemsets, "
                f"got shape {counts.shape}"
            )
        if n_transactions < 0:
            raise InvalidParameterError("n_transactions must be >= 0")
        self.counts = counts
        self.n_transactions = int(n_transactions)
        self.n_items = int(n_items)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_canonical(
        cls,
        itemsets: tuple[frozenset[int], ...],
        counts: np.ndarray,
        n_transactions: int,
        n_items: int,
    ) -> "SupportSketch":
        """Internal fast path: trusted canonical itemsets, aligned counts."""
        self = object.__new__(cls)
        self.itemsets = itemsets
        self.counts = counts
        self.n_transactions = n_transactions
        self.n_items = n_items
        return self

    @classmethod
    def empty(
        cls, itemsets: Iterable[Iterable[int]], n_items: int
    ) -> "SupportSketch":
        """The additive identity: zero counts over zero transactions."""
        canon = canonical_itemsets(itemsets)
        return cls._from_canonical(
            canon, np.zeros(len(canon), dtype=np.int64), 0, n_items
        )

    @classmethod
    def from_transactions(
        cls,
        transactions: Sequence[Iterable[int]],
        itemsets: Iterable[Iterable[int]],
        n_items: int,
    ) -> "SupportSketch":
        """Count ``itemsets`` over raw transactions (one bitmap scan).

        Transactions need no canonical form here: the bitmap scatter is
        an OR, so duplicate or unsorted items within a row are harmless
        (out-of-universe items still raise).
        """
        canon = canonical_itemsets(itemsets)
        transactions = list(transactions)
        index = BitmapIndex(transactions, n_items)
        return cls._from_canonical(
            canon, canon.plan().count(index), len(transactions), n_items
        )

    @classmethod
    def from_dataset(
        cls, dataset: DatasetLike, itemsets: Iterable[Iterable[int]]
    ) -> "SupportSketch":
        """Count ``itemsets`` over an (indexed) dataset-like object."""
        canon = canonical_itemsets(itemsets)
        return cls._from_canonical(
            canon,
            canon.plan().count(dataset.index),
            len(dataset),
            dataset.n_items,
        )

    # ------------------------------------------------------------------ #
    # Merge algebra
    # ------------------------------------------------------------------ #

    @property
    def key(self) -> tuple[frozenset[frozenset[int]], int]:
        """Merge-compatibility identity: same itemsets, same universe."""
        return (frozenset(self.itemsets), self.n_items)

    @property
    def n_rows(self) -> int:
        """Rows sketched (alias of ``n_transactions``; the kind-agnostic
        name the generalised window manager reads)."""
        return self.n_transactions

    def _check_mergeable(self, other: "SupportSketch") -> None:
        if not isinstance(other, SupportSketch):
            raise IncompatibleModelsError(
                f"cannot combine SupportSketch with {type(other).__name__}"
            )
        # Canonical ordering makes tuple equality set equality; the `is`
        # test makes the streaming hot path (every chunk sketch shares
        # one canonical tuple) constant-time.
        if self.n_items != other.n_items or (
            self.itemsets is not other.itemsets
            and self.itemsets != other.itemsets
        ):
            raise IncompatibleModelsError(
                "sketches track different itemset collections or item "
                "universes and cannot be combined"
            )

    def __add__(self, other: Any) -> "SupportSketch":
        if isinstance(other, int) and other == 0:
            return self  # so sum(sketches) works with its default start
        self._check_mergeable(other)
        return SupportSketch._from_canonical(
            self.itemsets,
            self.counts + other.counts,
            self.n_transactions + other.n_transactions,
            self.n_items,
        )

    def __radd__(self, other: Any) -> "SupportSketch":
        return self.__add__(other)

    def __sub__(self, other: "SupportSketch") -> "SupportSketch":
        self._check_mergeable(other)
        n = self.n_transactions - other.n_transactions
        if n < 0:
            raise InvalidParameterError(
                "cannot subtract a sketch over more transactions than this one"
            )
        return SupportSketch._from_canonical(
            self.itemsets, self.counts - other.counts, n, self.n_items
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SupportSketch):
            return NotImplemented
        return (
            self.n_items == other.n_items
            and self.n_transactions == other.n_transactions
            and (
                self.itemsets is other.itemsets
                or self.itemsets == other.itemsets
            )
            and np.array_equal(self.counts, other.counts)
        )

    def __hash__(self) -> int:
        return hash((self.key, self.n_transactions, self.counts.tobytes()))

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def supports(self) -> np.ndarray:
        """Relative supports (selectivities); zeros over zero transactions."""
        if self.n_transactions == 0:
            return np.zeros(len(self.itemsets))
        return self.counts / self.n_transactions

    def count_of(self, itemset: Iterable[int]) -> int:
        """The absolute count of one tracked itemset."""
        target = frozenset(int(i) for i in itemset)
        try:
            pos = self.itemsets.index(target)
        except ValueError:
            raise InvalidParameterError(
                f"itemset {sorted(target)} is not tracked by this sketch"
            ) from None
        return int(self.counts[pos])

    def as_dict(self) -> dict[frozenset[int], int]:
        """Itemset -> absolute count mapping."""
        return {s: int(c) for s, c in zip(self.itemsets, self.counts)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SupportSketch(itemsets={len(self.itemsets)}, "
            f"n={self.n_transactions}, items={self.n_items})"
        )


def as_partition_plan(structure_or_plan: StructureOrPlan) -> PartitionCountingPlan:
    """Resolve a ``PartitionStructure`` or an existing plan to a plan.

    Passing the structure reuses its lazily compiled, cached plan, so
    every sketch over the same structure shares one plan object -- which
    also makes the merge-compatibility check constant-time (identity).
    """
    if isinstance(structure_or_plan, PartitionCountingPlan):
        return structure_or_plan
    plan = getattr(structure_or_plan, "plan", None)
    if isinstance(plan, PartitionCountingPlan):
        return plan
    raise InvalidParameterError(
        "expected a PartitionStructure or PartitionCountingPlan, got "
        f"{type(structure_or_plan).__name__}"
    )


class PartitionSketch:
    """Region counts of a partition structure over a bag of tabular rows.

    The partition-model sibling of :class:`SupportSketch`: ``counts``
    holds one absolute count per region of the plan's structure (cells,
    or cells x classes for dt-models), so sketches over disjoint row
    bags add, subtract (window retirement), and merge shard-wise on any
    executor. ``counts`` aligns 1:1 with ``plan.structure.regions``, so
    the deviation engine consumes it directly.

    Parameters
    ----------
    plan:
        The precompiled counting plan (or the structure, resolved via
        :func:`as_partition_plan`).
    counts:
        Absolute count per region, aligned with the structure's regions.
    n_rows:
        Size of the underlying row bag.
    """

    __slots__ = ("plan", "counts", "n_rows")

    def __init__(
        self, plan: StructureOrPlan, counts: np.ndarray, n_rows: int
    ) -> None:
        self.plan = as_partition_plan(plan)
        counts = np.asarray(counts, dtype=np.int64)
        n_regions = len(self.plan.structure.regions)
        if counts.shape != (n_regions,):
            raise InvalidParameterError(
                f"counts must align with the structure's {n_regions} "
                f"regions, got shape {counts.shape}"
            )
        if n_rows < 0:
            raise InvalidParameterError("n_rows must be >= 0")
        self.counts = counts
        self.n_rows = int(n_rows)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def _trusted(
        cls, plan: PartitionCountingPlan, counts: np.ndarray, n_rows: int
    ) -> "PartitionSketch":
        """Internal fast path: plan already resolved, counts aligned."""
        self = object.__new__(cls)
        self.plan = plan
        self.counts = counts
        self.n_rows = n_rows
        return self

    @classmethod
    def empty(cls, structure_or_plan: StructureOrPlan) -> "PartitionSketch":
        """The additive identity: zero counts over zero rows."""
        plan = as_partition_plan(structure_or_plan)
        n_regions = len(plan.structure.regions)
        return cls._trusted(plan, np.zeros(n_regions, dtype=np.int64), 0)

    @classmethod
    def from_dataset(
        cls, dataset: DatasetLike, structure_or_plan: StructureOrPlan
    ) -> "PartitionSketch":
        """Count the structure's regions over a tabular dataset (one scan).

        Raises ``IncompatibleModelsError`` if the dataset carries a class
        label outside the structure's alphabet, and ``SchemaError`` if a
        class-restricted structure meets unlabelled data -- the same
        contract as ``PartitionStructure.counts``.
        """
        plan = as_partition_plan(structure_or_plan)
        return cls._trusted(plan, plan.counts(dataset), len(dataset))

    # ------------------------------------------------------------------ #
    # Merge algebra
    # ------------------------------------------------------------------ #

    @property
    def key(self) -> Any:
        """Merge-compatibility identity: the structure measured.

        Uses the order-*sensitive* ``counts_key`` -- two structures with
        the same region set but different region order must not merge,
        because their counts vectors are positionally misaligned.
        """
        return self.plan.structure.counts_key

    def _check_mergeable(self, other: "PartitionSketch") -> None:
        if not isinstance(other, PartitionSketch):
            raise IncompatibleModelsError(
                f"cannot combine PartitionSketch with {type(other).__name__}"
            )
        # Sharing the structure's cached plan makes the streaming hot
        # path (every chunk sketch holds one plan object) constant-time.
        if self.plan is not other.plan and self.key != other.key:
            raise IncompatibleModelsError(
                "sketches measure different partition structures (or the "
                "same regions in a different order) and cannot be combined"
            )

    def __add__(self, other: Any) -> "PartitionSketch":
        if isinstance(other, int) and other == 0:
            return self  # so sum(sketches) works with its default start
        self._check_mergeable(other)
        return PartitionSketch._trusted(
            self.plan, self.counts + other.counts, self.n_rows + other.n_rows
        )

    def __radd__(self, other: Any) -> "PartitionSketch":
        return self.__add__(other)

    def __sub__(self, other: "PartitionSketch") -> "PartitionSketch":
        self._check_mergeable(other)
        n = self.n_rows - other.n_rows
        if n < 0:
            raise InvalidParameterError(
                "cannot subtract a sketch over more rows than this one"
            )
        return PartitionSketch._trusted(
            self.plan, self.counts - other.counts, n
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionSketch):
            return NotImplemented
        return (
            self.n_rows == other.n_rows
            and (self.plan is other.plan or self.key == other.key)
            and np.array_equal(self.counts, other.counts)
        )

    def __hash__(self) -> int:
        return hash((self.key, self.n_rows, self.counts.tobytes()))

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def selectivities(self) -> np.ndarray:
        """Relative measures per region; zeros over zero rows."""
        if self.n_rows == 0:
            return np.zeros(len(self.counts))
        return self.counts / self.n_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionSketch(regions={len(self.counts)}, n={self.n_rows})"
        )
