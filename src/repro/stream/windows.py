"""Window maintenance over a chunked stream (transactions or tabular).

A :class:`WindowManager` consumes fixed-size chunks and maintains the
measure counts of a fixed structural component per *window* of ``W``
chunks, never rescanning a surviving row:

* each arriving chunk is sketched once by a :class:`ChunkSketcher`
  (optionally sharded over an executor);
* **sliding** windows keep a ring buffer of the last ``W`` chunk
  sketches; the window sketch advances by ``+ entering - leaving`` --
  two O(regions) vector ops per advance, independent of window size;
* **tumbling** windows accumulate ``W`` chunk sketches, emit, and reset
  (:meth:`WindowManager.flush` emits a final partial window).

The sketcher is the only kind-specific piece. Two implementations cover
the paper's model classes: :class:`TransactionChunkSketcher` counts an
itemset collection over transaction chunks (lits-models), and
:class:`PartitionChunkSketcher` histograms a partition structure over
tabular chunks (dt-/cluster-models). Both sketch kinds merge with ``+``
and retire with ``-``, so the manager's advance logic is identical.

This is the delta-maintenance discipline the change-detection literature
asks for (compute over what changed, not from scratch), applied to the
paper's measure components: the emitted window sketch *is* the measure
vector of a structural component over that window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import cached_property
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    Iterator,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro._typing import DatasetLike, ExecutorLike, StructureOrPlan

from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.obs import MetricsRegistry, metrics
from repro.stream.executor import (
    get_executor,
    sharded_partition_sketch,
    sharded_support_sketch,
)
from repro.stream.sketch import (
    PartitionSketch,
    SupportSketch,
    as_partition_plan,
    canonical_itemsets,
)

if TYPE_CHECKING:
    from repro.data.tabular import TabularDataset

POLICIES = ("sliding", "tumbling")


@runtime_checkable
class ChunkSketcher(Protocol):
    """What the window manager needs to know about a dataset kind.

    A sketcher turns raw chunks into mergeable sketches; everything else
    -- ring buffers, add/subtract advances, emission -- is kind-agnostic.
    Sketches returned by :meth:`sketch` / :meth:`empty` must support
    ``+``/``-`` and expose ``counts`` and ``n_rows``.
    """

    #: short kind tag (``"transactions"`` or ``"tabular"``)
    kind: str

    def normalize(self, chunk: Any) -> Any:
        """Canonicalise an incoming chunk (stored in the ring buffer)."""
        ...

    def sketch(self, chunk: Any) -> Any:
        """Sketch one normalised chunk (the only scan it will ever get)."""
        ...

    def empty(self) -> Any:
        """The additive identity sketch."""
        ...

    def chunk_len(self, chunk: Any) -> int:
        """Number of rows in a normalised chunk."""
        ...

    def concat(self, chunks: Iterable[Any]) -> Any:
        """Materialise normalised chunks as one immutable dataset."""
        ...


class TransactionChunkSketcher:
    """Sketch transaction chunks against a fixed itemset collection."""

    kind = "transactions"

    def __init__(
        self,
        itemsets: Iterable[Iterable[int]],
        n_items: int,
        executor: ExecutorLike = "serial",
        n_shards: int = 1,
    ) -> None:
        self.itemsets = canonical_itemsets(itemsets)
        self.n_items = n_items
        self.executor = get_executor(executor)
        self.n_shards = n_shards

    def close(self) -> None:
        """Release pooled executor workers (no-op for the serial backend).

        A sketcher built from a backend *name* owns its pool; one handed
        an executor instance shares its owner's, and that owner should
        close instead (``shutdown`` is idempotent either way).
        """
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    def normalize(
        self, chunk: Sequence[Iterable[int]]
    ) -> tuple[tuple[int, ...], ...]:
        return tuple(tuple(t) for t in chunk)

    def sketch(self, chunk: Sequence[Iterable[int]]) -> SupportSketch:
        return sharded_support_sketch(
            chunk,
            self.itemsets,
            self.n_items,
            n_shards=self.n_shards,
            executor=self.executor,
        )

    def empty(self) -> SupportSketch:
        return SupportSketch.empty(self.itemsets, self.n_items)

    def chunk_len(self, chunk: Sequence[Any]) -> int:
        return len(chunk)

    def concat(self, chunks: Iterable[Any]) -> TransactionDataset:
        return TransactionDataset(
            tuple(t for chunk in chunks for t in chunk), self.n_items
        )


class PartitionChunkSketcher:
    """Sketch tabular chunks against a fixed partition structure.

    Chunks are :class:`~repro.data.tabular.TabularDataset` objects (or
    anything with the same row interface); each is histogrammed once
    through the structure's precompiled counting plan.
    """

    kind = "tabular"

    def __init__(
        self,
        structure_or_plan: StructureOrPlan,
        executor: ExecutorLike = "serial",
        n_shards: int = 1,
    ) -> None:
        self.plan = as_partition_plan(structure_or_plan)
        self.executor = get_executor(executor)
        self.n_shards = n_shards

    def close(self) -> None:
        """Release pooled executor workers (no-op for the serial backend).

        A sketcher built from a backend *name* owns its pool; one handed
        an executor instance shares its owner's, and that owner should
        close instead (``shutdown`` is idempotent either way).
        """
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    def normalize(self, chunk: DatasetLike) -> DatasetLike:
        if not hasattr(chunk, "X") or not hasattr(chunk, "space"):
            raise InvalidParameterError(
                "tabular chunks must be TabularDataset-like objects, got "
                f"{type(chunk).__name__}"
            )
        return chunk

    def sketch(self, chunk: DatasetLike) -> PartitionSketch:
        return sharded_partition_sketch(
            chunk,
            self.plan,
            n_shards=self.n_shards,
            executor=self.executor,
        )

    def empty(self) -> PartitionSketch:
        return PartitionSketch.empty(self.plan)

    def chunk_len(self, chunk: DatasetLike) -> int:
        return len(chunk)

    def concat(self, chunks: Iterable[DatasetLike]) -> "TabularDataset":
        from repro.data.tabular import TabularDataset

        return TabularDataset.concat_many(list(chunks))


@dataclass(frozen=True)
class Window:
    """One emitted window: its sketch plus the chunks it covers.

    The chunks are held in the manager's normalised form; flattening or
    concatenating them is deferred (:attr:`transactions`,
    :meth:`to_dataset`) so the cheap monitoring mode (which only reads
    the sketch) never pays O(window) work per advance.
    """

    index: int  #: ordinal of this window (0-based, per manager)
    start: int  #: row offset of the window's first row
    stop: int  #: row offset one past the window's last row
    sketch: SupportSketch | PartitionSketch
    chunks: tuple[Any, ...]
    sketcher: ChunkSketcher | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return self.stop - self.start

    @cached_property
    def transactions(self) -> tuple[tuple[int, ...], ...]:
        """A transaction window's rows, oldest first (flattened lazily).

        Only meaningful for transaction windows; tabular windows
        materialise through :meth:`to_dataset`.
        """
        return tuple(t for chunk in self.chunks for t in chunk)

    def to_dataset(self) -> DatasetLike:
        """Materialise the window as an immutable dataset (for e.g. the
        bootstrap, which needs to resample actual rows)."""
        if self.sketcher is not None:
            return self.sketcher.concat(self.chunks)
        return TransactionDataset(self.transactions, self.sketch.n_items)


class WindowManager:
    """Maintain per-window sketches over a chunked stream.

    Parameters
    ----------
    itemsets:
        Either the fixed itemset collection every window is measured
        over (the transaction form; ``n_items`` is then required), or
        any :class:`ChunkSketcher` -- e.g. a
        :class:`PartitionChunkSketcher` for tabular streams -- in which
        case ``n_items``, ``executor`` and ``n_shards`` are ignored
        (the sketcher owns them).
    n_items:
        Item universe size (transaction form only).
    window_chunks:
        Window length in chunks (``W``).
    policy:
        ``"sliding"`` (step of one chunk, overlap ``W - 1``) or
        ``"tumbling"`` (disjoint windows).
    executor, n_shards:
        Forwarded to the transaction sketcher: each chunk is counted as
        ``n_shards`` map-merged shards on the chosen backend.

    Notes
    -----
    ``rows_sketched`` counts the rows actually scanned; after any number
    of advances it equals the total rows pushed -- the no-rescan
    guarantee the streaming benches pin against rebuild-per-window
    baselines for both dataset kinds.
    """

    def __init__(
        self,
        itemsets: Any,
        n_items: int | None = None,
        window_chunks: int | None = None,
        policy: str = "sliding",
        executor: ExecutorLike = "serial",
        n_shards: int = 1,
    ) -> None:
        if isinstance(itemsets, ChunkSketcher) and not isinstance(
            itemsets, (list, tuple, set, frozenset)
        ):
            sketcher = itemsets
            if n_items is not None:
                raise InvalidParameterError(
                    "n_items only applies to the itemset (transaction) form"
                )
        else:
            if n_items is None:
                raise InvalidParameterError(
                    "the itemset form needs the n_items universe size"
                )
            sketcher = TransactionChunkSketcher(
                itemsets, n_items, executor=executor, n_shards=n_shards
            )
        if window_chunks is None or window_chunks < 1:
            raise InvalidParameterError("window_chunks must be >= 1")
        if policy not in POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        self.sketcher: ChunkSketcher = sketcher
        self.itemsets = getattr(sketcher, "itemsets", None)
        self.n_items = getattr(sketcher, "n_items", None)
        self.window_chunks = window_chunks
        self.policy = policy
        # Always-on local sink: the single source of truth for the
        # manager's scan accounting (rows_sketched / windows_emitted are
        # views of these counters; writes forward to the ambient
        # registry so `--metrics` runs see them too).
        self._metrics = MetricsRegistry()
        self._row_offset = 0  # row id of the next arriving row
        self._chunks: deque[tuple[Any, Any]] = deque()
        self._current = sketcher.empty()

    @property
    def rows_sketched(self) -> int:
        """Rows actually scanned, served from the obs counter.

        After any number of advances it equals the total rows pushed --
        the no-rescan guarantee the streaming benches pin (the online
        monitor adds the re-fed buffered rows after a reference reset).
        """
        return self._metrics.counter("stream.windows.rows_sketched")

    @rows_sketched.setter
    def rows_sketched(self, value: int) -> None:
        delta = value - self._metrics.counter("stream.windows.rows_sketched")
        if delta:
            self._metrics.inc("stream.windows.rows_sketched", delta)
            metrics().inc("stream.windows.rows_sketched", delta)

    @property
    def windows_emitted(self) -> int:
        """Windows emitted so far, served from the obs counter."""
        return self._metrics.counter("stream.windows.emitted")

    @windows_emitted.setter
    def windows_emitted(self, value: int) -> None:
        delta = value - self._metrics.counter("stream.windows.emitted")
        if delta:
            self._metrics.inc("stream.windows.emitted", delta)
            metrics().inc("stream.windows.emitted", delta)

    @property
    def current_sketch(self) -> Any:
        """The running sketch over the chunks currently buffered."""
        return self._current

    @property
    def buffered_chunks(self) -> tuple[Any, ...]:
        """The normalised chunks currently in the ring buffer, oldest
        first (the online monitor re-feeds these after a reference
        reset, when the tracked structure changes)."""
        return tuple(chunk for _, chunk in self._chunks)

    def restore(
        self,
        entries: Iterable[tuple[Any, Any]],
        *,
        row_offset: int,
        windows_emitted: int,
        rows_sketched: int,
    ) -> None:
        """Adopt a checkpointed ring: ``(sketch, chunk)`` pairs + counters.

        Used by :mod:`repro.resilience.checkpoint` on a *freshly built*
        manager: the ring, the running sum, and the lifetime counters
        are set to the persisted values so the next :meth:`push` behaves
        bit-identically to the manager that wrote the checkpoint. The
        counters are written to the manager's local sink only -- they
        are lifetime monitor state, not work done by this process, so
        the ambient registry is deliberately not forwarded to.
        """
        entries = list(entries)
        current = self.sketcher.empty()
        for sketch, _ in entries:
            current = current + sketch
        self._chunks = deque(entries)
        self._current = current
        self._row_offset = row_offset
        self._metrics.inc(
            "stream.windows.emitted", windows_emitted - self.windows_emitted
        )
        self._metrics.inc(
            "stream.windows.rows_sketched", rows_sketched - self.rows_sketched
        )

    def push(self, chunk: Any) -> Window | None:
        """Consume one chunk; return the completed :class:`Window`, if any.

        The chunk is sketched once (the only scan it will ever get) and
        folded into the running window sum. Under the sliding policy a
        window is emitted on every push once ``window_chunks`` chunks are
        buffered; under the tumbling policy every ``window_chunks``-th
        push emits and the buffer resets.
        """
        chunk = self.sketcher.normalize(chunk)
        sketch = self.sketcher.sketch(chunk)
        n = self.sketcher.chunk_len(chunk)
        self.rows_sketched += n
        self._row_offset += n
        self._chunks.append((sketch, chunk))
        self._current = self._current + sketch

        if self.policy == "sliding" and len(self._chunks) > self.window_chunks:
            leaving, _ = self._chunks.popleft()
            self._current = self._current - leaving
        if len(self._chunks) < self.window_chunks:
            return None
        return self._emit()

    def _emit(self) -> Window:
        """Emit the buffered chunks as a window; tumbling resets after."""
        window = Window(
            index=self.windows_emitted,
            start=self._row_offset - self._current.n_rows,
            stop=self._row_offset,
            sketch=self._current,
            chunks=tuple(chunk for _, chunk in self._chunks),
            sketcher=self.sketcher,
        )
        self.windows_emitted += 1
        if self.policy == "tumbling":
            self._chunks.clear()
            self._current = self.sketcher.empty()
        return window

    def push_many(self, chunks: Iterable[Any]) -> Iterator[Window]:
        """Push a stream of chunks, yielding every completed window."""
        for chunk in chunks:
            window = self.push(chunk)
            if window is not None:
                yield window

    def flush(self) -> Window | None:
        """Emit a final partial window, if rows would otherwise go dark.

        * **tumbling**: the buffered chunks short of a full window are
          emitted as a partial window (and the buffer resets).
        * **sliding**: once any window has been emitted, the ring always
          ends inside the latest emitted window, so there is never an
          unreported tail; but a stream that ended before the very
          first window filled would otherwise report *nothing*, so that
          partial ring is emitted.

        Returns ``None`` when nothing is pending under those rules.
        """
        if not self._chunks:
            return None
        if self.policy == "tumbling" or self.windows_emitted == 0:
            return self._emit()
        return None
