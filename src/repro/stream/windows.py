"""Window maintenance over a chunked transaction stream.

A :class:`WindowManager` consumes fixed-size chunks and maintains the
support counts of a fixed itemset collection per *window* of ``W``
chunks, never rescanning a surviving row:

* each arriving chunk is sketched once
  (:class:`~repro.stream.sketch.SupportSketch`, optionally sharded over
  an executor);
* **sliding** windows keep a ring buffer of the last ``W`` chunk
  sketches; the window sketch advances by ``+ entering - leaving`` --
  two O(itemsets) vector ops per advance, independent of window size;
* **tumbling** windows accumulate ``W`` chunk sketches, emit, and reset.

This is the delta-maintenance discipline the change-detection literature
asks for (compute over what changed, not from scratch), applied to the
paper's measure components: the emitted window sketch *is* the measure
vector of a lits structural component over that window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Sequence

from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.stream.executor import get_executor, sharded_support_sketch
from repro.stream.sketch import SupportSketch, canonical_itemsets

POLICIES = ("sliding", "tumbling")


@dataclass(frozen=True)
class Window:
    """One emitted window: its sketch plus the rows it covers.

    The rows are held as the manager's chunk tuples; flattening them is
    deferred to :attr:`transactions` so the cheap monitoring mode (which
    only reads the sketch) never pays O(window) work per advance.
    """

    index: int  #: ordinal of this window (0-based, per manager)
    start: int  #: row offset of the window's first transaction
    stop: int  #: row offset one past the window's last transaction
    sketch: SupportSketch
    chunks: tuple[tuple[tuple[int, ...], ...], ...]

    def __len__(self) -> int:
        return self.stop - self.start

    @cached_property
    def transactions(self) -> tuple[tuple[int, ...], ...]:
        """The window's rows, oldest first (flattened lazily, once)."""
        return tuple(t for chunk in self.chunks for t in chunk)

    def to_dataset(self) -> TransactionDataset:
        """Materialise the window as an immutable dataset (for e.g. the
        bootstrap, which needs to resample actual rows)."""
        return TransactionDataset(self.transactions, self.sketch.n_items)


class WindowManager:
    """Maintain per-window support sketches over a chunked stream.

    Parameters
    ----------
    itemsets:
        The fixed itemset collection every window is measured over
        (typically a reference model's structural component).
    n_items:
        Item universe size.
    window_chunks:
        Window length in chunks (``W``).
    policy:
        ``"sliding"`` (step of one chunk, overlap ``W - 1``) or
        ``"tumbling"`` (disjoint windows).
    executor, n_shards:
        Forwarded to the sketch step: each chunk is counted as
        ``n_shards`` map-merged shards on the chosen backend.

    Notes
    -----
    ``rows_sketched`` counts the rows actually scanned; after any number
    of advances it equals the total rows pushed -- the no-rescan
    guarantee the streaming bench pins against a rebuild-per-window
    baseline.
    """

    def __init__(
        self,
        itemsets: Iterable[Iterable[int]],
        n_items: int,
        window_chunks: int,
        policy: str = "sliding",
        executor="serial",
        n_shards: int = 1,
    ) -> None:
        if window_chunks < 1:
            raise InvalidParameterError("window_chunks must be >= 1")
        if policy not in POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        self.itemsets = canonical_itemsets(itemsets)
        self.n_items = n_items
        self.window_chunks = window_chunks
        self.policy = policy
        self.executor = get_executor(executor)
        self.n_shards = n_shards
        self.rows_sketched = 0
        self.windows_emitted = 0
        self._row_offset = 0  # row id of the next arriving transaction
        self._chunks: deque[tuple[SupportSketch, tuple[tuple[int, ...], ...]]] = (
            deque()
        )
        self._current = SupportSketch.empty(self.itemsets, n_items)

    @property
    def current_sketch(self) -> SupportSketch:
        """The running sketch over the chunks currently buffered."""
        return self._current

    @property
    def buffered_chunks(self) -> tuple[tuple[tuple[int, ...], ...], ...]:
        """The transaction chunks currently in the ring buffer, oldest
        first (the online monitor re-feeds these after a reference
        reset, when the tracked itemset collection changes)."""
        return tuple(chunk_txns for _, chunk_txns in self._chunks)

    def push(self, chunk: Sequence[Iterable[int]]) -> Window | None:
        """Consume one chunk; return the completed :class:`Window`, if any.

        The chunk is sketched once (the only scan it will ever get) and
        folded into the running window sum. Under the sliding policy a
        window is emitted on every push once ``window_chunks`` chunks are
        buffered; under the tumbling policy every ``window_chunks``-th
        push emits and the buffer resets.
        """
        chunk = [tuple(t) for t in chunk]
        sketch = sharded_support_sketch(
            chunk,
            self.itemsets,
            self.n_items,
            n_shards=self.n_shards,
            executor=self.executor,
        )
        self.rows_sketched += len(chunk)
        self._row_offset += len(chunk)
        self._chunks.append((sketch, tuple(chunk)))
        self._current = self._current + sketch

        if self.policy == "sliding" and len(self._chunks) > self.window_chunks:
            leaving, _ = self._chunks.popleft()
            self._current = self._current - leaving
        if len(self._chunks) < self.window_chunks:
            return None
        return self._emit()

    def _emit(self) -> Window:
        """Emit the buffered chunks as a window; tumbling resets after."""
        window = Window(
            index=self.windows_emitted,
            start=self._row_offset - self._current.n_transactions,
            stop=self._row_offset,
            sketch=self._current,
            chunks=tuple(chunk_txns for _, chunk_txns in self._chunks),
        )
        self.windows_emitted += 1
        if self.policy == "tumbling":
            self._chunks.clear()
            self._current = SupportSketch.empty(self.itemsets, self.n_items)
        return window

    def push_many(
        self, chunks: Iterable[Sequence[Iterable[int]]]
    ) -> Iterator[Window]:
        """Push a stream of chunks, yielding every completed window."""
        for chunk in chunks:
            window = self.push(chunk)
            if window is not None:
                yield window

    def flush(self) -> Window | None:
        """Emit a final partial tumbling window, if one is buffered.

        Sliding managers never hold an unemitted complete window, so
        ``flush`` only applies to the tumbling policy; it returns
        ``None`` when the buffer is empty or the policy is sliding.
        """
        if self.policy != "tumbling" or not self._chunks:
            return None
        return self._emit()
