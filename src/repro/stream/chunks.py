"""Chunked stream sources and the appendable logs (both dataset kinds).

Streaming sources arrive as *chunks* -- batches of rows in time order.
:func:`iter_chunks` slices any transaction iterable into fixed-size
chunks without materialising the whole stream, and
:func:`stream_transaction_chunks` does the same over the flat text
format of :mod:`repro.data.io` (one line per transaction, ``# n_items=``
header) so the CLI can monitor a file far larger than memory-comfortable
in one go. :func:`iter_tabular_chunks` / :func:`stream_tabular_chunks`
are the tabular counterparts: view-backed row slices of a table (or of
a ``.npz`` file), driving the dt-/cluster-model monitoring pipeline.

Two growable logs mirror the immutable datasets. :class:`TransactionLog`
maintains the incremental :class:`~repro.data.transactions.BitmapIndex`
as rows are appended, so support queries -- and therefore Apriori via
:func:`repro.mining.apriori.apriori` -- run over the *live* log without
ever rebuilding the index; a window advance appends the entering rows
in amortized O(entering rows). :class:`TabularLog` grows ``X``/``y``
buffers in place with capacity doubling, so appending a chunk is
amortized O(new rows) too, and the live log quacks like a
:class:`~repro.data.tabular.TabularDataset` -- tree building, grid
clustering, and partition counting all consume it directly (the
assigner memo re-scans it only when it has grown).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro._typing import DatasetLike
from repro.core.attribute import AttributeSpace
from repro.core.predicate import Conjunction
from repro.data.tabular import TabularDataset
from repro.data.transactions import BitmapIndex, TransactionDataset
from repro.errors import InvalidParameterError, SchemaError


def iter_chunks(
    transactions: Iterable[Iterable[int]], chunk_size: int
) -> Iterator[list[tuple[int, ...]]]:
    """Yield consecutive chunks of ``chunk_size`` transactions.

    The final chunk may be shorter. Rows pass through as plain tuples;
    canonicalisation (sort/dedup) is left to the consumer that needs it
    -- the bitmap scatter is an OR and does not.
    """
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    chunk: list[tuple[int, ...]] = []
    # reprolint: disable=RL004(ingestion boundary: slicing a generic iterable is intrinsically row-wise)
    for t in transactions:
        chunk.append(tuple(t))
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def stream_transaction_chunks(
    path: str | Path, chunk_size: int
) -> tuple[int, Iterator[list[tuple[int, ...]]]]:
    """Open a transactions file as ``(n_items, chunk iterator)``.

    The file uses the :func:`repro.data.io.save_transactions` format;
    only ``chunk_size`` transactions are ever held at once.
    """
    path = Path(path)
    n_items: int | None = None
    with path.open() as f:
        for line in f:
            line = line.strip()
            if line.startswith("#") and "n_items=" in line:
                n_items = int(line.split("n_items=")[1])
                break
            if line and not line.startswith("#"):
                break
    if n_items is None:
        raise InvalidParameterError(f"{path} lacks the '# n_items=' header")

    def lines() -> Iterator[tuple[int, ...]]:
        with path.open() as f:
            for line in f:
                line = line.strip()
                if line.startswith("#"):
                    continue
                yield tuple(int(tok) for tok in line.split()) if line else ()

    return n_items, iter_chunks(lines(), chunk_size)


def iter_tabular_chunks(
    dataset: DatasetLike, chunk_size: int
) -> Iterator[TabularDataset]:
    """Yield consecutive ``chunk_size``-row slices of a tabular dataset.

    Slices are view-backed (:meth:`TabularDataset.slice_rows`), so
    chunking never copies the table. The final chunk may be shorter.
    """
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    for start in range(0, len(dataset), chunk_size):
        yield dataset.slice_rows(start, min(start + chunk_size, len(dataset)))


def stream_tabular_chunks(
    path: str | Path, chunk_size: int
) -> tuple[AttributeSpace, Iterator[TabularDataset]]:
    """Open a tabular ``.npz`` file as ``(space, chunk iterator)``.

    The file uses the :func:`repro.data.io.save_tabular` format. The
    matrix is loaded once (``.npz`` is not line-streamable) but handed
    downstream as view-backed chunks, so the monitoring pipeline stays
    incremental -- every chunk is scanned exactly once.
    """
    from repro.data.io import load_tabular

    dataset = load_tabular(path)
    return dataset.space, iter_tabular_chunks(dataset, chunk_size)


class TransactionLog:
    """An appendable transaction store with a live incremental index.

    Unlike :class:`TransactionDataset` (immutable; index built once from
    the full data), a log grows: :meth:`append` adds a chunk of rows and
    extends the bitmap index in place via
    :meth:`BitmapIndex.append` -- amortized O(new rows), never a rebuild.
    The log quacks like a dataset (``len``, ``.index``, ``.n_items``,
    ``.take``), so the miners and the deviation engine consume it
    directly: ``apriori(log, ms)`` after every append re-mines over all
    rows seen so far without re-scattering a single old bit.
    """

    def __init__(
        self,
        n_items: int,
        transactions: Iterable[Iterable[int]] = (),
    ) -> None:
        if n_items <= 0:
            raise InvalidParameterError("n_items must be positive")
        self.n_items = n_items
        self._transactions: list[tuple[int, ...]] = []
        self._index = BitmapIndex([], n_items)
        if transactions:
            self.append(transactions)

    def append(self, transactions: Iterable[Iterable[int]]) -> "TransactionLog":
        """Append a chunk of transactions; returns ``self`` for chaining."""
        cleaned: list[tuple[int, ...]] = []
        # reprolint: disable=RL004(ingestion boundary: canonicalising ragged incoming rows is intrinsically row-wise)
        for t in transactions:
            items = tuple(sorted({int(i) for i in t}))
            if items and (items[0] < 0 or items[-1] >= self.n_items):
                raise InvalidParameterError(
                    f"transaction {items} has items outside [0, {self.n_items})"
                )
            cleaned.append(items)
        self._index.append(cleaned)
        self._transactions.extend(cleaned)
        return self

    # ------------------------------------------------------------------ #
    # Dataset protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._transactions)

    @property
    def transactions(self) -> list[tuple[int, ...]]:
        return self._transactions

    @property
    def index(self) -> BitmapIndex:
        """The live incremental index (kept current by :meth:`append`)."""
        return self._index

    def support_count(self, items: Iterable[int]) -> int:
        return self._index.support_count(items)

    def take(self, indices: np.ndarray | Sequence[int]) -> TransactionDataset:
        """An immutable snapshot of the rows at ``indices``."""
        txns = [self._transactions[int(i)] for i in np.asarray(indices)]
        return TransactionDataset(txns, self.n_items)

    def to_dataset(self) -> TransactionDataset:
        """An immutable snapshot of the whole log."""
        return TransactionDataset(self._transactions, self.n_items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TransactionLog(n={len(self)}, items={self.n_items})"


class TabularLog:
    """An appendable tabular store with grow-in-place ``X``/``y`` buffers.

    The tabular counterpart of :class:`TransactionLog`: rows append in
    amortized O(new rows) (capacity-doubling buffers, like
    ``BitmapIndex.append`` grows its stripes), and the live log exposes
    the :class:`~repro.data.tabular.TabularDataset` row interface --
    ``space``, ``X``, ``y``, ``columns``, ``predicate_mask`` -- so model
    builders and the partition counting plan consume it directly,
    re-inducing over *all* rows seen so far after every append without a
    single old row being copied.

    ``X``/``y``/column reads are views into the live buffers: valid
    until the next append that grows past capacity (take
    :meth:`to_dataset` for a stable snapshot).

    Parameters
    ----------
    space:
        The attribute space of every appended chunk. When it declares
        class labels, appended chunks must be labelled (and vice versa).
    capacity:
        Initial row capacity of the buffers.
    """

    def __init__(self, space: AttributeSpace, capacity: int = 1024) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be >= 1")
        self.space = space
        self._n = 0
        self._X = np.empty((capacity, space.n_attributes), dtype=np.float64)
        self._y = (
            np.empty(capacity, dtype=np.int64) if space.class_labels else None
        )
        self._columns_cache: tuple[int, dict[str, np.ndarray]] | None = None

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        capacity = self._X.shape[0]
        if need <= capacity:
            return
        new_capacity = max(need, 2 * capacity)
        X = np.empty((new_capacity, self.space.n_attributes), dtype=np.float64)
        X[: self._n] = self._X[: self._n]
        self._X = X
        if self._y is not None:
            y = np.empty(new_capacity, dtype=np.int64)
            y[: self._n] = self._y[: self._n]
            self._y = y

    def append(
        self, rows: DatasetLike, y: np.ndarray | None = None
    ) -> "TabularLog":
        """Append a chunk of rows; returns ``self`` for chaining.

        ``rows`` is either a :class:`TabularDataset`-like chunk (its
        labels ride along; ``y`` must then be omitted) or a raw
        ``(m, d)`` array with ``y`` given separately when the space is
        labelled.
        """
        if hasattr(rows, "X") and hasattr(rows, "space"):
            if y is not None:
                raise InvalidParameterError(
                    "pass labels either inside the dataset chunk or as y, "
                    "not both"
                )
            if not self.space.compatible_with(rows.space):
                raise SchemaError(
                    "cannot append a chunk over a different attribute space"
                )
            X, y = rows.X, rows.y
        else:
            X = np.asarray(rows, dtype=np.float64)
            if X.ndim != 2 or X.shape[1] != self.space.n_attributes:
                raise SchemaError(
                    f"rows must be (m, {self.space.n_attributes}), got "
                    f"shape {X.shape}"
                )
        if self._y is not None and y is None:
            raise SchemaError("space declares class labels but y is missing")
        if self._y is None and y is not None:
            raise SchemaError("y given but space declares no class labels")
        m = X.shape[0]
        if y is not None and np.shape(y) != (m,):
            raise SchemaError(f"y has shape {np.shape(y)}, expected ({m},)")
        self._ensure_capacity(m)
        self._X[self._n : self._n + m] = X
        if self._y is not None:
            self._y[self._n : self._n + m] = np.asarray(y, dtype=np.int64)
        self._n += m
        return self

    # ------------------------------------------------------------------ #
    # Dataset protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def X(self) -> np.ndarray:
        """View of the appended rows (live; do not mutate)."""
        return self._X[: self._n]

    @property
    def y(self) -> np.ndarray | None:
        """View of the appended labels, or ``None`` for unlabelled spaces."""
        return None if self._y is None else self._y[: self._n]

    @property
    def columns(self) -> Mapping[str, np.ndarray]:
        """Per-attribute column views over the rows appended so far.

        Cached until the next append (any append changes ``len`` and
        may reallocate the buffers, so the row count is the cache key).
        """
        cache = self._columns_cache
        if cache is None or cache[0] != self._n:
            X = self.X
            cache = (
                self._n,
                {name: X[:, i] for i, name in enumerate(self.space.names)},
            )
            self._columns_cache = cache
        return cache[1]

    def column(self, name: str) -> np.ndarray:
        columns = self.columns
        if name not in columns:
            raise SchemaError(f"unknown attribute {name!r}")
        return columns[name]

    def predicate_mask(self, predicate: Conjunction) -> np.ndarray:
        """Boolean membership mask of a conjunctive predicate."""
        return predicate.mask(self.columns, self._n)

    def slice_rows(self, start: int, stop: int) -> TabularDataset:
        """The contiguous row range ``[start, stop)`` as a dataset (views)."""
        stop = min(stop, self._n)
        y = self._y[start:stop] if self._y is not None else None
        return TabularDataset(self.space, self._X[start:stop], y)

    def take(self, indices: np.ndarray | Sequence[int]) -> TabularDataset:
        """An immutable snapshot of the rows at ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        y = self._y[: self._n][indices] if self._y is not None else None
        return TabularDataset(self.space, self._X[: self._n][indices], y)

    def to_dataset(self) -> TabularDataset:
        """An immutable snapshot of the whole log (copies the buffers)."""
        y = None if self._y is None else self._y[: self._n].copy()
        return TabularDataset(self.space, self._X[: self._n].copy(), y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labelled = "labelled" if self._y is not None else "unlabelled"
        return (
            f"TabularLog(n={self._n}, d={self.space.n_attributes}, "
            f"{labelled})"
        )
