"""Chunked transaction streams and the appendable ``TransactionLog``.

Streaming sources arrive as *chunks* -- batches of transactions in time
order. :func:`iter_chunks` slices any transaction iterable into
fixed-size chunks without materialising the whole stream, and
:func:`stream_transaction_chunks` does the same over the flat text
format of :mod:`repro.data.io` (one line per transaction, ``# n_items=``
header) so the CLI can monitor a file far larger than memory-comfortable
in one go.

:class:`TransactionLog` is the growable counterpart of the immutable
:class:`~repro.data.transactions.TransactionDataset`: it maintains the
incremental :class:`~repro.data.transactions.BitmapIndex` as rows are
appended, so support queries -- and therefore Apriori via
:func:`repro.mining.apriori.apriori` -- run over the *live* log without
ever rebuilding the index. A window advance appends the entering rows
in amortized O(entering rows).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.transactions import BitmapIndex, TransactionDataset
from repro.errors import InvalidParameterError


def iter_chunks(
    transactions: Iterable[Iterable[int]], chunk_size: int
) -> Iterator[list[tuple[int, ...]]]:
    """Yield consecutive chunks of ``chunk_size`` transactions.

    The final chunk may be shorter. Rows pass through as plain tuples;
    canonicalisation (sort/dedup) is left to the consumer that needs it
    -- the bitmap scatter is an OR and does not.
    """
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    chunk: list[tuple[int, ...]] = []
    for t in transactions:
        chunk.append(tuple(t))
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def stream_transaction_chunks(
    path: str | Path, chunk_size: int
) -> tuple[int, Iterator[list[tuple[int, ...]]]]:
    """Open a transactions file as ``(n_items, chunk iterator)``.

    The file uses the :func:`repro.data.io.save_transactions` format;
    only ``chunk_size`` transactions are ever held at once.
    """
    path = Path(path)
    n_items: int | None = None
    with path.open() as f:
        for line in f:
            line = line.strip()
            if line.startswith("#") and "n_items=" in line:
                n_items = int(line.split("n_items=")[1])
                break
            if line and not line.startswith("#"):
                break
    if n_items is None:
        raise InvalidParameterError(f"{path} lacks the '# n_items=' header")

    def lines() -> Iterator[tuple[int, ...]]:
        with path.open() as f:
            for line in f:
                line = line.strip()
                if line.startswith("#"):
                    continue
                yield tuple(int(tok) for tok in line.split()) if line else ()

    return n_items, iter_chunks(lines(), chunk_size)


class TransactionLog:
    """An appendable transaction store with a live incremental index.

    Unlike :class:`TransactionDataset` (immutable; index built once from
    the full data), a log grows: :meth:`append` adds a chunk of rows and
    extends the bitmap index in place via
    :meth:`BitmapIndex.append` -- amortized O(new rows), never a rebuild.
    The log quacks like a dataset (``len``, ``.index``, ``.n_items``,
    ``.take``), so the miners and the deviation engine consume it
    directly: ``apriori(log, ms)`` after every append re-mines over all
    rows seen so far without re-scattering a single old bit.
    """

    def __init__(
        self,
        n_items: int,
        transactions: Iterable[Iterable[int]] = (),
    ) -> None:
        if n_items <= 0:
            raise InvalidParameterError("n_items must be positive")
        self.n_items = n_items
        self._transactions: list[tuple[int, ...]] = []
        self._index = BitmapIndex([], n_items)
        if transactions:
            self.append(transactions)

    def append(self, transactions: Iterable[Iterable[int]]) -> "TransactionLog":
        """Append a chunk of transactions; returns ``self`` for chaining."""
        cleaned: list[tuple[int, ...]] = []
        for t in transactions:
            items = tuple(sorted({int(i) for i in t}))
            if items and (items[0] < 0 or items[-1] >= self.n_items):
                raise InvalidParameterError(
                    f"transaction {items} has items outside [0, {self.n_items})"
                )
            cleaned.append(items)
        self._index.append(cleaned)
        self._transactions.extend(cleaned)
        return self

    # ------------------------------------------------------------------ #
    # Dataset protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self):
        return iter(self._transactions)

    @property
    def transactions(self) -> list[tuple[int, ...]]:
        return self._transactions

    @property
    def index(self) -> BitmapIndex:
        """The live incremental index (kept current by :meth:`append`)."""
        return self._index

    def support_count(self, items: Iterable[int]) -> int:
        return self._index.support_count(items)

    def take(self, indices: np.ndarray | Sequence[int]) -> TransactionDataset:
        """An immutable snapshot of the rows at ``indices``."""
        txns = [self._transactions[int(i)] for i in np.asarray(indices)]
        return TransactionDataset(txns, self.n_items)

    def to_dataset(self) -> TransactionDataset:
        """An immutable snapshot of the whole log."""
        return TransactionDataset(self._transactions, self.n_items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TransactionLog(n={len(self)}, items={self.n_items})"
