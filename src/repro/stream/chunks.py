"""Chunked stream sources and the appendable logs (both dataset kinds).

Streaming sources arrive as *chunks* -- batches of rows in time order.
:func:`iter_chunks` slices any transaction iterable into fixed-size
chunks without materialising the whole stream, and
:func:`stream_transaction_chunks` does the same over the flat text
format of :mod:`repro.data.io` (one line per transaction, ``# n_items=``
header) so the CLI can monitor a file far larger than memory-comfortable
in one go. :func:`iter_tabular_chunks` / :func:`stream_tabular_chunks`
are the tabular counterparts: view-backed row slices of a table (or of
a ``.npz`` file), driving the dt-/cluster-model monitoring pipeline.

Two growable logs mirror the immutable datasets. :class:`TransactionLog`
maintains the incremental :class:`~repro.data.transactions.BitmapIndex`
as rows are appended, so support queries -- and therefore Apriori via
:func:`repro.mining.apriori.apriori` -- run over the *live* log without
ever rebuilding the index; a window advance appends the entering rows
in amortized O(entering rows). :class:`TabularLog` grows ``X``/``y``
buffers in place with capacity doubling, so appending a chunk is
amortized O(new rows) too, and the live log quacks like a
:class:`~repro.data.tabular.TabularDataset` -- tree building, grid
clustering, and partition counting all consume it directly (the
assigner memo re-scans it only when it has grown).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro._typing import DatasetLike
from repro.core.attribute import AttributeSpace
from repro.core.predicate import Conjunction
from repro.data.storage import StripeHandle, StripeStore, make_store
from repro.data.tabular import TabularDataset
from repro.data.transactions import BitmapIndex, TransactionDataset
from repro.errors import InvalidParameterError, SchemaError

#: Stripe names of a transaction log's out-of-core row storage: CSR-style
#: ragged rows -- ``txn_offsets[i]`` is where row ``i``'s items start in
#: ``txn_items`` and ``txn_offsets[n]`` is the total item count.
_TXN_OFFSETS = "txn_offsets"
_TXN_ITEMS = "txn_items"


def iter_chunks(
    transactions: Iterable[Iterable[int]], chunk_size: int
) -> Iterator[list[tuple[int, ...]]]:
    """Yield consecutive chunks of ``chunk_size`` transactions.

    The final chunk may be shorter. Rows pass through as plain tuples;
    canonicalisation (sort/dedup) is left to the consumer that needs it
    -- the bitmap scatter is an OR and does not.
    """
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    chunk: list[tuple[int, ...]] = []
    # reprolint: disable=RL004(ingestion boundary: slicing a generic iterable is intrinsically row-wise)
    for t in transactions:
        chunk.append(tuple(t))
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def stream_transaction_chunks(
    path: str | Path, chunk_size: int
) -> tuple[int, Iterator[list[tuple[int, ...]]]]:
    """Open a transactions file as ``(n_items, chunk iterator)``.

    The file uses the :func:`repro.data.io.save_transactions` format;
    only ``chunk_size`` transactions are ever held at once.
    """
    path = Path(path)
    n_items: int | None = None
    with path.open() as f:
        for line in f:
            line = line.strip()
            if line.startswith("#") and "n_items=" in line:
                n_items = int(line.split("n_items=")[1])
                break
            if line and not line.startswith("#"):
                break
    if n_items is None:
        raise InvalidParameterError(f"{path} lacks the '# n_items=' header")

    def lines() -> Iterator[tuple[int, ...]]:
        with path.open() as f:
            for line in f:
                line = line.strip()
                if line.startswith("#"):
                    continue
                yield tuple(int(tok) for tok in line.split()) if line else ()

    return n_items, iter_chunks(lines(), chunk_size)


def iter_tabular_chunks(
    dataset: DatasetLike, chunk_size: int
) -> Iterator[TabularDataset]:
    """Yield consecutive ``chunk_size``-row slices of a tabular dataset.

    Slices are view-backed (:meth:`TabularDataset.slice_rows`), so
    chunking never copies the table. The final chunk may be shorter.
    """
    if chunk_size < 1:
        raise InvalidParameterError("chunk_size must be >= 1")
    for start in range(0, len(dataset), chunk_size):
        yield dataset.slice_rows(start, min(start + chunk_size, len(dataset)))


def stream_tabular_chunks(
    path: str | Path, chunk_size: int
) -> tuple[AttributeSpace, Iterator[TabularDataset]]:
    """Open a tabular ``.npz`` file as ``(space, chunk iterator)``.

    The file uses the :func:`repro.data.io.save_tabular` format. The
    matrix is loaded once (``.npz`` is not line-streamable) but handed
    downstream as view-backed chunks, so the monitoring pipeline stays
    incremental -- every chunk is scanned exactly once.
    """
    from repro.data.io import load_tabular

    dataset = load_tabular(path)
    return dataset.space, iter_tabular_chunks(dataset, chunk_size)


class TransactionLog:
    """An appendable transaction store with a live incremental index.

    Unlike :class:`TransactionDataset` (immutable; index built once from
    the full data), a log grows: :meth:`append` adds a chunk of rows and
    extends the bitmap index in place via
    :meth:`BitmapIndex.append` -- amortized O(new rows), never a rebuild.
    The log quacks like a dataset (``len``, ``.index``, ``.n_items``,
    ``.take``), so the miners and the deviation engine consume it
    directly: ``apriori(log, ms)`` after every append re-mines over all
    rows seen so far without re-scattering a single old bit.

    Storage backends: ``backend="ram"`` (default) keeps the rows as a
    Python list next to the in-RAM index -- the historical behaviour.
    ``backend="mmap"`` (with a ``stripe_dir``) puts everything on disk:
    the item bit-stripes through the index's store and the raw rows as
    CSR-style offset/item column stripes, appends committing both
    atomically -- so the log survives a process kill truncated to the
    last committed chunk (:meth:`open`) and a process fan ships the
    index as a zero-copy :meth:`handle` instead of pickled rows. Counts
    and mined models are bit-identical across backends (the
    backend-parametrized property suite pins it).
    """

    def __init__(
        self,
        n_items: int,
        transactions: Iterable[Iterable[int]] = (),
        *,
        backend: str = "ram",
        stripe_dir: str | Path | None = None,
        _store: StripeStore | None = None,
    ) -> None:
        if n_items <= 0:
            raise InvalidParameterError("n_items must be positive")
        self.n_items = n_items
        self._store: StripeStore | None
        self._rows: list[tuple[int, ...]] | None
        if _store is not None:
            # Reopen path (:meth:`open`): adopt the committed store.
            self._store = _store
            self._rows = None
            self._index = BitmapIndex.from_store(_store)
            if transactions:
                self.append(transactions)
            return
        if backend == "ram" and stripe_dir is not None:
            raise InvalidParameterError(
                "stripe_dir only applies to the mmap backend"
            )
        if backend == "ram":
            self._store = None
            self._rows = []
            self._index = BitmapIndex([], n_items)
        else:
            store = make_store(backend, stripe_dir)
            self._store = store
            self._rows = None
            store.create(_TXN_OFFSETS, (1,), np.int64)
            store.create(_TXN_ITEMS, (0,), np.int32)
            store.meta["items_total"] = 0
            self._index = BitmapIndex([], n_items, store=store)
        if transactions:
            self.append(transactions)

    @classmethod
    def open(cls, stripe_dir: str | Path) -> "TransactionLog":
        """Reopen an mmap-backed log, truncated to its last commit.

        A kill mid-append leaves stripe bytes past the committed counts;
        adoption masks the index tail and the committed ``items_total``
        bounds the row stripes, so the reopened log equals one rebuilt
        from the committed rows (crash-consistency tests pin this).
        """
        from repro.data.storage import open_store

        store = open_store(stripe_dir)
        return cls(int(store.meta["n_items"]), _store=store)

    def handle(self) -> StripeHandle | None:
        """A shippable zero-copy reference (``None`` on the RAM backend)."""
        return self._index.handle()

    def append(self, transactions: Iterable[Iterable[int]]) -> "TransactionLog":
        """Append a chunk of transactions; returns ``self`` for chaining."""
        cleaned: list[tuple[int, ...]] = []
        # reprolint: disable=RL004(ingestion boundary: canonicalising ragged incoming rows is intrinsically row-wise)
        for t in transactions:
            items = tuple(sorted({int(i) for i in t}))
            if items and (items[0] < 0 or items[-1] >= self.n_items):
                raise InvalidParameterError(
                    f"transaction {items} has items outside [0, {self.n_items})"
                )
            cleaned.append(items)
        if self._rows is None:
            # Row stripes first, then the index append -- whose commit
            # publishes both, so every commit point is a consistent log.
            self._append_row_stripes(cleaned)
        self._index.append(cleaned)
        if self._rows is not None:
            self._rows.extend(cleaned)
        return self

    def _append_row_stripes(self, cleaned: list[tuple[int, ...]]) -> None:
        store = self._store
        assert store is not None
        n_old = self._index.n_transactions
        total_old = int(store.meta["items_total"])
        lengths = np.fromiter(
            (len(t) for t in cleaned), dtype=np.int64, count=len(cleaned)
        )
        flat = np.fromiter(
            (i for t in cleaned for i in t), dtype=np.int32,
            count=int(lengths.sum()),
        )
        offsets = store.stripe(_TXN_OFFSETS)
        need = n_old + len(cleaned) + 1
        if need > offsets.shape[0]:
            offsets = store.resize(_TXN_OFFSETS, (max(need, 2 * offsets.shape[0]),))
        items = store.stripe(_TXN_ITEMS)
        need_items = total_old + flat.shape[0]
        if need_items > items.shape[0]:
            items = store.resize(
                _TXN_ITEMS, (max(need_items, 2 * items.shape[0], 8),)
            )
        np.cumsum(lengths, out=lengths)
        offsets[n_old + 1 : need] = total_old + lengths
        items[total_old:need_items] = flat
        store.meta["items_total"] = need_items

    def _decode_rows(
        self, indices: Iterable[int] | None = None
    ) -> list[tuple[int, ...]]:
        """Materialise rows from the CSR stripes (documented O(rows))."""
        store = self._store
        assert store is not None
        n = self._index.n_transactions
        offsets = store.stripe(_TXN_OFFSETS)
        items = store.stripe(_TXN_ITEMS)
        which = range(n) if indices is None else indices
        # reprolint: disable=RL004(materialisation boundary: decoding ragged rows out of column stripes is intrinsically row-wise)
        return [
            tuple(
                int(v)
                for v in items[int(offsets[int(i)]) : int(offsets[int(i) + 1])]
            )
            for i in which
        ]

    # ------------------------------------------------------------------ #
    # Dataset protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._index.n_transactions

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        if self._rows is not None:
            return iter(self._rows)
        return iter(self._decode_rows())

    @property
    def transactions(self) -> list[tuple[int, ...]]:
        """The rows as tuples (mmap backend: materialises, O(rows))."""
        if self._rows is not None:
            return self._rows
        return self._decode_rows()

    @property
    def index(self) -> BitmapIndex:
        """The live incremental index (kept current by :meth:`append`)."""
        return self._index

    def support_count(self, items: Iterable[int]) -> int:
        return self._index.support_count(items)

    def take(self, indices: np.ndarray | Sequence[int]) -> TransactionDataset:
        """An immutable snapshot of the rows at ``indices``."""
        if self._rows is not None:
            txns = [self._rows[int(i)] for i in np.asarray(indices)]
        else:
            txns = self._decode_rows(int(i) for i in np.asarray(indices))
        return TransactionDataset(txns, self.n_items)

    def to_dataset(self, *, share_index: bool = False) -> TransactionDataset:
        """An immutable snapshot of the whole log.

        With ``share_index=True`` the snapshot adopts the log's live
        index instead of lazily rebuilding its own -- on the mmap
        backend that keeps every downstream count (deviation, bootstrap
        compilation, process fan-out) on the on-disk stripes with
        zero-copy shipping. Only safe while the log is not appended to
        afterwards; a later ``append`` would mutate the snapshot's
        counts.
        """
        dataset = TransactionDataset(self.transactions, self.n_items)
        if share_index:
            dataset._index = self._index
        return dataset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TransactionLog(n={len(self)}, items={self.n_items})"


class TabularLog:
    """An appendable tabular store with grow-in-place ``X``/``y`` buffers.

    The tabular counterpart of :class:`TransactionLog`: rows append in
    amortized O(new rows) (capacity-doubling buffers, like
    ``BitmapIndex.append`` grows its stripes), and the live log exposes
    the :class:`~repro.data.tabular.TabularDataset` row interface --
    ``space``, ``X``, ``y``, ``columns``, ``predicate_mask`` -- so model
    builders and the partition counting plan consume it directly,
    re-inducing over *all* rows seen so far after every append without a
    single old row being copied.

    ``X``/``y``/column reads are views into the live buffers: valid
    until the next append that grows past capacity (take
    :meth:`to_dataset` for a stable snapshot).

    Storage backends mirror :class:`TransactionLog`: ``backend="ram"``
    (default) grows plain numpy buffers; ``backend="mmap"`` (with a
    ``stripe_dir``) grows on-disk column stripes in place -- a C-order
    leading-axis extend is a file append, so capacity doubling never
    copies a committed row -- and every append commits the new row
    count, making the log reopenable (:meth:`open`) after a kill.

    Parameters
    ----------
    space:
        The attribute space of every appended chunk. When it declares
        class labels, appended chunks must be labelled (and vice versa).
    capacity:
        Initial row capacity of the buffers.
    """

    def __init__(
        self,
        space: AttributeSpace,
        capacity: int = 1024,
        *,
        backend: str = "ram",
        stripe_dir: str | Path | None = None,
        _store: StripeStore | None = None,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be >= 1")
        self.space = space
        self._columns_cache: tuple[int, dict[str, np.ndarray]] | None = None
        self._y: np.ndarray | None
        if _store is not None:
            # Reopen path (:meth:`open`): adopt the committed store.
            self._store: StripeStore | None = _store
            self._n = int(_store.meta["n_rows"])
            self._X = _store.stripe("X")
            self._y = (
                _store.stripe("y") if space.class_labels else None
            )
            return
        if backend == "ram" and stripe_dir is not None:
            raise InvalidParameterError(
                "stripe_dir only applies to the mmap backend"
            )
        self._n = 0
        if backend == "ram":
            self._store = None
            self._X = np.empty(
                (capacity, space.n_attributes), dtype=np.float64
            )
            self._y = (
                np.empty(capacity, dtype=np.int64)
                if space.class_labels
                else None
            )
        else:
            store = make_store(backend, stripe_dir)
            self._store = store
            self._X = store.create(
                "X", (capacity, space.n_attributes), np.float64
            )
            self._y = (
                store.create("y", (capacity,), np.int64)
                if space.class_labels
                else None
            )
            store.meta["n_rows"] = 0
            store.meta["n_attributes"] = space.n_attributes
            store.meta["labelled"] = int(bool(space.class_labels))
            store.commit()

    @classmethod
    def open(cls, stripe_dir: str | Path, space: AttributeSpace) -> "TabularLog":
        """Reopen an mmap-backed log, truncated to its last commit.

        The attribute space is not serialised with the stripes, so the
        caller supplies it; its shape is validated against the committed
        meta. Rows beyond the committed count (a killed mid-append) sit
        past ``len(log)`` and are overwritten by the next append.
        """
        from repro.data.storage import open_store

        store = open_store(stripe_dir)
        if int(store.meta["n_attributes"]) != space.n_attributes or int(
            store.meta["labelled"]
        ) != int(bool(space.class_labels)):
            raise SchemaError(
                "attribute space does not match the stored stripes "
                f"(d={store.meta['n_attributes']}, "
                f"labelled={bool(store.meta['labelled'])})"
            )
        return cls(space, _store=store)

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        capacity = self._X.shape[0]
        if need <= capacity:
            return
        new_capacity = max(need, 2 * capacity)
        if self._store is not None:
            self._X = self._store.resize(
                "X", (new_capacity, self.space.n_attributes)
            )
            if self._y is not None:
                self._y = self._store.resize("y", (new_capacity,))
            return
        X = np.empty((new_capacity, self.space.n_attributes), dtype=np.float64)
        X[: self._n] = self._X[: self._n]
        self._X = X
        if self._y is not None:
            y = np.empty(new_capacity, dtype=np.int64)
            y[: self._n] = self._y[: self._n]
            self._y = y

    def append(
        self, rows: DatasetLike, y: np.ndarray | None = None
    ) -> "TabularLog":
        """Append a chunk of rows; returns ``self`` for chaining.

        ``rows`` is either a :class:`TabularDataset`-like chunk (its
        labels ride along; ``y`` must then be omitted) or a raw
        ``(m, d)`` array with ``y`` given separately when the space is
        labelled.
        """
        if hasattr(rows, "X") and hasattr(rows, "space"):
            if y is not None:
                raise InvalidParameterError(
                    "pass labels either inside the dataset chunk or as y, "
                    "not both"
                )
            if not self.space.compatible_with(rows.space):
                raise SchemaError(
                    "cannot append a chunk over a different attribute space"
                )
            X, y = rows.X, rows.y
        else:
            X = np.asarray(rows, dtype=np.float64)
            if X.ndim != 2 or X.shape[1] != self.space.n_attributes:
                raise SchemaError(
                    f"rows must be (m, {self.space.n_attributes}), got "
                    f"shape {X.shape}"
                )
        if self._y is not None and y is None:
            raise SchemaError("space declares class labels but y is missing")
        if self._y is None and y is not None:
            raise SchemaError("y given but space declares no class labels")
        m = X.shape[0]
        if y is not None and np.shape(y) != (m,):
            raise SchemaError(f"y has shape {np.shape(y)}, expected ({m},)")
        self._ensure_capacity(m)
        self._X[self._n : self._n + m] = X
        if self._y is not None:
            self._y[self._n : self._n + m] = np.asarray(y, dtype=np.int64)
        self._n += m
        if self._store is not None:
            # Rows first, row count last: every commit point is a
            # consistent log (the crash-consistency contract).
            self._store.meta["n_rows"] = self._n
            self._store.commit()
        return self

    # ------------------------------------------------------------------ #
    # Dataset protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    @property
    def n_rows(self) -> int:
        return self._n

    @property
    def X(self) -> np.ndarray:
        """View of the appended rows (live; do not mutate)."""
        return self._X[: self._n]

    @property
    def y(self) -> np.ndarray | None:
        """View of the appended labels, or ``None`` for unlabelled spaces."""
        return None if self._y is None else self._y[: self._n]

    @property
    def columns(self) -> Mapping[str, np.ndarray]:
        """Per-attribute column views over the rows appended so far.

        Cached until the next append (any append changes ``len`` and
        may reallocate the buffers, so the row count is the cache key).
        """
        cache = self._columns_cache
        if cache is None or cache[0] != self._n:
            X = self.X
            cache = (
                self._n,
                {name: X[:, i] for i, name in enumerate(self.space.names)},
            )
            self._columns_cache = cache
        return cache[1]

    def column(self, name: str) -> np.ndarray:
        columns = self.columns
        if name not in columns:
            raise SchemaError(f"unknown attribute {name!r}")
        return columns[name]

    def predicate_mask(self, predicate: Conjunction) -> np.ndarray:
        """Boolean membership mask of a conjunctive predicate."""
        return predicate.mask(self.columns, self._n)

    def slice_rows(self, start: int, stop: int) -> TabularDataset:
        """The contiguous row range ``[start, stop)`` as a dataset (views)."""
        stop = min(stop, self._n)
        y = self._y[start:stop] if self._y is not None else None
        return TabularDataset(self.space, self._X[start:stop], y)

    def take(self, indices: np.ndarray | Sequence[int]) -> TabularDataset:
        """An immutable snapshot of the rows at ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        y = self._y[: self._n][indices] if self._y is not None else None
        return TabularDataset(self.space, self._X[: self._n][indices], y)

    def to_dataset(self) -> TabularDataset:
        """An immutable snapshot of the whole log (copies the buffers)."""
        y = None if self._y is None else self._y[: self._n].copy()
        return TabularDataset(self.space, self._X[: self._n].copy(), y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labelled = "labelled" if self._y is not None else "unlabelled"
        return (
            f"TabularLog(n={self._n}, d={self.space.n_attributes}, "
            f"{labelled})"
        )
