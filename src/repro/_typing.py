"""Shared type aliases for the measurement engine's duck-typed surfaces.

The engine deliberately accepts *interfaces*, not classes: anything with
the transaction-dataset row surface (``index``, ``support_count``,
``take``) or the tabular one (``X``, ``y``, ``space``, ``columns``,
``predicate_mask``) flows through deviation, bootstrap, streaming, and
fleet code -- immutable datasets and the appendable logs alike. Pinning
those parameters to a concrete union would wrongly reject the logs (and
every future dataset-like), so until the interfaces are formalised as
Protocols these aliases are explicit ``Any`` with the contract in the
name. They exist so call sites document *which* duck type they mean and
so the eventual ratchet to ``Protocol`` classes is a one-file change.

``mypy --strict`` intentionally permits explicit ``Any``; these aliases
are the typed boundary around the parts of the interface that are still
structural.
"""

from __future__ import annotations

from typing import Any, Callable, TypeAlias

import numpy as np

#: Anything with a dataset row surface: :class:`~repro.data.transactions.
#: TransactionDataset`, :class:`~repro.data.tabular.TabularDataset`, the
#: appendable stream logs, or any object quacking like one of them.
DatasetLike: TypeAlias = Any

#: A fitted model produced by a model builder (LITS / decision-tree /
#: clustering); exposes ``structure`` and the counting interface.
ModelLike: TypeAlias = Any

#: A partition structure or its precompiled counting plan (see
#: :func:`repro.stream.sketch.as_partition_plan`).
StructureOrPlan: TypeAlias = Any

#: An executor backend: a name (``"serial"`` / ``"thread"`` /
#: ``"process"``) or an executor instance from
#: :func:`repro.stream.executor.get_executor`. A *name* means the callee
#: owns (and must release) the resolved runner; an *instance* stays the
#: caller's to close.
ExecutorLike: TypeAlias = Any

#: ``dataset -> model``; re-invoked inside bootstrap loops.
ModelBuilder: TypeAlias = Callable[..., Any]

#: A partition structure's row -> cell index pass.
AssignerFn: TypeAlias = Callable[[DatasetLike], np.ndarray]
