"""Command-line interface for the FOCUS reproduction.

Subcommands::

    generate-basket   --out txns.txt   [--n 10000 --items 500 ...]
    generate-classify --out people.npz [--n 10000 --function 1]
    mine              --data txns.txt --min-support 0.01
    compare-lits      --data1 a.txt --data2 b.txt --min-support 0.01 [--boot 50]
    compare-dt        --data1 a.npz --data2 b.npz [--boot 50]
    monitor-stream    --data txns.txt --window 1000 [--step 250 --boot 8]
    monitor-stream    --data people.npz --kind tabular --window 1000
    fleet             --data a.txt b.txt c.txt [--threshold 5 --groups 2]
    sketch pack       --data a.txt --out a.sketch [--model-out a.model]
    sketch merge      --in a.sketch b.sketch --out merged.sketch
    sketch compare    --in a.sketch b.sketch --models a.model b.model
    sketch inspect    --in a.sketch

``compare-*`` prints delta, (for lits) delta*, and the bootstrap
significance -- the full Section 3 pipeline from flat files.
``fleet`` computes the all-pairs deviation matrix of many store files
through :class:`repro.fleet.FleetDeviationMatrix` -- with ``--threshold``
only pairs whose delta* bound crosses it are scanned exactly -- and
emits the matrix, a 2-D MDS embedding, the groups, and the pruning
statistics as JSON (or the matrix as CSV).
``sketch`` is the federated workflow: ``pack`` turns one site's data
into kilobyte wire payloads (a mergeable sketch, plus the model for lits
stores), ``merge`` sums shard sketches without any rows, ``compare``
computes the fleet deviation matrix *from payloads alone* (no dataset
readable by the comparer; delta*-pruned with ``--threshold``, pair
significance with ``--boot`` for partition fleets), and ``inspect``
describes a payload after verifying every checksum.
``monitor-stream`` treats the file as a temporally ordered stream: the
first window becomes the reference, every later window is maintained
incrementally (mergeable sketches; no rescan of surviving rows) and
qualified, and drifted windows are flagged as they complete. With
``--kind tabular`` the file is a ``.npz`` table and the reference is a
dt-model (partition sketches instead of support sketches); either way a
trailing partial window is flushed and reported at end of stream.

The measurement commands (``compare-*``, ``fleet``, ``monitor-stream``)
accept ``--metrics [PATH]`` and ``--profile``: both run the engine under
a :mod:`repro.obs` registry; ``--metrics`` emits the counter snapshot as
JSON (to ``PATH``, or stderr), ``--profile`` prints the span/metrics
report table to stderr.

The fanning commands (``fleet``, ``monitor-stream``) accept the
resilience knobs ``--retries``, ``--shard-timeout`` and ``--on-failure
{raise,degrade}``: any of them arms a
:class:`repro.resilience.SupervisedExecutor` around ``--executor``, so
shard failures are retried with seeded backoff, broken process pools
are rebuilt, and exhausted fans either fail typed or degrade down the
process->thread->serial ladder. ``monitor-stream --checkpoint-dir DIR``
additionally writes a crash-durable checkpoint after every chunk and,
when ``DIR`` already holds one, resumes from it -- the resumed run
emits exactly the observations the uninterrupted run would have.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.deviation import deviation
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.core.upper_bound import upper_bound_deviation
from repro.data.io import (
    load_tabular,
    load_transactions,
    save_tabular,
    save_transactions,
)
from repro.data.quest_basket import generate_basket
from repro.data.quest_classify import generate_classification
from repro.mining.tree.builder import TreeParams
from repro.obs import MetricsRegistry, use_registry
from repro.stats.bootstrap import deviation_significance


def _add_generate_basket(sub) -> None:
    p = sub.add_parser("generate-basket", help="write a Quest basket dataset")
    p.add_argument("--out", required=True)
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--items", type=int, default=500)
    p.add_argument("--avg-len", type=int, default=10)
    p.add_argument("--patterns", type=int, default=1_000)
    p.add_argument("--pattern-len", type=int, default=4)
    p.add_argument("--seed", type=int, default=None)


def _add_generate_classify(sub) -> None:
    p = sub.add_parser(
        "generate-classify", help="write an Agrawal classification dataset"
    )
    p.add_argument("--out", required=True)
    p.add_argument("--n", type=int, default=10_000)
    p.add_argument("--function", type=int, default=1)
    p.add_argument("--seed", type=int, default=None)


def _add_mine(sub) -> None:
    p = sub.add_parser("mine", help="mine and print frequent itemsets")
    p.add_argument("--data", required=True)
    p.add_argument("--min-support", type=float, default=0.01)
    p.add_argument("--max-len", type=int, default=None)
    p.add_argument("--top", type=int, default=20)
    p.add_argument("--save", default=None, help="write the model as JSON")
    _add_storage_args(p)


def _add_compare_models(sub) -> None:
    p = sub.add_parser(
        "compare-models",
        help="delta* between two saved lits-models (no data needed)",
    )
    p.add_argument("--model1", required=True)
    p.add_argument("--model2", required=True)


def _add_boot_args(p, default_boot: int = 0) -> None:
    """The shared bootstrap-qualification knobs of the compare commands."""
    p.add_argument(
        "--boot", "--n-boot", dest="boot", type=int, default=default_boot,
        help="bootstrap resamples (count-space engine: the pooled data "
        "is scanned once, never per replicate)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="bootstrap RNG seed (default 0 so published significance "
        "numbers are reproducible; vary it to probe resampling noise)",
    )
    p.add_argument(
        "--boot-executor", choices=("serial", "thread", "process"),
        default="serial",
        help="backend for fanning bootstrap replicate blocks",
    )
    p.add_argument(
        "--boot-blocks", type=int, default=1,
        help="replicate blocks to fan over --boot-executor",
    )


def _add_storage_args(p) -> None:
    """The out-of-core storage knobs of the transaction commands."""
    p.add_argument(
        "--backend", choices=("ram", "mmap"), default="ram",
        help="index storage: in-RAM arrays, or memory-mapped stripe "
        "files under --stripe-dir (out-of-core: counts stream through "
        "the OS page cache, and process fan-outs attach the stripes "
        "zero-copy instead of pickling rows)",
    )
    p.add_argument(
        "--stripe-dir", default=None, metavar="DIR",
        help="directory for the mmap backend's stripe files (required "
        "with --backend mmap; each dataset gets a subdirectory; must "
        "not already hold a store)",
    )


def _storage_dataset(path: str, tag: str, args):
    """Load a transactions file onto the selected storage backend.

    RAM backend: the plain in-memory dataset. Mmap backend: ingest into
    a stripe store under ``--stripe-dir/<tag>`` and snapshot with the
    store-backed index shared, so every downstream count runs over the
    on-disk stripes.
    """
    dataset = load_transactions(path)
    if args.backend == "ram":
        return dataset
    if args.stripe_dir is None:
        raise SystemExit("--backend mmap requires --stripe-dir")
    from pathlib import Path

    from repro.stream import TransactionLog

    log = TransactionLog(
        dataset.n_items,
        dataset,
        backend="mmap",
        stripe_dir=Path(args.stripe_dir) / tag,
    )
    return log.to_dataset(share_index=True)


def _add_obs_args(p) -> None:
    """The engine-observability knobs of the measurement commands."""
    p.add_argument(
        "--metrics", nargs="?", const="-", default=None, metavar="PATH",
        help="run under a repro.obs registry and emit the engine counter "
        "snapshot as JSON: to PATH, or to stderr when no PATH is given",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="run under a repro.obs registry and print the metrics/span "
        "report table to stderr",
    )


def _add_resilience_args(p) -> None:
    """The supervised-fan knobs of the fanning commands."""
    p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="supervise the executor fan: retry each failed shard up to "
        "N extra times with seeded backoff (any resilience flag arms "
        "repro.resilience.SupervisedExecutor around --executor)",
    )
    p.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="abandon and retry a shard stalled past this many seconds "
        "(on the process rung the pool is rebuilt, so the stalled "
        "worker dies with it)",
    )
    p.add_argument(
        "--on-failure", choices=("raise", "degrade"), default=None,
        help="what a shard exhausting its retry budget does: raise a "
        "typed ShardFailedError naming the shard (raise, the default), "
        "or first degrade the fan down the process->thread->serial "
        "ladder (degrade)",
    )


def _resolve_cli_executor(args):
    """``--executor``, wrapped in supervision when a resilience flag asks.

    Returns the plain backend name when no resilience flag was given
    (the call sites own and release it as before); otherwise a
    :class:`~repro.resilience.SupervisedExecutor` instance the caller
    must shut down.
    """
    flags = (args.retries, args.shard_timeout, args.on_failure)
    if all(flag is None for flag in flags):
        return args.executor
    from repro.resilience import SupervisedExecutor

    return SupervisedExecutor(  # reprolint: disable=RL003(factory hands ownership to the command handler, which releases it in a finally or via monitor.close)
        args.executor,
        retries=2 if args.retries is None else args.retries,
        shard_timeout=args.shard_timeout,
        on_failure=args.on_failure or "raise",
        seed=getattr(args, "seed", 0) or 0,
    )


def _skip_rows(chunks, n: int):
    """Drop the first ``n`` rows of a chunk stream (the resume offset)."""
    for chunk in chunks:
        size = len(chunk)
        if n >= size:
            n -= size
            continue
        if n:
            chunk = (
                chunk[n:] if isinstance(chunk, list)
                else chunk.slice_rows(n, size)
            )
            n = 0
        yield chunk


def _add_compare_lits(sub) -> None:
    p = sub.add_parser("compare-lits", help="lits-model deviation of two files")
    p.add_argument("--data1", required=True)
    p.add_argument("--data2", required=True)
    p.add_argument("--min-support", type=float, default=0.01)
    p.add_argument("--max-len", type=int, default=None)
    _add_storage_args(p)
    _add_boot_args(p)
    _add_obs_args(p)


def _add_compare_dt(sub) -> None:
    p = sub.add_parser("compare-dt", help="dt-model deviation of two files")
    p.add_argument("--data1", required=True)
    p.add_argument("--data2", required=True)
    p.add_argument("--max-depth", type=int, default=8)
    p.add_argument("--min-leaf", type=int, default=25)
    _add_boot_args(p)
    _add_obs_args(p)


def _add_fleet(sub) -> None:
    p = sub.add_parser(
        "fleet",
        help="all-pairs deviation matrix + embedding + groups over many "
        "store files (delta*-pruned when --threshold is given)",
    )
    p.add_argument("--data", required=True, nargs="+",
                   help="two or more store datasets (all .txt transactions "
                   "or all .npz tabular)")
    p.add_argument("--kind", choices=("transactions", "tabular"),
                   default="transactions")
    p.add_argument("--names", nargs="+", default=None,
                   help="store names (default: file stems)")
    p.add_argument("--min-support", type=float, default=0.02)
    p.add_argument("--max-len", type=int, default=2)
    p.add_argument("--max-depth", type=int, default=6,
                   help="dt-model depth (tabular kind)")
    p.add_argument("--min-leaf", type=int, default=25,
                   help="dt-model min rows per leaf (tabular kind)")
    p.add_argument("--threshold", type=float, default=None,
                   help="delta* pruning threshold (transactions kind only): "
                   "pairs whose bound stays at or below it are certified, "
                   "not scanned (default: exhaustive)")
    p.add_argument("--groups", type=int, default=None,
                   help="agglomerative group count (default: threshold "
                   "components when pruning, else no groups)")
    p.add_argument("--linkage", choices=("single", "complete", "average"),
                   default="average")
    p.add_argument("--k", type=int, default=2, help="embedding dimensions")
    p.add_argument("--format", choices=("json", "csv"), default="json")
    p.add_argument("--out", default=None,
                   help="write the report here instead of stdout")
    p.add_argument("--executor", choices=("serial", "thread", "process"),
                   default="serial")
    _add_resilience_args(p)
    _add_obs_args(p)


def _add_monitor_stream(sub) -> None:
    p = sub.add_parser(
        "monitor-stream",
        help="online drift monitoring over a transactions or tabular file",
    )
    p.add_argument("--data", required=True)
    p.add_argument(
        "--kind", choices=("transactions", "tabular"), default="transactions",
        help="stream kind: a transactions text file mined into a "
        "lits-model, or a tabular .npz monitored with a dt-model",
    )
    p.add_argument("--window", type=int, default=1_000, help="rows per window")
    p.add_argument(
        "--step", type=int, default=None,
        help="rows between windows (default: window, i.e. tumbling)",
    )
    p.add_argument("--min-support", type=float, default=0.02)
    p.add_argument("--max-len", type=int, default=2)
    p.add_argument("--max-depth", type=int, default=6,
                   help="dt-model depth (tabular kind)")
    p.add_argument("--min-leaf", type=int, default=25,
                   help="dt-model min rows per leaf (tabular kind)")
    p.add_argument("--boot", "--n-boot", dest="boot", type=int, default=8,
                   help="bootstrap resamples (count-space, no window "
                   "materialisation); 0 = threshold on the deviation itself")
    p.add_argument("--threshold", type=float, default=95.0,
                   help="significance %% that counts as drift")
    p.add_argument("--delta-threshold", type=float, default=None,
                   help="deviation cut-off when --boot 0")
    p.add_argument("--policy", choices=("fixed", "reset_on_drift"),
                   default="fixed")
    p.add_argument("--executor", choices=("serial", "thread", "process"),
                   default="serial")
    p.add_argument("--shards", type=int, default=1,
                   help="map-merge shards per chunk")
    p.add_argument("--seed", type=int, default=0,
                   help="bootstrap RNG seed (default 0: reproducible "
                   "drift verdicts)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="write a crash-durable checkpoint to DIR after "
                   "every chunk; when DIR already holds one, resume from "
                   "it (skipping the rows already ingested) instead of "
                   "starting over")
    _add_resilience_args(p)
    _add_obs_args(p)


def _add_sketch(sub) -> None:
    p = sub.add_parser(
        "sketch",
        help="federated sketch exchange: pack/merge/compare/inspect "
        "kilobyte wire payloads (no data movement)",
    )
    ssub = p.add_subparsers(dest="sketch_command", required=True)

    pk = ssub.add_parser(
        "pack",
        help="turn one site's data file into wire payloads (sketch + "
        "model)",
    )
    pk.add_argument("--data", required=True)
    pk.add_argument("--kind", choices=("transactions", "tabular"),
                    default="transactions")
    pk.add_argument("--out", required=True, help="sketch payload path")
    pk.add_argument("--model-out", default=None,
                    help="also write the site's packed model payload "
                    "(lits stores ship it alongside the sketch)")
    pk.add_argument("--min-support", type=float, default=0.02)
    pk.add_argument("--max-len", type=int, default=2)
    pk.add_argument("--probe-models", nargs="+", default=None,
                    metavar="MODEL",
                    help="packed lits-model payloads of the whole fleet; "
                    "the sketch counts the union of their itemsets so any "
                    "pair becomes exactly comparable (default: this "
                    "store's own itemsets)")
    pk.add_argument("--ref", default=None,
                    help="packed dt-/cluster-model payload giving the "
                    "fleet-shared structure (tabular kind; default: fit a "
                    "dt-model on this data and embed it)")
    pk.add_argument("--max-depth", type=int, default=6)
    pk.add_argument("--min-leaf", type=int, default=25)
    _add_obs_args(pk)

    mg = ssub.add_parser(
        "merge",
        help="sum shard sketch payloads into one (no rows involved)",
    )
    mg.add_argument("--in", dest="inputs", nargs="+", required=True)
    mg.add_argument("--out", required=True)
    _add_obs_args(mg)

    cp = ssub.add_parser(
        "compare",
        help="fleet deviation matrix purely from exchanged payloads",
    )
    cp.add_argument("--in", dest="inputs", nargs="+", required=True,
                    help="sketch payloads, one per store")
    cp.add_argument("--models", nargs="+", default=None,
                    help="packed lits-model payloads aligned with --in "
                    "(lits fleets; partition sketches embed their model)")
    cp.add_argument("--names", nargs="+", default=None,
                    help="store names (default: file stems)")
    cp.add_argument("--threshold", type=float, default=None,
                    help="delta* pruning threshold (lits fleets)")
    cp.add_argument("--boot", type=int, default=0,
                    help="bootstrap resamples for per-pair significance "
                    "(partition fleets: counts-only CountsResamplePlan)")
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument("--format", choices=("json", "csv"), default="json")
    cp.add_argument("--out", default=None,
                    help="write the report here instead of stdout")
    _add_obs_args(cp)

    ins = ssub.add_parser(
        "inspect",
        help="describe payloads (kind, version, sections) after "
        "verifying every checksum",
    )
    ins.add_argument("--in", dest="inputs", nargs="+", required=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="focus-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate_basket(sub)
    _add_generate_classify(sub)
    _add_mine(sub)
    _add_compare_lits(sub)
    _add_compare_dt(sub)
    _add_compare_models(sub)
    _add_fleet(sub)
    _add_monitor_stream(sub)
    _add_sketch(sub)
    return parser


def _cmd_generate_basket(args, out) -> int:
    dataset = generate_basket(
        args.n,
        n_items=args.items,
        avg_transaction_len=args.avg_len,
        n_patterns=args.patterns,
        avg_pattern_len=args.pattern_len,
        seed=args.seed,
    )
    save_transactions(dataset, args.out)
    print(f"wrote {len(dataset)} transactions to {args.out}", file=out)
    return 0


def _cmd_generate_classify(args, out) -> int:
    dataset = generate_classification(args.n, function=args.function, seed=args.seed)
    save_tabular(dataset, args.out)
    print(f"wrote {len(dataset)} tuples (F{args.function}) to {args.out}", file=out)
    return 0


def _cmd_mine(args, out) -> int:
    dataset = _storage_dataset(args.data, "data", args)
    model = LitsModel.mine(dataset, args.min_support, max_len=args.max_len)
    print(f"{len(model)} frequent itemsets at ms={args.min_support:g}", file=out)
    ranked = sorted(model.supports.items(), key=lambda kv: -kv[1])
    for itemset, support in ranked[: args.top]:
        items = ",".join(str(i) for i in sorted(itemset))
        print(f"  {{{items}}}: {support:.4f}", file=out)
    if args.save:
        from repro.data.model_io import save_lits_model

        save_lits_model(model, args.save)
        print(f"saved model to {args.save}", file=out)
    return 0


def _cmd_compare_models(args, out) -> int:
    from repro.data.model_io import load_lits_model

    m1 = load_lits_model(args.model1)
    m2 = load_lits_model(args.model2)
    bound = upper_bound_deviation(m1, m2)
    print(
        f"delta* = {bound.value:.6f} over {len(bound.itemsets)} itemsets "
        f"(union of {len(m1)} and {len(m2)})",
        file=out,
    )
    return 0


def _cmd_compare_lits(args, out) -> int:
    d1 = _storage_dataset(args.data1, "d1", args)
    d2 = _storage_dataset(args.data2, "d2", args)

    def builder(d):
        return LitsModel.mine(d, args.min_support, max_len=args.max_len)

    m1, m2 = builder(d1), builder(d2)
    result = deviation(m1, m2, d1, d2)
    bound = upper_bound_deviation(m1, m2)
    print(f"delta  = {result.value:.6f} over {len(result.regions)} regions", file=out)
    print(f"delta* = {bound.value:.6f} (models only)", file=out)
    if args.boot > 0:
        sig = deviation_significance(
            d1, d2, builder, n_boot=args.boot,
            rng=np.random.default_rng(args.seed),
            models=(m1, m2),
            executor=args.boot_executor, n_blocks=args.boot_blocks,
        )
        print(
            f"significance = {sig.significance_percent:.1f}% "
            f"(p = {sig.p_value:.4f}, seed {args.seed})",
            file=out,
        )
    return 0


def _cmd_compare_dt(args, out) -> int:
    d1 = load_tabular(args.data1)
    d2 = load_tabular(args.data2)
    params = TreeParams(max_depth=args.max_depth, min_leaf=args.min_leaf)

    def builder(d):
        return DtModel.fit(d, params)

    m1, m2 = builder(d1), builder(d2)
    result = deviation(m1, m2, d1, d2)
    print(
        f"delta = {result.value:.6f} over {len(result.regions)} regions "
        f"({m1.n_leaves} x {m2.n_leaves} leaves)",
        file=out,
    )
    if args.boot > 0:
        sig = deviation_significance(
            d1, d2, builder, n_boot=args.boot,
            rng=np.random.default_rng(args.seed),
            models=(m1, m2),
            executor=args.boot_executor, n_blocks=args.boot_blocks,
        )
        print(
            f"significance = {sig.significance_percent:.1f}% "
            f"(p = {sig.p_value:.4f}, seed {args.seed})",
            file=out,
        )
    return 0


def _cmd_fleet(args, out) -> int:
    import json
    from pathlib import Path

    from repro.fleet import FleetDeviationMatrix

    if args.kind == "tabular" and args.threshold is not None:
        print(
            "--threshold (delta* pruning) applies to the transactions kind "
            "only: the delta* bound exists for lits-models, not partition "
            "models. Drop --threshold to compute the tabular fleet "
            "exhaustively.",
            file=sys.stderr,
        )
        return 2

    if args.kind == "tabular":
        datasets = [load_tabular(p) for p in args.data]
        params = TreeParams(max_depth=args.max_depth, min_leaf=args.min_leaf)
        models = [DtModel.fit(d, params) for d in datasets]
    else:
        datasets = [load_transactions(p) for p in args.data]
        models = [
            LitsModel.mine(d, args.min_support, max_len=args.max_len)
            for d in datasets
        ]
    names = args.names or [Path(p).stem for p in args.data]
    runner = _resolve_cli_executor(args)
    engine = FleetDeviationMatrix(
        models, datasets, names=names, executor=runner
    )
    try:
        if args.threshold is not None:
            result = engine.pruned(args.threshold)
        else:
            result = engine.exhaustive()
    finally:
        # a backend *name* is owned and released by the engine's fans; a
        # supervised instance is ours to release
        if not isinstance(runner, str):
            runner.shutdown()

    if args.format == "csv":
        payload = result.to_csv()
    else:
        report = result.to_report(
            k=args.k, n_groups=args.groups, linkage=args.linkage
        )
        payload = json.dumps(report, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(payload)
    else:
        out.write(payload)
    print(
        f"{len(names)} stores, {result.n_pairs} pairs: "
        f"{result.n_scanned} scanned exactly, {result.n_model_only} from "
        f"models alone, {result.n_pruned} certified by delta*"
        + (f" at threshold {result.threshold:g}" if result.threshold is not None
           else "")
        + (f"; wrote {args.out}" if args.out else ""),
        file=sys.stderr if not args.out else out,
    )
    return 0


def _cmd_monitor_stream(args, out) -> int:
    from repro.stream import (
        OnlineChangeMonitor,
        stream_tabular_chunks,
        stream_transaction_chunks,
    )

    chunk_rows = args.step or args.window
    common = dict(
        window_size=args.window,
        step=args.step,
        n_boot=args.boot,
        threshold=args.threshold,
        delta_threshold=args.delta_threshold,
        policy=args.policy,
        rng=np.random.default_rng(args.seed),
        executor=_resolve_cli_executor(args),
        n_shards=args.shards,
    )
    if args.kind == "tabular":
        _, chunks = stream_tabular_chunks(args.data, chunk_rows)
        params = TreeParams(max_depth=args.max_depth, min_leaf=args.min_leaf)

        def builder(d):
            return DtModel.fit(d, params)

        monitor = OnlineChangeMonitor(builder, kind="tabular", **common)
    else:
        n_items, chunks = stream_transaction_chunks(args.data, chunk_rows)

        def builder(d):
            return LitsModel.mine(d, args.min_support, max_len=args.max_len)

        monitor = OnlineChangeMonitor(builder, n_items, **common)

    if args.checkpoint_dir:
        from repro.resilience import has_checkpoint

        if has_checkpoint(args.checkpoint_dir):
            monitor.resume(args.checkpoint_dir)
            chunks = _skip_rows(chunks, monitor.rows_ingested)
            print(
                f"resumed from {args.checkpoint_dir} at row "
                f"{monitor.rows_ingested}",
                file=sys.stderr,
            )

    try:
        for chunk in chunks:
            for observation in monitor.push(chunk):
                print(observation.describe(), file=out)
            if args.checkpoint_dir:
                monitor.checkpoint(args.checkpoint_dir)
        if monitor.is_warming_up:
            print(
                f"stream ended during warm-up: fewer than {args.window} rows",
                file=out,
            )
            return 0
        for observation in monitor.flush():
            print(f"{observation.describe()} [partial final window]", file=out)
        # totals come from the (checkpoint-restored) lifetime history, so
        # a resumed run reports exactly what the uninterrupted run would
        n_drifted = sum(1 for o in monitor.history if o.drifted)
        print(
            f"{len(monitor.history)} windows monitored, {n_drifted} drifted; "
            f"{monitor.rows_sketched} rows sketched incrementally",
            file=out,
        )
        return 0
    finally:
        # even on a mid-stream error: pooled workers must not be left
        # to interpreter-exit teardown (it can race CPython's atexit)
        monitor.close()


def _cmd_sketch_pack(args, out) -> int:
    from pathlib import Path

    from repro.wire import pack, unpack_model

    if args.kind == "transactions":
        dataset = load_transactions(args.data)
        if args.probe_models:
            # the two-leg protocol: the fleet's models already travelled,
            # so sketch exactly their union -- every site counting the
            # same collection is what makes sketches mergeable across
            # shards and exactly comparable across stores (the local
            # model is mined only if this site also ships one)
            from repro.fleet import probe_itemsets

            fleet_models = []
            for path in args.probe_models:
                probe = unpack_model(Path(path).read_bytes())
                if not isinstance(probe, LitsModel):
                    print(
                        f"--probe-models: {path} is not a lits-model payload",
                        file=sys.stderr,
                    )
                    return 2
                fleet_models.append(probe)
            probes = probe_itemsets(fleet_models)
            model = (
                LitsModel.mine(dataset, args.min_support, max_len=args.max_len)
                if args.model_out
                else None
            )
        else:
            model = LitsModel.mine(
                dataset, args.min_support, max_len=args.max_len
            )
            probes = model.itemsets
        from repro.stream.sketch import SupportSketch

        sketch_payload = pack(SupportSketch.from_dataset(dataset, probes))
        model_payload = pack(model) if model is not None else b""
        what = f"{len(probes)} itemsets over {len(dataset)} transactions"
    else:
        dataset = load_tabular(args.data)
        if args.ref:
            ref = unpack_model(Path(args.ref).read_bytes())
            if isinstance(ref, LitsModel):
                print(
                    f"--ref: {args.ref} is a lits-model; a tabular sketch "
                    "needs a dt- or cluster-model structure",
                    file=sys.stderr,
                )
                return 2
        else:
            params = TreeParams(max_depth=args.max_depth, min_leaf=args.min_leaf)
            ref = DtModel.fit(dataset, params)
        from repro.stream.sketch import PartitionSketch

        sketch = PartitionSketch.from_dataset(dataset, ref.structure)
        sketch_payload = pack(sketch, model=ref)
        model_payload = pack(ref)
        what = (
            f"{len(sketch.counts)} regions over {len(dataset)} rows "
            "(model embedded)"
        )
    Path(args.out).write_bytes(sketch_payload)
    print(
        f"packed {what}: {len(sketch_payload)} bytes -> {args.out}", file=out
    )
    if args.model_out:
        Path(args.model_out).write_bytes(model_payload)
        print(
            f"packed model: {len(model_payload)} bytes -> {args.model_out}",
            file=out,
        )
    return 0


def _cmd_sketch_merge(args, out) -> int:
    from pathlib import Path

    from repro.wire import (
        KIND_PARTITION_SKETCH,
        KIND_SUPPORT_SKETCH,
        kind_of,
        pack,
        unpack_partition_payload,
        unpack_partition_sketch,
        unpack_support_sketch,
    )

    payloads = [Path(p).read_bytes() for p in args.inputs]
    kind = kind_of(payloads[0])
    if kind == KIND_SUPPORT_SKETCH:
        sketches = [unpack_support_sketch(p) for p in payloads]
        merged_payload = pack(sum(sketches[1:], sketches[0]))
    elif kind == KIND_PARTITION_SKETCH:
        first, model = unpack_partition_payload(payloads[0])
        rest = [unpack_partition_sketch(p) for p in payloads[1:]]
        merged_payload = pack(sum(rest, first), model=model)
    else:
        print(
            f"{args.inputs[0]} is not a sketch payload (models do not "
            "merge; re-mine over the merged data instead)",
            file=sys.stderr,
        )
        return 2
    Path(args.out).write_bytes(merged_payload)
    print(
        f"merged {len(payloads)} sketches -> {args.out} "
        f"({len(merged_payload)} bytes)",
        file=out,
    )
    return 0


def _cmd_sketch_compare(args, out) -> int:
    import json
    from pathlib import Path

    from repro.fleet import FleetDeviationMatrix

    sketch_payloads = [Path(p).read_bytes() for p in args.inputs]
    if args.models is not None:
        if len(args.models) != len(args.inputs):
            print(
                f"--models must align with --in: got {len(args.models)} "
                f"models for {len(args.inputs)} sketches",
                file=sys.stderr,
            )
            return 2
        model_payloads = [Path(p).read_bytes() for p in args.models]
        shipments = list(zip(model_payloads, sketch_payloads))
    else:
        shipments = list(sketch_payloads)
    names = args.names or [Path(p).stem for p in args.inputs]
    fleet = FleetDeviationMatrix.from_sketches(shipments, names=names)
    if args.threshold is not None and fleet.kind != "lits":
        print(
            "--threshold (delta* pruning) applies to lits fleets only; "
            "partition fleets are exact from the shared structure -- use "
            "--boot for per-pair significance instead.",
            file=sys.stderr,
        )
        return 2
    if args.threshold is not None:
        result = fleet.pruned(args.threshold)
    else:
        result = fleet.exhaustive()

    if args.format == "csv":
        payload = result.to_csv()
    else:
        report = result.to_report()
        report["payload_bytes"] = list(fleet.payload_bytes)
        if args.boot > 0 and fleet.kind == "partition":
            n = len(fleet.names)
            report["qualification"] = [
                {
                    "pair": [fleet.names[i], fleet.names[j]],
                    "p_value": fleet.qualify(
                        i, j, n_boot=args.boot, seed=args.seed
                    ).p_value,
                }
                for i in range(n)
                for j in range(i + 1, n)
            ]
        payload = json.dumps(report, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(payload)
    else:
        out.write(payload)
    shipped = sum(fleet.payload_bytes)
    print(
        f"{len(fleet.names)} stores compared from {shipped} payload bytes "
        f"(no rows shipped): {result.n_sketch_exact} pairs exact from "
        f"sketches, {result.n_pruned} certified by delta*"
        + (f"; wrote {args.out}" if args.out else ""),
        file=sys.stderr if not args.out else out,
    )
    return 0


def _cmd_sketch_inspect(args, out) -> int:
    import json
    from pathlib import Path

    from repro.wire import payload_info

    for path in args.inputs:
        info = payload_info(Path(path).read_bytes())
        info["path"] = path
        print(json.dumps(info, indent=2), file=out)
    return 0


_SKETCH_COMMANDS = {
    "pack": _cmd_sketch_pack,
    "merge": _cmd_sketch_merge,
    "compare": _cmd_sketch_compare,
    "inspect": _cmd_sketch_inspect,
}


def _cmd_sketch(args, out) -> int:
    return _SKETCH_COMMANDS[args.sketch_command](args, out)


COMMANDS = {
    "generate-basket": _cmd_generate_basket,
    "generate-classify": _cmd_generate_classify,
    "mine": _cmd_mine,
    "compare-lits": _cmd_compare_lits,
    "compare-dt": _cmd_compare_dt,
    "compare-models": _cmd_compare_models,
    "fleet": _cmd_fleet,
    "monitor-stream": _cmd_monitor_stream,
    "sketch": _cmd_sketch,
}


def _emit_observability(args, registry: MetricsRegistry) -> None:
    """Write the ``--metrics`` snapshot / ``--profile`` report."""
    metrics_target = getattr(args, "metrics", None)
    if metrics_target == "-":
        print(registry.snapshot_json(), file=sys.stderr)
    elif metrics_target is not None:
        from pathlib import Path

        Path(metrics_target).write_text(registry.snapshot_json() + "\n")
        print(f"wrote metrics snapshot to {metrics_target}", file=sys.stderr)
    if getattr(args, "profile", False):
        print(registry.report(), file=sys.stderr)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    command = COMMANDS[args.command]
    if getattr(args, "metrics", None) is None and not getattr(
        args, "profile", False
    ):
        return command(args, out)
    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            return command(args, out)
    finally:
        _emit_observability(args, registry)


if __name__ == "__main__":
    raise SystemExit(main())
