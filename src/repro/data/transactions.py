"""Market-basket transaction datasets and their packed-bitmap index.

A :class:`TransactionDataset` is a bag of itemsets over an item universe
``{0, ..., n_items - 1}``. Support queries drive everything lits-model
related: mining (Apriori candidates), extending a model to the GCR
(counting the *other* model's itemsets), and focussed deviations.

The :class:`BitmapIndex` packs each item's occurrence vector into bits
(one ``uint8`` row stripe per item), so the support of an itemset is a
few ``bitwise_and`` passes plus a popcount -- a single conceptual scan
of the data, built once and reused for any number of itemsets.

Batched counting is the hot path: :meth:`BitmapIndex.support_counts`
groups a whole itemset collection by length and counts each group with
stacked ``bitwise_and`` reductions over a 2-D ``uint8`` matrix and a
single popcount pass, instead of one Python-level loop iteration per
itemset. Level-wise miners additionally benefit from the
intersection-bits cache: counting with ``cache=True`` memoises each
itemset's packed intersection vector so the level-``k`` pass reuses the
level-``(k-1)`` bitmaps via the candidates' shared prefixes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, SupportsIndex

import numpy as np

from repro.data.storage import (
    RamStripeStore,
    StripeHandle,
    StripeStore,
    attach,
    iter_row_blocks,
    scan_budget_bytes,
)
from repro.errors import InvalidParameterError
from repro.obs import metrics

# Popcount lookup for uint8 values; POPCOUNT[b] = number of set bits in b.
POPCOUNT = np.array([bin(b).count("1") for b in range(256)], dtype=np.uint32)

#: ``np.bitwise_count`` (numpy >= 2.0) popcounts a uint64 view of the
#: packed matrix far faster than the byte-LUT gather; fall back otherwise.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Upper bound on the gathered stripe matrix (rows x length x bytes) a
#: single batched reduction may allocate; larger groups are chunked.
_MAX_STRIPE_BYTES = 1 << 25  # 32 MiB

#: Upper bound on memoised intersection vectors per index. When admitting
#: a group would overflow the cap the memo is cleared wholesale and
#: rebuilt from the current group; a group larger than the cap by itself
#: is not cached at all.
_MAX_CACHE_ENTRIES = 1 << 16

#: The stripe name the index's packed bit matrix lives under in its
#: :class:`~repro.data.storage.StripeStore`.
_ITEM_BITS = "item_bits"


def _popcount_rows(matrix: np.ndarray) -> np.ndarray:
    """Per-row popcount of a packed uint8 matrix.

    The matrix must be C-contiguous with a row width that is a multiple
    of 8 bytes when ``np.bitwise_count`` is available (callers allocate
    rows pre-padded with zero bytes).
    """
    counts: np.ndarray
    if _HAS_BITWISE_COUNT:
        counts = np.bitwise_count(matrix.view(np.uint64)).sum(
            axis=1, dtype=np.int64
        )
    else:
        counts = POPCOUNT[matrix].sum(axis=1, dtype=np.int64)
    return counts


class BitmapIndex:
    """Packed bit matrix: row per item, bit per transaction.

    The index is *incremental*: :meth:`append` extends every item stripe
    in amortized O(new rows) by writing into spare capacity, so a
    streaming window advance never rebuilds the index from scratch. The
    stripe buffer doubles when full (like a growable vector); ``_bits``
    is always the view of the occupied prefix.

    The buffer lives in a :class:`~repro.data.storage.StripeStore`. The
    default is the in-RAM backend (byte-for-byte the historical
    behaviour); passing an :class:`~repro.data.storage.MmapStripeStore`
    puts the stripes on disk, every append commits the new row count to
    the store's manifest, and :meth:`handle` / :meth:`attach` let a
    process fan ship the index as a few hundred bytes instead of
    pickling the bit matrix (pickling such an index does this
    automatically). :meth:`scan_counts` streams a log larger than the
    scan budget through block-masked ranged counting.
    """

    def __init__(
        self,
        transactions: Sequence[tuple[int, ...]],
        n_items: int,
        *,
        max_cache_entries: int = _MAX_CACHE_ENTRIES,
        store: StripeStore | None = None,
    ) -> None:
        n = len(transactions)
        self.n_transactions = n
        self.n_items = n_items
        self.max_cache_entries = max_cache_entries
        self._store = RamStripeStore() if store is None else store
        self._writable = True
        n_bytes = (n + 7) // 8
        self._buf = self._store.create(
            _ITEM_BITS, (n_items, n_bytes), np.uint8
        )
        self._bits = self._buf[:, :n_bytes]
        if n:
            self._scatter(transactions, tid_offset=0)
        self._commit()
        # Intersection-bits memo: sorted itemset tuple -> packed vector.
        self._prefix_cache: dict[tuple[int, ...], np.ndarray] = {}

    @classmethod
    def from_store(
        cls,
        store: StripeStore,
        *,
        max_cache_entries: int = _MAX_CACHE_ENTRIES,
    ) -> "BitmapIndex":
        """Adopt a reopened store, truncating to its committed rows.

        The crash-recovery entry point: the committed meta names the
        logical row count, and any bits a killed append scattered beyond
        it -- the uncommitted tail of the partial byte plus the spare
        capacity -- are zeroed here, so counts over the recovered index
        equal counts over an index rebuilt from the committed rows.
        """
        self = object.__new__(cls)
        self.n_transactions = n = int(store.meta["n_rows"])
        self.n_items = int(store.meta["n_items"])
        self.max_cache_entries = max_cache_entries
        self._store = store
        self._writable = True
        self._buf = store.stripe(_ITEM_BITS)
        n_bytes = (n + 7) // 8
        if n & 7:
            self._buf[:, n_bytes - 1] &= np.uint8(0xFF << (8 - (n & 7)) & 0xFF)
        self._buf[:, n_bytes:] = 0
        self._bits = self._buf[:, :n_bytes]
        self._prefix_cache = {}
        return self

    @classmethod
    def attach(cls, handle: StripeHandle) -> "BitmapIndex":
        """Map a shipped handle as a read-only index (zero-copy).

        The worker-side half of a process fan-out: the stripes are
        re-mapped from the owner's files through the shared OS page
        cache, so no data bytes cross the process boundary. The view is
        a snapshot of the last commit; counting methods mask the partial
        tail byte, but the owner must not run a *concurrent* append
        while attached workers scan.
        """
        store = attach(handle)
        self = object.__new__(cls)
        self.n_transactions = n = int(store.meta["n_rows"])
        self.n_items = int(store.meta["n_items"])
        self.max_cache_entries = _MAX_CACHE_ENTRIES
        self._store = store
        self._writable = False
        self._buf = store.stripe(_ITEM_BITS)
        self._bits = self._buf[:, : (n + 7) // 8]
        self._prefix_cache = {}
        return self

    def handle(self) -> StripeHandle | None:
        """A shippable zero-copy reference, or ``None`` on the RAM backend."""
        return self._store.handle()

    @property
    def store(self) -> StripeStore:
        """The stripe store owning this index's packed bit matrix."""
        return self._store

    def _commit(self) -> None:
        meta = self._store.meta
        meta["n_rows"] = self.n_transactions
        meta["n_items"] = self.n_items
        self._store.commit()

    def __reduce_ex__(
        self, protocol: SupportsIndex
    ) -> str | tuple[object, ...]:
        # Pickling an index backed by a shared-medium store ships the
        # byte-cheap handle; workers re-attach zero-copy. RAM-backed
        # indexes ship one copy of the occupied packed prefix (the
        # "copy" fan-out shape the out-of-core bench compares against).
        handle = self._store.handle()
        if handle is not None:
            return (BitmapIndex.attach, (handle,))
        return (
            BitmapIndex._from_packed,
            (self._bits, self.n_transactions, self.n_items),
        )

    @classmethod
    def _from_packed(
        cls, bits: np.ndarray, n_transactions: int, n_items: int
    ) -> "BitmapIndex":
        """Rebuild a RAM-backed index around a shipped packed prefix.

        The pickle payload for stores with no shared medium: exactly the
        occupied bytes, once -- not the spare-capacity buffer, its
        prefix view, and the store's stripe as three separate arrays,
        which is what default object pickling would serialise.
        """
        self = object.__new__(cls)
        self.n_transactions = n_transactions
        self.n_items = n_items
        self.max_cache_entries = _MAX_CACHE_ENTRIES
        store = RamStripeStore()
        store._stripes[_ITEM_BITS] = bits
        self._store = store
        self._writable = True
        self._buf = bits
        self._bits = bits
        self._commit()
        self._prefix_cache = {}
        return self

    def _scatter(
        self, transactions: Sequence[tuple[int, ...]], tid_offset: int
    ) -> None:
        """OR the (item, tid) bits of ``transactions`` into the buffer.

        Bits are MSB-first within each byte; ``tid_offset`` is the row id
        of the first transaction. The occupied view must already cover
        the target rows.
        """
        tids: list[int] = []
        items: list[int] = []
        for tid, t in enumerate(transactions, start=tid_offset):
            for item in t:
                items.append(item)
                tids.append(tid)
        if not items:
            return
        items_arr = np.array(items, dtype=np.int64)
        if items_arr.min() < 0 or items_arr.max() >= self.n_items:
            raise InvalidParameterError(
                f"transaction items outside [0, {self.n_items})"
            )
        tids_arr = np.array(tids, dtype=np.int64)
        byte_idx = tids_arr >> 3
        bit_val = (np.uint8(128) >> (tids_arr & 7)).astype(np.uint8)
        np.bitwise_or.at(self._buf, (items_arr, byte_idx), bit_val)

    def append(self, transactions: Sequence[Iterable[int]]) -> None:
        """Extend the index with new transactions, amortized O(new rows).

        Item stripes grow into pre-allocated spare capacity; when the
        packed width would overflow, the buffer capacity doubles (so a
        long stream of appends costs O(total rows) in bit writes plus
        O(log total) reallocations). Appending invalidates the
        intersection-bits memo: cached vectors describe the old width.

        Rows need no canonical form: the bit scatter is an OR, so
        duplicate or unsorted items within a row are harmless
        (out-of-universe items still raise).
        """
        if not self._writable:
            raise InvalidParameterError(
                "cannot append to an attached (read-only) index"
            )
        transactions = (
            transactions
            if isinstance(transactions, (list, tuple))
            else list(transactions)
        )
        if not transactions:
            return
        n_new = self.n_transactions + len(transactions)
        need_bytes = (n_new + 7) // 8
        cap_bytes = self._buf.shape[1]
        if need_bytes > cap_bytes:
            new_cap = max(need_bytes, 2 * cap_bytes, 8)
            self._buf = self._store.resize(
                _ITEM_BITS, (self.n_items, new_cap)
            )
        self._scatter(transactions, tid_offset=self.n_transactions)
        self.n_transactions = n_new
        self._bits = self._buf[:, :need_bytes]
        self._prefix_cache.clear()
        self._commit()

    def item_bits(self, item: int) -> np.ndarray:
        """The packed occurrence vector of a single item."""
        bits: np.ndarray = self._bits[item]
        return bits

    def item_support_counts(self) -> np.ndarray:
        """Support counts of every single item, in one popcount pass."""
        counts: np.ndarray
        if _HAS_BITWISE_COUNT:
            counts = np.bitwise_count(self._bits).sum(axis=1, dtype=np.int64)
        else:
            counts = POPCOUNT[self._bits].sum(axis=1).astype(np.int64)
        return counts

    def support_count(self, items: Iterable[int]) -> int:
        """Number of transactions containing every item in ``items``.

        The empty itemset is contained in every transaction.
        """
        items = sorted(set(int(i) for i in items))
        if not items:
            return self.n_transactions
        acc = self._bits[items[0]]
        for item in items[1:]:
            acc = np.bitwise_and(acc, self._bits[item])
        if _HAS_BITWISE_COUNT:
            return int(np.bitwise_count(acc).sum())
        return int(POPCOUNT[acc].sum())

    def support_counts(
        self, itemsets: Sequence[Iterable[int]], *, cache: bool = False
    ) -> np.ndarray:
        """Batched support counts for a whole collection of itemsets.

        Itemsets are grouped by length; each group is counted with
        stacked ``bitwise_and`` reductions over a ``(group, length,
        n_bytes)`` gather of the item stripes followed by one popcount
        pass over the resulting 2-D ``uint8`` matrix -- no per-itemset
        Python loop.

        Parameters
        ----------
        itemsets:
            Any sequence of item iterables; duplicates within an itemset
            are ignored and the empty itemset counts every transaction.
        cache:
            When true, every itemset's packed intersection vector is
            memoised so a later call can resolve an itemset from its
            longest cached prefix with a single extra ``bitwise_and``.
            Level-wise miners (Apriori) turn this on: level-``k``
            candidates share their level-``(k-1)`` prefix, so each level
            reuses the previous level's bitmaps.

        Counting the *same* collection against many indexes (the
        streaming shape) should go through a precompiled
        :class:`SupportCountingPlan` instead, which hoists this per-call
        canonicalisation and grouping out of the loop.
        """
        metrics().inc("bitmap.support_counts.calls")
        canon = [tuple(sorted({int(i) for i in s})) for s in itemsets]
        out = np.empty(len(canon), dtype=np.int64)
        by_len: dict[int, list[int]] = {}
        for pos, t in enumerate(canon):
            by_len.setdefault(len(t), []).append(pos)
        for length, positions in sorted(by_len.items()):
            if length == 0:
                out[positions] = self.n_transactions
                continue
            group = [canon[p] for p in positions]
            out[positions] = _popcount_rows(
                self._group_intersections(group, length, cache)
            )
        return out

    def support_counts_loop(
        self, itemsets: Sequence[Iterable[int]]
    ) -> np.ndarray:
        """Reference per-itemset Python loop (the pre-batching seed path).

        Kept verbatim -- one sort, one ``bitwise_and`` chain, and one
        LUT popcount per itemset -- as the oracle the property tests and
        the support-counting ablation bench compare the batched engine
        against.
        """
        counts = np.empty(len(itemsets), dtype=np.int64)
        for pos, itemset in enumerate(itemsets):
            items = sorted(set(int(i) for i in itemset))
            if not items:
                counts[pos] = self.n_transactions
                continue
            acc = self._bits[items[0]]
            for item in items[1:]:
                acc = np.bitwise_and(acc, self._bits[item])
            counts[pos] = int(POPCOUNT[acc].sum())
        return counts

    def _group_intersections(
        self, group: list[tuple[int, ...]], length: int, cache: bool
    ) -> np.ndarray:
        """Packed intersection vectors for same-length itemsets, stacked.

        Returns a ``(len(group), padded_bytes)`` uint8 matrix whose row
        ``i`` starts with the AND of the item stripes of ``group[i]``;
        rows are zero-padded to a multiple of 8 bytes so the caller can
        popcount a uint64 view in place. Rows whose ``length - 1`` prefix
        is memoised need only one ``bitwise_and`` with the last item's
        stripe; the rest are reduced from a chunked stripe gather.
        """
        n_bytes = self._bits.shape[1]
        padded = n_bytes + (-n_bytes) % 8 if _HAS_BITWISE_COUNT else n_bytes
        full = np.zeros((len(group), padded), dtype=np.uint8)
        acc = full[:, :n_bytes]

        if length == 1:
            ids = np.fromiter((t[0] for t in group), dtype=np.int64, count=len(group))
            acc[:] = self._bits[ids]
        else:
            hit_rows: list[int] = []
            hit_prefix: list[np.ndarray] = []
            miss_rows: list[int] = []
            if cache and self._prefix_cache:
                for row, t in enumerate(group):
                    prefix_bits = self._prefix_cache.get(t[:-1])
                    if prefix_bits is not None:
                        hit_rows.append(row)
                        hit_prefix.append(prefix_bits)
                    else:
                        miss_rows.append(row)
            else:
                miss_rows = list(range(len(group)))
            if cache:
                sink = metrics()
                sink.inc("bitmap.memo.hits", len(hit_rows))
                sink.inc("bitmap.memo.misses", len(miss_rows))

            if hit_rows:
                last = np.fromiter(
                    (group[r][-1] for r in hit_rows), dtype=np.int64, count=len(hit_rows)
                )
                acc[hit_rows] = np.bitwise_and(np.stack(hit_prefix), self._bits[last])
            if miss_rows:
                ids = np.array([group[r] for r in miss_rows], dtype=np.int64)
                chunk = max(1, _MAX_STRIPE_BYTES // max(1, length * n_bytes))
                for start in range(0, len(miss_rows), chunk):
                    rows = miss_rows[start : start + chunk]
                    stripes = self._bits[ids[start : start + chunk]]
                    acc[rows] = np.bitwise_and.reduce(stripes, axis=1)

        if cache and len(group) <= self.max_cache_entries:
            memo = self._prefix_cache
            if len(memo) + len(group) > self.max_cache_entries:
                memo.clear()
            for row, t in enumerate(group):
                memo[t] = acc[row]
        return full

    def retain_cache(self, itemsets: Iterable[Iterable[int]]) -> None:
        """Shrink the intersection-bits memo to ``itemsets`` only.

        Level-wise miners call this between levels: only the *frequent*
        ``k``-itemsets can be prefixes of level-``(k+1)`` candidates, so
        everything else is dead weight. Kept vectors are copied out of
        the batch matrices they were views into, releasing the per-level
        buffers.
        """
        keep: dict[tuple[int, ...], np.ndarray] = {}
        memo = self._prefix_cache
        for itemset in itemsets:
            t = tuple(sorted({int(i) for i in itemset}))
            bits = memo.get(t)
            if bits is not None:
                keep[t] = bits.copy()
        self._prefix_cache = keep

    def clear_cache(self) -> None:
        """Drop every memoised intersection vector."""
        self._prefix_cache.clear()

    def cache_size(self) -> int:
        """Number of memoised intersection vectors currently held."""
        return len(self._prefix_cache)

    def intersection_bits(self, items: Iterable[int]) -> np.ndarray:
        """Packed membership vector of transactions containing ``items``.

        For the empty itemset (every transaction matches) the padding
        bits beyond ``n_transactions`` are masked off, so popcounting the
        result is always correct even when ``n_transactions % 8 != 0``.
        """
        items = sorted(set(int(i) for i in items))
        if not items:
            n_bytes = self._bits.shape[1] if self.n_items else (self.n_transactions + 7) // 8
            full = np.full(n_bytes, 255, dtype=np.uint8)
            # Mask off padding bits beyond the last transaction.
            extra = n_bytes * 8 - self.n_transactions
            if extra and n_bytes:
                full[-1] = np.uint8(0xFF << extra & 0xFF)
            return full
        acc: np.ndarray = self._bits[items[0]].copy()
        for item in items[1:]:
            np.bitwise_and(acc, self._bits[item], out=acc)
        return acc

    def scan_counts(
        self,
        itemsets_or_plan: "SupportCountingPlan" | Sequence[Iterable[int]],
        *,
        budget_bytes: int | None = None,
    ) -> np.ndarray:
        """Support counts via a chunked scan with bounded residency.

        Splits the rows into contiguous blocks sized so one block's
        stripe working set stays under ``budget_bytes`` (default: the
        ``REPRO_SCAN_BUDGET_BYTES`` env var or 64 MiB), counts each
        block with the ranged plan, and sums -- counts are integers, so
        the total is exactly the one-shot count no matter the budget.
        Between blocks the store drops page residency of the scanned
        stripes, so an mmap-backed log far larger than the budget
        streams through with a peak RSS near one block
        (``storage.chunks_scanned`` / ``storage.rows_scanned`` account
        for the blocks; a full scan's row tally equals the row count).
        """
        plan = (
            itemsets_or_plan
            if isinstance(itemsets_or_plan, SupportCountingPlan)
            else SupportCountingPlan(itemsets_or_plan)
        )
        budget = scan_budget_bytes(budget_bytes)
        width_bytes = max(8, budget // max(1, self.n_items))
        sink = metrics()
        total = np.zeros(plan.n_itemsets, dtype=np.int64)
        for start, stop in iter_row_blocks(self.n_transactions, width_bytes * 8):
            total += plan.count(self, start=start, stop=stop)
            sink.inc("storage.chunks_scanned")
            sink.inc("storage.rows_scanned", stop - start)
            self._store.release(_ITEM_BITS)
        return total


class SupportCountingPlan:
    """Precompiled batched counting for a *fixed* itemset collection.

    :meth:`BitmapIndex.support_counts` pays a per-call canonicalisation
    and length-grouping pass over the itemset collection. A streaming
    workload counts the *same* collection against hundreds of small
    chunk indexes, so the plan hoists all of that out: itemsets are
    canonicalised, grouped by length, and laid out as gather-index
    matrices once; :meth:`count` then reduces to pure numpy work
    (stripe gather, stacked ``bitwise_and``, one popcount pass) per
    length group.

    A plan is index-independent: it can be executed against any
    :class:`BitmapIndex` whose item universe covers the plan's items --
    every per-shard and per-chunk index of the same stream.
    """

    def __init__(self, itemsets: Sequence[Iterable[int]]) -> None:
        canon = [tuple(sorted({int(i) for i in s})) for s in itemsets]
        self.n_itemsets = len(canon)
        self.max_item = max((t[-1] for t in canon if t), default=-1)
        by_len: dict[int, list[int]] = {}
        for pos, t in enumerate(canon):
            by_len.setdefault(len(t), []).append(pos)
        self._empty = np.array(by_len.pop(0, []), dtype=np.intp)
        self._groups: list[tuple[np.ndarray, np.ndarray]] = []
        for _length, positions in sorted(by_len.items()):
            pos_arr = np.array(positions, dtype=np.intp)
            ids = np.array([canon[p] for p in positions], dtype=np.int64)
            self._groups.append((pos_arr, ids))

    def count(
        self, index: BitmapIndex, *, start: int = 0, stop: int | None = None
    ) -> np.ndarray:
        """Support counts of the planned itemsets over ``index``.

        ``start``/``stop`` restrict counting to the contiguous row range
        ``[start, stop)``: the byte slice covering the range is reduced
        as usual and the out-of-range bits of the boundary bytes are
        masked off, so a ranged count equals building a fresh index from
        exactly those rows and counting it (property-tested). Contiguous
        ranges are how shard fans and chunked scans split a *shared*
        index without copying a single stripe.
        """
        metrics().inc("bitmap.plan.count_calls")
        n = index.n_transactions
        stop = n if stop is None else stop
        if not 0 <= start <= stop <= n:
            raise InvalidParameterError(
                f"row range [{start}, {stop}) outside [0, {n}]"
            )
        if self.max_item >= index.n_items:
            raise InvalidParameterError(
                f"plan references item {self.max_item} outside the index's "
                f"universe [0, {index.n_items})"
            )
        out = np.empty(self.n_itemsets, dtype=np.int64)
        if self._empty.size:
            out[self._empty] = stop - start
        b0, b1 = start >> 3, (stop + 7) >> 3
        bits = index._bits[:, b0:b1]
        n_bytes = bits.shape[1]
        # Boundary masks (bits are MSB-first): the first byte keeps the
        # positions >= start % 8, the last keeps those < stop % 8. Also
        # applied to a full-range count whose row count is not a byte
        # multiple -- committed data has a zero tail there, so the mask
        # changes nothing, but it keeps counts over an attached snapshot
        # immune to bits an owner scattered after the commit.
        first_mask = np.uint8(0xFF >> (start & 7))
        last_mask = np.uint8(0xFF if stop % 8 == 0 else (0xFF << (8 - stop % 8)) & 0xFF)
        masked = n_bytes > 0 and (first_mask != 0xFF or last_mask != 0xFF)
        padded = n_bytes + (-n_bytes) % 8 if _HAS_BITWISE_COUNT else n_bytes
        for pos_arr, ids in self._groups:
            length = ids.shape[1]
            full = np.zeros((len(pos_arr), padded), dtype=np.uint8)
            acc = full[:, :n_bytes]
            chunk = max(1, _MAX_STRIPE_BYTES // max(1, length * n_bytes))
            for gstart in range(0, len(pos_arr), chunk):
                stripes = bits[ids[gstart : gstart + chunk]]
                acc[gstart : gstart + chunk] = np.bitwise_and.reduce(
                    stripes, axis=1
                )
            if masked:
                acc[:, 0] &= first_mask
                acc[:, -1] &= last_mask
            out[pos_arr] = _popcount_rows(full)
        return out


class TransactionDataset:
    """An immutable sequence of transactions over ``n_items`` items."""

    def __init__(
        self,
        transactions: Iterable[Iterable[int]],
        n_items: int,
    ) -> None:
        if n_items <= 0:
            raise InvalidParameterError("n_items must be positive")
        cleaned: list[tuple[int, ...]] = []
        for t in transactions:
            items = tuple(sorted(set(int(i) for i in t)))
            if items and (items[0] < 0 or items[-1] >= n_items):
                raise InvalidParameterError(
                    f"transaction {items} has items outside [0, {n_items})"
                )
            cleaned.append(items)
        self._transactions = cleaned
        self.n_items = n_items
        self._index: BitmapIndex | None = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._transactions)

    @property
    def n_rows(self) -> int:
        return len(self._transactions)

    @property
    def transactions(self) -> list[tuple[int, ...]]:
        return self._transactions

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        return iter(self._transactions)

    @property
    def index(self) -> BitmapIndex:
        """The (lazily built, cached) bitmap index over this dataset."""
        if self._index is None:
            self._index = BitmapIndex(self._transactions, self.n_items)
        return self._index

    def drop_index(self) -> None:
        """Discard the cached bitmap index.

        Benchmarks call this so a timed deviation honestly includes the
        dataset scan (index construction), as in the paper's Figure 13
        timing columns.
        """
        self._index = None

    # ------------------------------------------------------------------ #
    # Support queries
    # ------------------------------------------------------------------ #

    def support_count(self, items: Iterable[int]) -> int:
        """Absolute number of transactions containing ``items``."""
        return self.index.support_count(items)

    def itemset_selectivity(self, items: Iterable[int]) -> float:
        """Support (fraction of transactions) of an itemset; 0 on empty data."""
        if not self._transactions:
            return 0.0
        return self.support_count(items) / len(self._transactions)

    # ------------------------------------------------------------------ #
    # Dataset algebra
    # ------------------------------------------------------------------ #

    def take(self, indices: np.ndarray) -> "TransactionDataset":
        """A new dataset with the transactions at ``indices`` (repeats OK)."""
        txns = [self._transactions[int(i)] for i in np.asarray(indices)]
        return TransactionDataset(txns, self.n_items)

    def concat(self, other: "TransactionDataset") -> "TransactionDataset":
        """Append another dataset over the same item universe."""
        if other.n_items != self.n_items:
            raise InvalidParameterError(
                "cannot concatenate datasets with different item universes"
            )
        return TransactionDataset(
            self._transactions + other._transactions, self.n_items
        )

    def average_length(self) -> float:
        """Mean transaction length (diagnostics for the generator tests)."""
        if not self._transactions:
            return 0.0
        return sum(len(t) for t in self._transactions) / len(self._transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionDataset(n={len(self)}, items={self.n_items}, "
            f"avg_len={self.average_length():.2f})"
        )
