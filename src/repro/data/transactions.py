"""Market-basket transaction datasets and their packed-bitmap index.

A :class:`TransactionDataset` is a bag of itemsets over an item universe
``{0, ..., n_items - 1}``. Support queries drive everything lits-model
related: mining (Apriori candidates), extending a model to the GCR
(counting the *other* model's itemsets), and focussed deviations.

The :class:`BitmapIndex` packs each item's occurrence vector into bits
(one ``uint8`` row stripe per item), so the support of an itemset is a
few ``bitwise_and`` passes plus a popcount -- a single conceptual scan
of the data, built once and reused for any number of itemsets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidParameterError

# Popcount lookup for uint8 values; POPCOUNT[b] = number of set bits in b.
POPCOUNT = np.array([bin(b).count("1") for b in range(256)], dtype=np.uint32)


class BitmapIndex:
    """Packed bit matrix: row per item, bit per transaction."""

    def __init__(self, transactions: Sequence[tuple[int, ...]], n_items: int) -> None:
        n = len(transactions)
        self.n_transactions = n
        self.n_items = n_items
        n_bytes = (n + 7) // 8
        bits = np.zeros((n_items, n_bytes), dtype=np.uint8)
        # Set bit (MSB-first within each byte) for each (item, tid) pair.
        if n:
            tids: list[int] = []
            items: list[int] = []
            for tid, t in enumerate(transactions):
                for item in t:
                    items.append(item)
                    tids.append(tid)
            items_arr = np.array(items, dtype=np.int64)
            tids_arr = np.array(tids, dtype=np.int64)
            byte_idx = tids_arr >> 3
            bit_val = (np.uint8(128) >> (tids_arr & 7)).astype(np.uint8)
            np.bitwise_or.at(bits, (items_arr, byte_idx), bit_val)
        self._bits = bits

    def item_bits(self, item: int) -> np.ndarray:
        """The packed occurrence vector of a single item."""
        return self._bits[item]

    def item_support_counts(self) -> np.ndarray:
        """Support counts of every single item, in one popcount pass."""
        return POPCOUNT[self._bits].sum(axis=1).astype(np.int64)

    def support_count(self, items: Iterable[int]) -> int:
        """Number of transactions containing every item in ``items``.

        The empty itemset is contained in every transaction.
        """
        items = sorted(set(int(i) for i in items))
        if not items:
            return self.n_transactions
        acc = self._bits[items[0]]
        for item in items[1:]:
            acc = np.bitwise_and(acc, self._bits[item])
        return int(POPCOUNT[acc].sum())

    def support_counts(self, itemsets: Sequence[Iterable[int]]) -> np.ndarray:
        """Support counts for a collection of itemsets (one pass each)."""
        return np.array([self.support_count(x) for x in itemsets], dtype=np.int64)

    def intersection_bits(self, items: Iterable[int]) -> np.ndarray:
        """Packed membership vector of transactions containing ``items``."""
        items = sorted(set(int(i) for i in items))
        if not items:
            n_bytes = self._bits.shape[1] if self.n_items else (self.n_transactions + 7) // 8
            full = np.full(n_bytes, 255, dtype=np.uint8)
            # Mask off padding bits beyond the last transaction.
            extra = n_bytes * 8 - self.n_transactions
            if extra and n_bytes:
                full[-1] = np.uint8(0xFF << extra & 0xFF)
            return full
        acc = self._bits[items[0]].copy()
        for item in items[1:]:
            np.bitwise_and(acc, self._bits[item], out=acc)
        return acc


class TransactionDataset:
    """An immutable sequence of transactions over ``n_items`` items."""

    def __init__(
        self,
        transactions: Iterable[Iterable[int]],
        n_items: int,
    ) -> None:
        if n_items <= 0:
            raise InvalidParameterError("n_items must be positive")
        cleaned: list[tuple[int, ...]] = []
        for t in transactions:
            items = tuple(sorted(set(int(i) for i in t)))
            if items and (items[0] < 0 or items[-1] >= n_items):
                raise InvalidParameterError(
                    f"transaction {items} has items outside [0, {n_items})"
                )
            cleaned.append(items)
        self._transactions = cleaned
        self.n_items = n_items
        self._index: BitmapIndex | None = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._transactions)

    @property
    def n_rows(self) -> int:
        return len(self._transactions)

    @property
    def transactions(self) -> list[tuple[int, ...]]:
        return self._transactions

    def __iter__(self):
        return iter(self._transactions)

    @property
    def index(self) -> BitmapIndex:
        """The (lazily built, cached) bitmap index over this dataset."""
        if self._index is None:
            self._index = BitmapIndex(self._transactions, self.n_items)
        return self._index

    def drop_index(self) -> None:
        """Discard the cached bitmap index.

        Benchmarks call this so a timed deviation honestly includes the
        dataset scan (index construction), as in the paper's Figure 13
        timing columns.
        """
        self._index = None

    # ------------------------------------------------------------------ #
    # Support queries
    # ------------------------------------------------------------------ #

    def support_count(self, items: Iterable[int]) -> int:
        """Absolute number of transactions containing ``items``."""
        return self.index.support_count(items)

    def itemset_selectivity(self, items: Iterable[int]) -> float:
        """Support (fraction of transactions) of an itemset; 0 on empty data."""
        if not self._transactions:
            return 0.0
        return self.support_count(items) / len(self._transactions)

    # ------------------------------------------------------------------ #
    # Dataset algebra
    # ------------------------------------------------------------------ #

    def take(self, indices: np.ndarray) -> "TransactionDataset":
        """A new dataset with the transactions at ``indices`` (repeats OK)."""
        txns = [self._transactions[int(i)] for i in np.asarray(indices)]
        return TransactionDataset(txns, self.n_items)

    def concat(self, other: "TransactionDataset") -> "TransactionDataset":
        """Append another dataset over the same item universe."""
        if other.n_items != self.n_items:
            raise InvalidParameterError(
                "cannot concatenate datasets with different item universes"
            )
        return TransactionDataset(
            self._transactions + other._transactions, self.n_items
        )

    def average_length(self) -> float:
        """Mean transaction length (diagnostics for the generator tests)."""
        if not self._transactions:
            return 0.0
        return sum(len(t) for t in self._transactions) / len(self._transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionDataset(n={len(self)}, items={self.n_items}, "
            f"avg_len={self.average_length():.2f})"
        )
