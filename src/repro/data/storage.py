"""Columnar stripe storage: interchangeable in-RAM and memory-mapped backends.

Every columnar buffer in the data plane -- the item bit-stripes of a
:class:`~repro.data.transactions.BitmapIndex`, the ``X``/``y`` column
stripes of a :class:`~repro.stream.chunks.TabularLog` -- is owned by a
:class:`StripeStore`. The store abstracts *where the bytes live*:

* :class:`RamStripeStore` -- plain numpy arrays, the historical
  behaviour. Zero overhead; nothing touches disk.
* :class:`MmapStripeStore` -- one memory-mapped file per stripe inside
  a stripe directory, plus an atomically-replaced ``manifest.json``
  recording the committed shapes and row counts. Logs larger than RAM
  stream through the OS page cache, and a process fan-out ships a tiny
  picklable :class:`StripeHandle` instead of the rows: workers
  re-map the same files read-only (:func:`attach`), so the kernel
  shares one physical copy of the data across every worker --
  zero-copy in the page-cache sense, pinned by the ``bytes_shipped``
  obs counter staying 0.

Crash consistency (against process kill, the deployment failure mode):
appends write stripe bytes first and publish the new logical row count
last, via an atomic temp-file + ``os.replace`` of the manifest. A kill
between the two leaves garbage *beyond* the committed row count only;
reopening (:meth:`MmapStripeStore.open`) truncates back to the
manifest's counts and the recovery masking in the index/log adopters
zeroes the uncommitted tail. (Durability against power loss would
additionally need ``msync``/``fsync`` -- call :meth:`StripeStore.flush`
explicitly for that.)

Capacity-doubling growth is preserved: :meth:`StripeStore.resize` grows
a stripe keeping its prefix. The mmap backend extends the file in place
when only the leading axis grows (C-order append: no copy) and writes a
new generation file otherwise (the bitmap's packed width doubling);
stale generations are garbage-collected only after the manifest no
longer references them, so a kill mid-growth never orphans live data.
"""

from __future__ import annotations

import json
import mmap
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Literal, Mapping

import numpy as np

from repro.errors import InvalidParameterError
from repro.obs import metrics

#: Default budget for a chunked out-of-core scan: the scanner sizes its
#: row blocks so one block's working set stays under this many bytes.
#: Override per call or with the ``REPRO_SCAN_BUDGET_BYTES`` env var.
_DEFAULT_SCAN_BUDGET_BYTES = 1 << 26  # 64 MiB

MANIFEST_NAME = "manifest.json"


def scan_budget_bytes(budget_bytes: int | None = None) -> int:
    """Resolve the chunked-scan budget: param, env var, or default."""
    if budget_bytes is not None:
        if budget_bytes < 1:
            raise InvalidParameterError("budget_bytes must be >= 1")
        return int(budget_bytes)
    env = os.environ.get("REPRO_SCAN_BUDGET_BYTES")
    if env:
        return int(env)
    return _DEFAULT_SCAN_BUDGET_BYTES


@dataclass(frozen=True)
class StripeHandle:
    """A picklable, byte-cheap reference to a committed stripe set.

    Everything a worker needs to re-map the stripes read-only: the
    directory, each stripe's file name / shape / dtype as of the last
    commit, and the committed metadata (logical row counts). Shipping a
    handle over a process boundary costs a few hundred bytes no matter
    how large the stripes are; the data itself travels through the
    shared OS page cache.
    """

    stripe_dir: str
    stripes: tuple[tuple[str, str, tuple[int, ...], str], ...]
    meta: tuple[tuple[str, int], ...]

    def meta_dict(self) -> dict[str, int]:
        return dict(self.meta)


class StripeStore:
    """Abstract owner of named, growable columnar stripes.

    Subclasses decide the storage medium. The contract shared by all
    backends:

    * :meth:`create` allocates a zero-initialised stripe and returns the
      live array; :meth:`resize` grows it (prefix preserved) and returns
      the new live array -- any previously returned array is stale after
      a resize, exactly like a reallocating append buffer.
    * ``meta`` is a small caller-owned ``str -> int`` mapping (logical
      row counts, universe sizes); :meth:`commit` publishes the current
      stripe shapes *and* meta atomically, defining the state a reopen
      or a :class:`StripeHandle` attach recovers to.
    """

    def __init__(self) -> None:
        self.meta: dict[str, int] = {}

    def create(
        self, name: str, shape: tuple[int, ...], dtype: Any
    ) -> np.ndarray:
        raise NotImplementedError

    def resize(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        raise NotImplementedError

    def stripe(self, name: str) -> np.ndarray:
        raise NotImplementedError

    def names(self) -> tuple[str, ...]:
        raise NotImplementedError

    def commit(self) -> None:
        """Publish the current shapes + meta (atomic for disk backends)."""
        raise NotImplementedError

    def handle(self) -> StripeHandle | None:
        """A shippable reference to the committed stripes, or ``None``
        when the backend has no shared medium (RAM)."""
        return None

    def flush(self) -> None:
        """Force written bytes to durable storage (no-op off-disk)."""

    def release(self, name: str) -> None:
        """Drop OS page residency of a stripe (no-op off-disk).

        A chunked scan calls this between blocks so its resident-set
        high-water stays near one block: pages already scanned are
        unmapped from this process (they remain in the shared page
        cache, so a refault is a minor fault, not disk IO).
        """

    def close(self) -> None:
        """Release backend resources; the store is unusable afterwards."""

    @staticmethod
    def _check_growth(old: tuple[int, ...], new: tuple[int, ...]) -> None:
        if len(old) != len(new) or any(n < o for o, n in zip(old, new)):
            raise InvalidParameterError(
                f"resize must grow a stripe axis-wise: {old} -> {new}"
            )


class RamStripeStore(StripeStore):
    """The in-RAM backend: stripes are ordinary numpy arrays.

    ``commit`` records a snapshot of ``meta`` (so ``committed_meta``
    mirrors the disk backend's recovery point for tests), but there is
    nothing to reopen and :meth:`handle` returns ``None``: a process
    fan-out over a RAM store must ship the bytes themselves.
    """

    def __init__(self) -> None:
        super().__init__()
        self._stripes: dict[str, np.ndarray] = {}
        self.committed_meta: dict[str, int] = {}

    def create(
        self, name: str, shape: tuple[int, ...], dtype: Any
    ) -> np.ndarray:
        if name in self._stripes:
            raise InvalidParameterError(f"stripe {name!r} already exists")
        arr = np.zeros(shape, dtype=dtype)
        self._stripes[name] = arr
        return arr

    def resize(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        old = self._stripes[name]
        self._check_growth(old.shape, tuple(shape))
        grown = np.zeros(shape, dtype=old.dtype)
        prefix = tuple(slice(0, s) for s in old.shape)
        grown[prefix] = old
        self._stripes[name] = grown
        return grown

    def stripe(self, name: str) -> np.ndarray:
        return self._stripes[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self._stripes)

    def commit(self) -> None:
        self.committed_meta = dict(self.meta)


class MmapStripeStore(StripeStore):
    """The on-disk backend: one memory-mapped file per stripe.

    Layout of the stripe directory::

        manifest.json        # committed shapes, dtypes, file names, meta
        <name>.<gen>.stripe  # raw C-order bytes of one stripe

    The manifest is the single source of truth for what is committed;
    it is replaced atomically (temp file + ``os.replace``). Files not
    referenced by the manifest are garbage from an interrupted growth
    and are removed on :meth:`open`.
    """

    def __init__(self, stripe_dir: str | Path) -> None:
        super().__init__()
        self._dir = Path(stripe_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        if (self._dir / MANIFEST_NAME).exists():
            raise InvalidParameterError(
                f"{self._dir} already holds a stripe store; use "
                "MmapStripeStore.open() to reopen it"
            )
        self._maps: dict[str, np.ndarray] = {}
        self._files: dict[str, str] = {}
        self._gen: dict[str, int] = {}
        self._garbage: list[str] = []
        self.commit()

    # ------------------------------------------------------------------ #
    # Construction / reopen
    # ------------------------------------------------------------------ #

    @classmethod
    def open(cls, stripe_dir: str | Path) -> "MmapStripeStore":
        """Reopen a committed store, truncating to its manifest state.

        Stripe shapes and meta roll back to the last commit; bytes
        written after it (a killed mid-append) are left in the files but
        sit beyond the committed logical counts, where the adopting
        index/log masks them. Unreferenced generation files are deleted.
        """
        path = Path(stripe_dir)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        self = object.__new__(cls)
        StripeStore.__init__(self)
        self._dir = path
        self._maps = {}
        self._files = {}
        self._gen = {}
        self._garbage = []
        self.meta = {k: int(v) for k, v in manifest["meta"].items()}
        live = {MANIFEST_NAME}
        for name, spec in manifest["stripes"].items():
            shape = tuple(int(s) for s in spec["shape"])
            self._files[name] = spec["file"]
            self._gen[name] = int(spec["file"].rsplit(".", 2)[-2])
            self._maps[name] = _map_file(
                path / spec["file"], shape, np.dtype(spec["dtype"]), "r+"
            )
            live.add(spec["file"])
        for stale in path.iterdir():
            if stale.name.endswith(".stripe") and stale.name not in live:
                stale.unlink()
        return self

    # ------------------------------------------------------------------ #
    # Stripe lifecycle
    # ------------------------------------------------------------------ #

    def create(
        self, name: str, shape: tuple[int, ...], dtype: Any
    ) -> np.ndarray:
        if name in self._maps:
            raise InvalidParameterError(f"stripe {name!r} already exists")
        self._gen[name] = 0
        return self._new_generation(name, tuple(shape), np.dtype(dtype))

    def resize(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        old = self._maps[name]
        new_shape = tuple(shape)
        self._check_growth(old.shape, new_shape)
        if new_shape == old.shape:
            return old
        if old.size and new_shape[1:] == old.shape[1:]:
            # Pure leading-axis growth of a C-order stripe is a file
            # append: extend in place, no copy. The added bytes read as
            # zeros (ftruncate) and the manifest still records the old
            # shape until the next commit.
            path = self._dir / self._files[name]
            with path.open("r+b") as f:
                f.truncate(int(np.prod(new_shape)) * old.dtype.itemsize)
            self._maps[name] = _map_file(path, new_shape, old.dtype, "r+")
            return self._maps[name]
        # Other growth (the bitmap's packed width doubling) rewrites the
        # stripe into a new generation file; the old file stays on disk
        # until a commit stops referencing it, so a kill mid-copy loses
        # nothing.
        self._garbage.append(self._files[name])
        self._gen[name] += 1
        grown = self._new_generation(name, new_shape, old.dtype)
        prefix = tuple(slice(0, s) for s in old.shape)
        grown[prefix] = old
        return grown

    def _new_generation(
        self, name: str, shape: tuple[int, ...], dtype: np.dtype[Any]
    ) -> np.ndarray:
        fname = f"{name}.{self._gen[name]}.stripe"
        path = self._dir / fname
        nbytes = int(np.prod(shape)) * dtype.itemsize
        with path.open("wb") as f:
            f.truncate(nbytes)
        self._files[name] = fname
        self._maps[name] = _map_file(path, shape, dtype, "r+")
        return self._maps[name]

    def stripe(self, name: str) -> np.ndarray:
        return self._maps[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self._maps)

    # ------------------------------------------------------------------ #
    # Commit / handle / residency
    # ------------------------------------------------------------------ #

    def commit(self) -> None:
        """Atomically publish the current shapes + meta, then GC.

        Write ordering is the crash-consistency argument: stripe bytes
        are already in the (kill-surviving) page cache when the manifest
        replace lands, so every state the directory can be observed in
        is either the old commit or the new one.
        """
        manifest = {
            "version": 1,
            "meta": dict(self.meta),
            "stripes": {
                name: {
                    "file": self._files[name],
                    "shape": list(arr.shape),
                    "dtype": arr.dtype.name,
                }
                for name, arr in self._maps.items()
            },
        }
        tmp = self._dir / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        os.replace(tmp, self._dir / MANIFEST_NAME)
        live = set(self._files.values())
        for fname in self._garbage:
            if fname not in live:
                (self._dir / fname).unlink(missing_ok=True)
        self._garbage.clear()

    def handle(self) -> StripeHandle:
        return StripeHandle(
            stripe_dir=str(self._dir),
            stripes=tuple(
                (name, self._files[name], tuple(arr.shape), arr.dtype.name)
                for name, arr in self._maps.items()
            ),
            meta=tuple(sorted(self.meta.items())),
        )

    def flush(self) -> None:
        for arr in self._maps.values():
            if arr.size:
                arr.flush()  # type: ignore[attr-defined]

    def release(self, name: str) -> None:
        arr = self._maps.get(name)
        if arr is None or not arr.size:
            return
        raw = getattr(arr, "_mmap", None)
        if raw is not None:
            raw.madvise(mmap.MADV_DONTNEED)

    def close(self) -> None:
        self._maps.clear()
        self._files.clear()


class AttachedStripeStore(StripeStore):
    """A worker-side, read-only view of a committed stripe set.

    Built by :func:`attach` from a :class:`StripeHandle`; exposes the
    same ``stripe()``/``meta`` surface the owning store does, so an
    index adopter cannot tell the difference -- except that every
    mutation (create/resize/commit) raises. Maps share the owner's page
    cache: attaching ships zero data bytes.
    """

    def __init__(self, handle: StripeHandle) -> None:
        super().__init__()
        self._handle = handle
        self.meta = handle.meta_dict()
        base = Path(handle.stripe_dir)
        self._maps = {
            name: _map_file(base / fname, shape, np.dtype(dtype), "r")
            for name, fname, shape, dtype in handle.stripes
        }
        metrics().inc("storage.stripes_attached", len(self._maps))

    def stripe(self, name: str) -> np.ndarray:
        return self._maps[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self._maps)

    def handle(self) -> StripeHandle:
        return self._handle

    def create(
        self, name: str, shape: tuple[int, ...], dtype: Any
    ) -> np.ndarray:
        raise InvalidParameterError("attached stripe stores are read-only")

    def resize(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        raise InvalidParameterError("attached stripe stores are read-only")

    def commit(self) -> None:
        raise InvalidParameterError("attached stripe stores are read-only")

    def release(self, name: str) -> None:
        arr = self._maps.get(name)
        if arr is None or not arr.size:
            return
        raw = getattr(arr, "_mmap", None)
        if raw is not None:
            raw.madvise(mmap.MADV_DONTNEED)

    def close(self) -> None:
        self._maps.clear()


def attach(handle: StripeHandle) -> AttachedStripeStore:
    """Map a shipped handle's stripes read-only (zero data bytes moved)."""
    return AttachedStripeStore(handle)


def open_store(stripe_dir: str | Path) -> MmapStripeStore:
    """Reopen the committed store in ``stripe_dir`` (recovery entry point)."""
    return MmapStripeStore.open(stripe_dir)


def make_store(
    backend: str, stripe_dir: str | Path | None = None
) -> StripeStore:
    """Construct a fresh store for ``backend`` (``"ram"`` or ``"mmap"``)."""
    if backend == "ram":
        return RamStripeStore()
    if backend == "mmap":
        if stripe_dir is None:
            raise InvalidParameterError(
                "the mmap backend needs a stripe_dir to hold its files"
            )
        return MmapStripeStore(stripe_dir)
    raise InvalidParameterError(
        f"unknown storage backend {backend!r}; expected 'ram' or 'mmap'"
    )


def iter_row_blocks(
    n_rows: int, rows_per_block: int
) -> Iterator[tuple[int, int]]:
    """Contiguous ``[start, stop)`` row ranges covering ``n_rows``."""
    if rows_per_block < 1:
        raise InvalidParameterError("rows_per_block must be >= 1")
    for start in range(0, n_rows, rows_per_block):
        yield start, min(n_rows, start + rows_per_block)


def _map_file(
    path: Path,
    shape: tuple[int, ...],
    dtype: np.dtype[Any],
    mode: Literal["r", "r+"],
) -> np.ndarray:
    """``np.memmap`` of ``path`` as ``shape``; degenerate shapes skip IO.

    ``np.memmap`` rejects zero-length maps, so empty stripes (a fresh
    index over zero rows) are represented as ordinary empty arrays until
    a resize gives them bytes.
    """
    if int(np.prod(shape)) == 0:
        return np.zeros(shape, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode=mode, shape=shape)


def manifest_meta(stripe_dir: str | Path) -> Mapping[str, int]:
    """The committed meta of a stripe directory, without mapping stripes."""
    manifest = json.loads((Path(stripe_dir) / MANIFEST_NAME).read_text())
    return {k: int(v) for k, v in manifest["meta"].items()}
