"""Flat-file persistence for datasets.

Tabular datasets round-trip through ``.npz`` (matrix + labels) plus an
embedded JSON schema; transaction datasets use the classic one-line-per-
transaction text format that Apriori implementations exchange.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.attribute import Attribute, AttributeKind, AttributeSpace
from repro.data.tabular import TabularDataset
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError


def _space_to_dict(space: AttributeSpace) -> dict[str, Any]:
    return {
        "attributes": [
            {
                "name": a.name,
                "kind": a.kind.value,
                "low": a.low,
                "high": a.high,
                "values": list(a.values),
            }
            for a in space.attributes
        ],
        "class_labels": list(space.class_labels),
    }


def _space_from_dict(d: dict[str, Any]) -> AttributeSpace:
    attributes = tuple(
        Attribute(
            name=a["name"],
            kind=AttributeKind(a["kind"]),
            low=a["low"],
            high=a["high"],
            values=tuple(a["values"]),
        )
        for a in d["attributes"]
    )
    return AttributeSpace(attributes, tuple(d["class_labels"]))


def save_tabular(dataset: TabularDataset, path: str | Path) -> None:
    """Write a tabular dataset to ``path`` (``.npz``)."""
    path = Path(path)
    schema = json.dumps(_space_to_dict(dataset.space))
    arrays = {"X": dataset.X, "schema": np.array(schema)}
    if dataset.y is not None:
        arrays["y"] = dataset.y
    np.savez_compressed(path, **arrays)


def load_tabular(path: str | Path) -> TabularDataset:
    """Read a tabular dataset written by :func:`save_tabular`."""
    with np.load(Path(path), allow_pickle=False) as data:
        space = _space_from_dict(json.loads(str(data["schema"])))
        y = data["y"] if "y" in data.files else None
        return TabularDataset(space, data["X"], y)


def save_transactions(dataset: TransactionDataset, path: str | Path) -> None:
    """Write transactions as space-separated item ids, one line each.

    The first line is a header comment recording the item universe size.
    """
    path = Path(path)
    with path.open("w") as f:
        f.write(f"# n_items={dataset.n_items}\n")
        for txn in dataset:
            f.write(" ".join(str(i) for i in txn))
            f.write("\n")


def load_transactions(path: str | Path) -> TransactionDataset:
    """Read transactions written by :func:`save_transactions`."""
    path = Path(path)
    n_items: int | None = None
    transactions: list[tuple[int, ...]] = []
    with path.open() as f:
        for line in f:
            line = line.strip()
            if line.startswith("#"):
                if "n_items=" in line:
                    n_items = int(line.split("n_items=")[1])
                continue
            if line:
                transactions.append(tuple(int(tok) for tok in line.split()))
            else:
                transactions.append(())
    if n_items is None:
        raise InvalidParameterError(f"{path} lacks the '# n_items=' header")
    return TransactionDataset(transactions, n_items)
