"""Datasets, synthetic generators, sampling, and flat-file IO."""

from repro.data.io import (
    load_tabular,
    load_transactions,
    save_tabular,
    save_transactions,
)
from repro.data.model_io import (
    load_dt_model,
    load_lits_model,
    save_dt_model,
    save_lits_model,
)
from repro.data.quest_basket import PatternPool, build_pattern_pool, generate_basket
from repro.data.quest_classify import (
    CLASSIFICATION_FUNCTIONS,
    GROUP_A,
    GROUP_B,
    assign_labels,
    classification_space,
    generate_classification,
)
from repro.data.sampling import (
    bootstrap_pair,
    sample,
    sample_indices,
    sample_n,
    split_halves,
)
from repro.data.storage import (
    AttachedStripeStore,
    MmapStripeStore,
    RamStripeStore,
    StripeHandle,
    StripeStore,
    attach,
    iter_row_blocks,
    make_store,
    open_store,
    scan_budget_bytes,
)
from repro.data.tabular import TabularDataset, from_rows
from repro.data.transactions import (
    BitmapIndex,
    SupportCountingPlan,
    TransactionDataset,
)

__all__ = [
    "AttachedStripeStore",
    "BitmapIndex",
    "CLASSIFICATION_FUNCTIONS",
    "GROUP_A",
    "GROUP_B",
    "MmapStripeStore",
    "PatternPool",
    "RamStripeStore",
    "StripeHandle",
    "StripeStore",
    "SupportCountingPlan",
    "TabularDataset",
    "TransactionDataset",
    "assign_labels",
    "attach",
    "bootstrap_pair",
    "build_pattern_pool",
    "classification_space",
    "from_rows",
    "generate_basket",
    "generate_classification",
    "iter_row_blocks",
    "load_dt_model",
    "load_lits_model",
    "load_tabular",
    "load_transactions",
    "make_store",
    "open_store",
    "sample",
    "save_dt_model",
    "save_lits_model",
    "sample_indices",
    "sample_n",
    "save_tabular",
    "scan_budget_bytes",
    "save_transactions",
    "split_halves",
]
