"""IBM synthetic classification-data generator (Agrawal et al., TKDE 1993).

This is the generator the paper uses for all dt-model experiments
(Section 6.1.2: "We use the synthetic generator introduced in [2]").
It produces nine-attribute "people" records:

========== ============ ==========================================
attribute  kind         distribution
========== ============ ==========================================
salary     numeric      uniform [20000, 150000)
commission numeric      0 if salary >= 75000 else uniform [10000, 75000)
age        numeric      uniform [20, 81)
elevel     categorical  uniform {0..4}
car        categorical  uniform {1..20}
zipcode    categorical  uniform {0..8}
hvalue     numeric      uniform [k*50000, k*150000), k = zipcode + 1
hyears     numeric      uniform [1, 31)
loan       numeric      uniform [0, 500000)
========== ============ ==========================================

Ten classification functions ``F1``..``F10`` assign each record to Group A
(class 0) or Group B (class 1); the paper's experiments use F1-F4. The
function definitions follow the TKDE'93 paper as conventionally
re-implemented by the SLIQ/SPRINT line of work. Note that F9 and F10 are
heavily skewed towards Group A (their disposable-income formulas add the
loan/equity terms), which is why the benchmark literature -- including
this paper -- sticks to the earlier functions.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.attribute import AttributeSpace, categorical, numeric
from repro.data.tabular import TabularDataset
from repro.errors import InvalidParameterError

GROUP_A = 0
GROUP_B = 1

#: Column order of the generated matrix.
ATTRIBUTE_NAMES = (
    "salary",
    "commission",
    "age",
    "elevel",
    "car",
    "zipcode",
    "hvalue",
    "hyears",
    "loan",
)


def classification_space() -> AttributeSpace:
    """The attribute space shared by every generated classification dataset."""
    return AttributeSpace(
        attributes=(
            numeric("salary", 20_000, 150_000),
            numeric("commission", 0, 75_000),
            numeric("age", 20, 81),
            categorical("elevel", range(0, 5)),
            categorical("car", range(1, 21)),
            categorical("zipcode", range(0, 9)),
            numeric("hvalue", 0, 9 * 150_000),
            numeric("hyears", 1, 31),
            numeric("loan", 0, 500_000),
        ),
        class_labels=(GROUP_A, GROUP_B),
    )


def _columns(X: np.ndarray) -> dict[str, np.ndarray]:
    return {name: X[:, i] for i, name in enumerate(ATTRIBUTE_NAMES)}


# --------------------------------------------------------------------- #
# Classification functions F1..F10.
# Each takes the attribute columns and returns a boolean "in Group A".
# --------------------------------------------------------------------- #


def _f1(c: dict[str, np.ndarray]) -> np.ndarray:
    age = c["age"]
    return (age < 40) | (age >= 60)


def _f2(c: dict[str, np.ndarray]) -> np.ndarray:
    age, salary = c["age"], c["salary"]
    return (
        ((age < 40) & (50_000 <= salary) & (salary <= 100_000))
        | ((40 <= age) & (age < 60) & (75_000 <= salary) & (salary <= 125_000))
        | ((age >= 60) & (25_000 <= salary) & (salary <= 75_000))
    )


def _f3(c: dict[str, np.ndarray]) -> np.ndarray:
    age, elevel = c["age"], c["elevel"]
    return (
        ((age < 40) & np.isin(elevel, (0, 1)))
        | ((40 <= age) & (age < 60) & np.isin(elevel, (1, 2, 3)))
        | ((age >= 60) & np.isin(elevel, (2, 3, 4)))
    )


def _f4(c: dict[str, np.ndarray]) -> np.ndarray:
    age, elevel, salary = c["age"], c["elevel"], c["salary"]
    young = age < 40
    middle = (40 <= age) & (age < 60)
    old = age >= 60
    return (
        (
            young
            & np.where(
                np.isin(elevel, (0, 1)),
                (25_000 <= salary) & (salary <= 75_000),
                (50_000 <= salary) & (salary <= 100_000),
            )
        )
        | (
            middle
            & np.where(
                np.isin(elevel, (1, 2, 3)),
                (50_000 <= salary) & (salary <= 100_000),
                (75_000 <= salary) & (salary <= 125_000),
            )
        )
        | (
            old
            & np.where(
                np.isin(elevel, (2, 3, 4)),
                (50_000 <= salary) & (salary <= 100_000),
                (25_000 <= salary) & (salary <= 75_000),
            )
        )
    )


def _f5(c: dict[str, np.ndarray]) -> np.ndarray:
    age, salary, loan = c["age"], c["salary"], c["loan"]
    young = age < 40
    middle = (40 <= age) & (age < 60)
    old = age >= 60
    return (
        (
            young
            & np.where(
                (50_000 <= salary) & (salary <= 100_000),
                (100_000 <= loan) & (loan <= 300_000),
                (200_000 <= loan) & (loan <= 400_000),
            )
        )
        | (
            middle
            & np.where(
                (75_000 <= salary) & (salary <= 125_000),
                (200_000 <= loan) & (loan <= 400_000),
                (300_000 <= loan) & (loan <= 500_000),
            )
        )
        | (
            old
            & np.where(
                (25_000 <= salary) & (salary <= 75_000),
                (300_000 <= loan) & (loan <= 500_000),
                (100_000 <= loan) & (loan <= 300_000),
            )
        )
    )


def _f6(c: dict[str, np.ndarray]) -> np.ndarray:
    age, total = c["age"], c["salary"] + c["commission"]
    return (
        ((age < 40) & (25_000 <= total) & (total <= 75_000))
        | ((40 <= age) & (age < 60) & (50_000 <= total) & (total <= 125_000))
        | ((age >= 60) & (25_000 <= total) & (total <= 75_000))
    )


def _f7(c: dict[str, np.ndarray]) -> np.ndarray:
    disposable = (
        0.67 * (c["salary"] + c["commission"]) - 0.2 * c["loan"] - 20_000
    )
    return disposable > 0


def _f8(c: dict[str, np.ndarray]) -> np.ndarray:
    disposable = (
        0.67 * (c["salary"] + c["commission"])
        - 5_000 * c["elevel"]
        - 0.2 * c["loan"]
        - 10_000
    )
    return disposable > 0


def _f9(c: dict[str, np.ndarray]) -> np.ndarray:
    disposable = (
        0.67 * (c["salary"] + c["commission"])
        - 5_000 * c["elevel"]
        + 0.2 * c["loan"]
        - 10_000
    )
    return disposable > 0


def _f10(c: dict[str, np.ndarray]) -> np.ndarray:
    equity = 0.1 * c["hvalue"] * np.maximum(c["hyears"] - 20, 0)
    disposable = (
        0.67 * (c["salary"] + c["commission"])
        - 5_000 * c["elevel"]
        + 0.2 * equity
        - 10_000
    )
    return disposable > 0


CLASSIFICATION_FUNCTIONS: dict[int, Callable[[dict[str, np.ndarray]], np.ndarray]] = {
    1: _f1,
    2: _f2,
    3: _f3,
    4: _f4,
    5: _f5,
    6: _f6,
    7: _f7,
    8: _f8,
    9: _f9,
    10: _f10,
}


def assign_labels(X: np.ndarray, function: int) -> np.ndarray:
    """Class labels (0 = Group A, 1 = Group B) for rows under ``F<function>``."""
    if function not in CLASSIFICATION_FUNCTIONS:
        raise InvalidParameterError(
            f"unknown classification function F{function}; "
            f"have F1..F{max(CLASSIFICATION_FUNCTIONS)}"
        )
    in_group_a = CLASSIFICATION_FUNCTIONS[function](_columns(X))
    return np.where(in_group_a, GROUP_A, GROUP_B).astype(np.int64)


def generate_classification(
    n_rows: int,
    function: int = 1,
    *,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    label_noise: float = 0.0,
) -> TabularDataset:
    """Generate a labelled dataset of ``n_rows`` people records.

    Parameters
    ----------
    n_rows:
        Number of records.
    function:
        Classification function number, 1..10 (paper uses 1..4).
    seed / rng:
        Seed a fresh generator or supply one; ``rng`` wins if both given.
    label_noise:
        Probability of flipping each label (the original generator's
        "perturbation"; 0 disables it).
    """
    if n_rows < 0:
        raise InvalidParameterError("n_rows must be non-negative")
    if not 0.0 <= label_noise <= 1.0:
        raise InvalidParameterError("label_noise must be in [0, 1]")
    if rng is None:
        rng = np.random.default_rng(seed)

    salary = rng.uniform(20_000, 150_000, n_rows)
    commission = np.where(
        salary >= 75_000, 0.0, rng.uniform(10_000, 75_000, n_rows)
    )
    age = rng.uniform(20, 81, n_rows)
    elevel = rng.integers(0, 5, n_rows).astype(np.float64)
    car = rng.integers(1, 21, n_rows).astype(np.float64)
    zipcode = rng.integers(0, 9, n_rows).astype(np.float64)
    k = zipcode + 1
    hvalue = rng.uniform(k * 50_000, k * 150_000)
    hyears = rng.uniform(1, 31, n_rows)
    loan = rng.uniform(0, 500_000, n_rows)

    X = np.column_stack(
        [salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan]
    )
    y = assign_labels(X, function)
    if label_noise > 0 and n_rows:
        flip = rng.random(n_rows) < label_noise
        y = np.where(flip, 1 - y, y)
    return TabularDataset(classification_space(), X, y)
