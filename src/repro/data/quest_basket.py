"""IBM Quest synthetic market-basket generator (Agrawal & Srikant, VLDB 1994).

The paper's lits-model experiments all use this generator (Section 6.1.1:
"We used the synthetic data generator from the IBM Quest Data Mining
group"), with datasets named ``NM.tlL.kI.PPpats.pplen`` -- N million
transactions of average length tl over k thousand items, with PP thousand
potential patterns of average length p.

The generative process (faithful to the VLDB'94 description):

1. Build ``n_patterns`` potentially-frequent itemsets. Pattern sizes are
   Poisson-distributed around ``avg_pattern_len`` (min 1). Each pattern
   shares a random fraction of items with its predecessor (exponentially
   distributed with mean ``correlation``); the rest are fresh uniform
   picks. Patterns carry exponentially distributed weights (normalised to
   sum to 1) and a corruption level drawn from a clipped normal
   ``N(corruption_mean, corruption_sd)``.
2. Each transaction has a Poisson-distributed size around
   ``avg_transaction_len`` and is filled by repeatedly drawing patterns
   according to their weights. Items are dropped from a drawn pattern
   while a uniform coin is below its corruption level. An over-full
   pattern is kept anyway half the time, otherwise the transaction ends.

The defaults mirror the paper's base dataset family
(``1M.20L.1K.4000pats.4patlen``) modulo the row count, which callers
scale down via :mod:`repro.experiments.config`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class PatternPool:
    """The potentially-frequent itemsets with their weights and corruptions."""

    patterns: tuple[tuple[int, ...], ...]
    weights: np.ndarray
    corruption: np.ndarray

    def __post_init__(self) -> None:
        if len(self.patterns) != len(self.weights) or len(self.patterns) != len(
            self.corruption
        ):
            raise InvalidParameterError("pattern pool arrays must be aligned")


def build_pattern_pool(
    rng: np.random.Generator,
    n_items: int,
    n_patterns: int,
    avg_pattern_len: float,
    correlation: float = 0.5,
    corruption_mean: float = 0.5,
    corruption_sd: float = 0.1,
) -> PatternPool:
    """Generate the pool of potentially-frequent itemsets."""
    if n_patterns <= 0:
        raise InvalidParameterError("n_patterns must be positive")
    if avg_pattern_len < 1:
        raise InvalidParameterError("avg_pattern_len must be >= 1")
    patterns: list[tuple[int, ...]] = []
    previous: tuple[int, ...] = ()
    for _ in range(n_patterns):
        size = int(min(max(1, rng.poisson(avg_pattern_len - 1) + 1), n_items))
        items: set[int] = set()
        if previous:
            # Fraction of items carried over from the previous pattern;
            # exponentially distributed with the given mean, capped at 1.
            frac = min(1.0, rng.exponential(correlation))
            n_shared = min(int(round(frac * size)), len(previous), size)
            if n_shared:
                items.update(
                    rng.choice(previous, size=n_shared, replace=False).tolist()
                )
        while len(items) < size:
            items.add(int(rng.integers(0, n_items)))
        pattern = tuple(sorted(items))
        patterns.append(pattern)
        previous = pattern
    weights = rng.exponential(1.0, n_patterns)
    weights /= weights.sum()
    corruption = np.clip(
        rng.normal(corruption_mean, corruption_sd, n_patterns), 0.0, 1.0
    )
    return PatternPool(tuple(patterns), weights, corruption)


def generate_basket(
    n_transactions: int,
    *,
    n_items: int = 1000,
    avg_transaction_len: float = 20,
    n_patterns: int = 4000,
    avg_pattern_len: float = 4,
    correlation: float = 0.5,
    corruption_mean: float = 0.5,
    corruption_sd: float = 0.1,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    pool: PatternPool | None = None,
) -> TransactionDataset:
    """Generate a market-basket dataset.

    Parameters mirror the Quest generator's knobs and the paper's naming
    convention (``1M.20L.1K.4000pats.4patlen``). Pass ``pool`` to reuse
    one pattern pool across several datasets -- the paper's "same
    generating process" scenario (e.g. rows (1) of Figures 13/14).
    """
    if n_transactions < 0:
        raise InvalidParameterError("n_transactions must be non-negative")
    if avg_transaction_len < 1:
        raise InvalidParameterError("avg_transaction_len must be >= 1")
    if rng is None:
        rng = np.random.default_rng(seed)
    if pool is None:
        pool = build_pattern_pool(
            rng,
            n_items=n_items,
            n_patterns=n_patterns,
            avg_pattern_len=avg_pattern_len,
            correlation=correlation,
            corruption_mean=corruption_mean,
            corruption_sd=corruption_sd,
        )

    n_pool = len(pool.patterns)
    transactions: list[tuple[int, ...]] = []
    # Draw pattern indices in bulk for speed; refill the buffer as needed.
    buffer = rng.choice(n_pool, size=max(4 * n_transactions, 1024), p=pool.weights)
    buf_pos = 0

    for _ in range(n_transactions):
        size = int(max(1, rng.poisson(avg_transaction_len - 1) + 1))
        txn: set[int] = set()
        while len(txn) < size:
            if buf_pos >= len(buffer):
                buffer = rng.choice(n_pool, size=len(buffer), p=pool.weights)
                buf_pos = 0
            p_idx = int(buffer[buf_pos])
            buf_pos += 1
            pattern = list(pool.patterns[p_idx])
            # Corrupt: drop random items while the coin keeps coming up low.
            level = pool.corruption[p_idx]
            while pattern and rng.random() < level:
                pattern.pop(int(rng.integers(0, len(pattern))))
            if not pattern:
                continue
            if len(txn) + len(pattern) > size:
                # Over-full: keep anyway half the time, else close out.
                if rng.random() < 0.5:
                    txn.update(pattern)
                break
            txn.update(pattern)
        if not txn:
            txn = {int(rng.integers(0, n_items))}
        transactions.append(tuple(sorted(txn)))

    return TransactionDataset(transactions, n_items)
