"""Random sampling of datasets (Section 6's sample-deviation experiments).

Works uniformly for tabular and transaction datasets through their shared
``take`` / ``__len__`` interface. Sampling defaults to *with* replacement
(matching bootstrap semantics); Figure 9 of the paper also reports
without-replacement (``WOR``) curves, so both are supported.
"""

from __future__ import annotations

import numpy as np

from repro._typing import DatasetLike
from repro.errors import InvalidParameterError


def sample_indices(
    n_rows: int,
    n_sample: int,
    rng: np.random.Generator,
    replace: bool = True,
) -> np.ndarray:
    """Row indices for a uniform random sample."""
    if n_sample < 0:
        raise InvalidParameterError("sample size must be non-negative")
    if not replace and n_sample > n_rows:
        raise InvalidParameterError(
            f"cannot draw {n_sample} rows without replacement from {n_rows}"
        )
    return rng.choice(n_rows, size=n_sample, replace=replace)


def sample(
    dataset: DatasetLike,
    fraction: float,
    rng: np.random.Generator,
    replace: bool = True,
) -> DatasetLike:
    """A uniform random sample of ``fraction`` of the dataset's rows.

    Parameters
    ----------
    dataset:
        Any dataset exposing ``__len__`` and ``take(indices)``.
    fraction:
        The sample fraction (SF in the paper's plots), in ``(0, 1]``.
    rng:
        Numpy random generator (callers own seeding for reproducibility).
    replace:
        ``True`` for sampling with replacement (default), ``False`` for
        the paper's ``WOR`` variant.
    """
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(f"fraction must be in (0, 1], got {fraction}")
    n = len(dataset)
    n_sample = max(1, int(round(fraction * n)))
    return dataset.take(sample_indices(n, n_sample, rng, replace))


def sample_n(
    dataset: DatasetLike,
    n_sample: int,
    rng: np.random.Generator,
    replace: bool = True,
) -> DatasetLike:
    """A uniform random sample of exactly ``n_sample`` rows."""
    return dataset.take(sample_indices(len(dataset), n_sample, rng, replace))


def bootstrap_pair(
    pooled: DatasetLike, n1: int, n2: int, rng: np.random.Generator
) -> tuple[DatasetLike, DatasetLike]:
    """Resample a pair of datasets of sizes ``n1``/``n2`` from a pooled dataset.

    This is the resampling step of the qualification procedure
    (Section 3.4): under the null hypothesis the two datasets come from
    the same process, so both resamples are drawn (with replacement) from
    the union of the originals.
    """
    d1 = sample_n(pooled, n1, rng, replace=True)
    d2 = sample_n(pooled, n2, rng, replace=True)
    return d1, d2


def split_halves(
    dataset: DatasetLike, rng: np.random.Generator
) -> tuple[DatasetLike, DatasetLike]:
    """Randomly partition a dataset into two halves (no replacement)."""
    n = len(dataset)
    perm = rng.permutation(n)
    mid = n // 2
    return dataset.take(perm[:mid]), dataset.take(perm[mid:])
