"""Numpy-backed tabular datasets (the ``n``-tuple datasets of Definition 3.1).

A :class:`TabularDataset` stores every attribute as a ``float64`` column
(categorical attributes hold integer codes) plus an optional integer class
label per row. Region selectivities (Definition 3.2) are computed with a
single vectorised mask pass, which is what lets every FOCUS deviation be
computed "using a single scan of the underlying datasets" (Section 1).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.attribute import AttributeSpace
from repro.core.predicate import Conjunction
from repro.core.region import BoxRegion
from repro.errors import InvalidParameterError, SchemaError


class TabularDataset:
    """An immutable table of tuples over an :class:`AttributeSpace`.

    Parameters
    ----------
    space:
        The attribute space describing the columns (and, when present,
        the class labels).
    X:
        ``(n, d)`` float array, one column per attribute of ``space``.
    y:
        Optional ``(n,)`` integer class labels. Required when
        ``space.class_labels`` is non-empty.
    """

    def __init__(
        self,
        space: AttributeSpace,
        X: np.ndarray,
        y: np.ndarray | None = None,
    ) -> None:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise InvalidParameterError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[1] != space.n_attributes:
            raise SchemaError(
                f"X has {X.shape[1]} columns but space has "
                f"{space.n_attributes} attributes"
            )
        if space.class_labels and y is None:
            raise SchemaError("space declares class labels but y is missing")
        if y is not None:
            y = np.asarray(y, dtype=np.int64)
            if y.shape != (X.shape[0],):
                raise SchemaError(
                    f"y has shape {y.shape}, expected ({X.shape[0]},)"
                )
            if not space.class_labels:
                raise SchemaError("y given but space declares no class labels")
        self.space = space
        self._X = X
        self._y = y
        self._column_views: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._X.shape[0]

    @property
    def n_rows(self) -> int:
        return self._X.shape[0]

    @property
    def X(self) -> np.ndarray:
        """The raw ``(n, d)`` attribute matrix (do not mutate)."""
        return self._X

    @property
    def y(self) -> np.ndarray | None:
        """The raw class-label vector, or ``None`` for unlabelled data."""
        return self._y

    def column(self, name: str) -> np.ndarray:
        """The column for the named attribute."""
        columns = self.columns
        if name not in columns:
            raise SchemaError(f"unknown attribute {name!r}")
        return columns[name]

    @property
    def columns(self) -> Mapping[str, np.ndarray]:
        """Per-attribute column views, built lazily on first access.

        Lazy so that view-backed slices (the streaming layer creates one
        per chunk and per shard) pay for the view dictionary only if a
        predicate or column read actually happens.
        """
        if self._column_views is None:
            self._column_views = {
                name: self._X[:, i]
                for i, name in enumerate(self.space.names)
            }
        return self._column_views

    # ------------------------------------------------------------------ #
    # Region evaluation
    # ------------------------------------------------------------------ #

    def predicate_mask(self, predicate: Conjunction) -> np.ndarray:
        """Boolean membership mask of a conjunctive predicate."""
        return predicate.mask(self.columns, self.n_rows)

    def box_mask(self, region: BoxRegion) -> np.ndarray:
        """Boolean membership mask of a box region (predicate AND class)."""
        mask = self.predicate_mask(region.predicate)
        if region.class_label is not None:
            if self._y is None:
                raise SchemaError(
                    "region constrains the class but the dataset is unlabelled"
                )
            mask &= self._y == region.class_label
        return mask

    def box_count(self, region: BoxRegion) -> int:
        """Absolute number of tuples mapping into a box region."""
        return int(self.box_mask(region).sum())

    def box_selectivity(self, region: BoxRegion) -> float:
        """Selectivity sigma(region, D) per Definition 3.2 (0 for empty D)."""
        if self.n_rows == 0:
            return 0.0
        return self.box_count(region) / self.n_rows

    # ------------------------------------------------------------------ #
    # Dataset algebra
    # ------------------------------------------------------------------ #

    def take(self, indices: np.ndarray) -> "TabularDataset":
        """A new dataset holding the rows at ``indices`` (with repetition OK)."""
        indices = np.asarray(indices, dtype=np.int64)
        y = self._y[indices] if self._y is not None else None
        return TabularDataset(self.space, self._X[indices], y)

    def slice_rows(self, start: int, stop: int) -> "TabularDataset":
        """The contiguous row range ``[start, stop)`` as a dataset.

        Backed by numpy views, not copies -- this is what lets the
        streaming layer chunk and shard a table without duplicating it.
        """
        y = self._y[start:stop] if self._y is not None else None
        return TabularDataset(self.space, self._X[start:stop], y)

    @staticmethod
    def concat_many(datasets: Sequence["TabularDataset"]) -> "TabularDataset":
        """Concatenate datasets over one space with a single ``vstack``."""
        if not datasets:
            raise InvalidParameterError("concat_many needs at least one dataset")
        space = datasets[0].space
        for d in datasets[1:]:
            if not space.compatible_with(d.space):
                raise SchemaError(
                    "cannot concatenate datasets over different spaces"
                )
        X = np.vstack([d.X for d in datasets])
        labels = [d.y for d in datasets]
        ys = [y for y in labels if y is not None]
        if len(ys) != len(labels):
            return TabularDataset(space, X)
        return TabularDataset(space, X, np.concatenate(ys))

    def filter(self, mask: np.ndarray) -> "TabularDataset":
        """A new dataset holding the rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        y = self._y[mask] if self._y is not None else None
        return TabularDataset(self.space, self._X[mask], y)

    def concat(self, other: "TabularDataset") -> "TabularDataset":
        """Append another dataset over the same space (the paper's ``D + delta``)."""
        if not self.space.compatible_with(other.space):
            raise SchemaError("cannot concatenate datasets over different spaces")
        X = np.vstack([self._X, other._X])
        y1, y2 = self._y, other._y
        if y1 is None or y2 is None:
            return TabularDataset(self.space, X)
        return TabularDataset(self.space, X, np.concatenate([y1, y2]))

    def relabel(self, y: np.ndarray) -> "TabularDataset":
        """Same tuples with the class labels replaced (used for ``D^T``, §5.2.1)."""
        return TabularDataset(self.space, self._X, y)

    def class_distribution(self) -> dict[int, float]:
        """Fraction of rows per class label."""
        if self._y is None:
            return {}
        out: dict[int, float] = {}
        for label in self.space.class_labels:
            out[label] = float(np.mean(self._y == label)) if self.n_rows else 0.0
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labelled = "labelled" if self._y is not None else "unlabelled"
        return (
            f"TabularDataset(n={self.n_rows}, d={self.space.n_attributes}, "
            f"{labelled})"
        )


def from_rows(
    space: AttributeSpace,
    rows: Iterable[Sequence[float]],
    labels: Iterable[int] | None = None,
) -> TabularDataset:
    """Build a dataset from Python row sequences (mostly for tests/examples)."""
    X = np.array([list(r) for r in rows], dtype=np.float64)
    if X.size == 0:
        X = X.reshape(0, space.n_attributes)
    y = None if labels is None else np.array(list(labels), dtype=np.int64)
    return TabularDataset(space, X, y)
