"""Model persistence: mine once, compare later.

The delta* workflow (Section 4.1.1) assumes mined models are kept around
-- "which will probably fit in main memory, unlike the datasets" -- so a
production deployment stores models, not data. This module round-trips
both model classes through JSON:

* :class:`LitsModel` -- itemsets + supports + threshold;
* :class:`DecisionTree` / :class:`DtModel` -- the split tree, leaf
  histograms, and the attribute space;
* :class:`ClusterModel` -- the grid, densities, and cluster assignment.

Each model class has a ``*_to_dict``/``*_from_dict`` pair (the exact
payload the JSON files carry), used both here and by the binary wire
codecs in :mod:`repro.wire.models` -- one canonical dict form, two
transports. :func:`save_packed_model`/:func:`load_packed_model` write
the compact checksummed wire envelope instead of JSON.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.attribute import Attribute, AttributeKind, AttributeSpace
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.errors import InvalidParameterError
from repro.mining.tree.splits import CategoricalSplit, NumericSplit
from repro.mining.tree.tree import DecisionTree, Node

if TYPE_CHECKING:  # circular at runtime: cluster_model imports repro.data
    from repro.core.cluster_model import ClusterModel


def lits_model_to_dict(model: LitsModel) -> dict[str, Any]:
    """The canonical JSON-able form of a lits-model."""
    return {
        "kind": "lits-model",
        "min_support": model.min_support,
        "n_items": model.n_items,
        "itemsets": [
            {"items": sorted(itemset), "support": support}
            for itemset, support in sorted(
                model.supports.items(),
                key=lambda kv: (len(kv[0]), tuple(sorted(kv[0]))),
            )
        ],
    }


def lits_model_from_dict(payload: dict[str, Any]) -> LitsModel:
    """Rebuild a lits-model from :func:`lits_model_to_dict` output."""
    if payload.get("kind") != "lits-model":
        raise InvalidParameterError("payload does not describe a lits-model")
    supports = {
        frozenset(entry["items"]): float(entry["support"])
        for entry in payload["itemsets"]
    }
    return LitsModel(supports, payload["min_support"], payload["n_items"])


def save_lits_model(model: LitsModel, path: str | Path) -> None:
    """Write a lits-model as JSON."""
    Path(path).write_text(json.dumps(lits_model_to_dict(model), indent=1))


def load_lits_model(path: str | Path) -> LitsModel:
    """Read a lits-model written by :func:`save_lits_model`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "lits-model":
        raise InvalidParameterError(f"{path} does not contain a lits-model")
    return lits_model_from_dict(payload)


def _bound_to_json(value: float) -> float | str:
    # unbounded numeric attributes carry +/-inf bounds, which strict
    # JSON cannot express -- encode them as signed "inf" strings
    v = float(value)
    if math.isfinite(v):
        return v
    if math.isnan(v):
        raise InvalidParameterError("attribute bound is NaN")
    return "inf" if v > 0 else "-inf"


def _bound_from_json(value: float | int | str) -> float:
    try:
        v = float(value)
    except (TypeError, ValueError):
        raise InvalidParameterError(
            f"attribute bound must be a number or a signed 'inf' string, "
            f"got {value!r}"
        ) from None
    if math.isnan(v):
        raise InvalidParameterError("attribute bound is NaN")
    return v


def _space_to_dict(space: AttributeSpace) -> dict[str, Any]:
    return {
        "attributes": [
            {
                "name": a.name,
                "kind": a.kind.value,
                "low": _bound_to_json(a.low),
                "high": _bound_to_json(a.high),
                "values": list(a.values),
            }
            for a in space.attributes
        ],
        "class_labels": list(space.class_labels),
    }


def _space_from_dict(d: dict[str, Any]) -> AttributeSpace:
    return AttributeSpace(
        tuple(
            Attribute(
                name=a["name"],
                kind=AttributeKind(a["kind"]),
                low=_bound_from_json(a["low"]),
                high=_bound_from_json(a["high"]),
                values=tuple(a["values"]),
            )
            for a in d["attributes"]
        ),
        tuple(d["class_labels"]),
    )


def _node_to_dict(node: Node) -> dict[str, Any]:
    out: dict[str, Any] = {"class_counts": [int(c) for c in node.class_counts]}
    if node.is_leaf:
        return out
    split = node.split
    if isinstance(split, NumericSplit):
        out["split"] = {
            "type": "numeric",
            "attribute": split.attribute,
            "threshold": split.threshold,
            "gain": split.gain,
        }
    else:
        assert isinstance(split, CategoricalSplit)
        out["split"] = {
            "type": "categorical",
            "attribute": split.attribute,
            "left_values": sorted(split.left_values),
            "gain": split.gain,
        }
    assert node.left is not None and node.right is not None
    out["left"] = _node_to_dict(node.left)
    out["right"] = _node_to_dict(node.right)
    return out


def _node_from_dict(d: dict[str, Any], depth: int = 0) -> Node:
    node = Node(
        class_counts=np.array(d["class_counts"], dtype=np.int64), depth=depth
    )
    if "split" in d:
        s = d["split"]
        if s["type"] == "numeric":
            node.split = NumericSplit(s["attribute"], s["threshold"], s["gain"])
        else:
            node.split = CategoricalSplit(
                s["attribute"], frozenset(s["left_values"]), s["gain"]
            )
        node.left = _node_from_dict(d["left"], depth + 1)
        node.right = _node_from_dict(d["right"], depth + 1)
    return node


def dt_model_to_dict(model: DtModel | DecisionTree) -> dict[str, Any]:
    """The canonical JSON-able form of a dt-model."""
    tree = model.tree if isinstance(model, DtModel) else model
    return {
        "kind": "dt-model",
        "space": _space_to_dict(tree.space),
        "root": _node_to_dict(tree.root),
    }


def dt_model_from_dict(payload: dict[str, Any]) -> DtModel:
    """Rebuild a dt-model from :func:`dt_model_to_dict` output."""
    if payload.get("kind") != "dt-model":
        raise InvalidParameterError("payload does not describe a dt-model")
    space = _space_from_dict(payload["space"])
    tree = DecisionTree(space=space, root=_node_from_dict(payload["root"]))
    return DtModel(tree)


def save_dt_model(model: DtModel | DecisionTree, path: str | Path) -> None:
    """Write a decision-tree model as JSON."""
    Path(path).write_text(json.dumps(dt_model_to_dict(model), indent=1))


def load_dt_model(path: str | Path) -> DtModel:
    """Read a dt-model written by :func:`save_dt_model`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "dt-model":
        raise InvalidParameterError(f"{path} does not contain a dt-model")
    return dt_model_from_dict(payload)


def cluster_model_to_dict(model: ClusterModel) -> dict[str, Any]:
    """The canonical JSON-able form of a cluster-model.

    Floats pass through ``repr`` (the json encoder's float form), which
    round-trips Python floats exactly -- the rebuilt grid's cut points,
    hence its cell predicates and ``counts_key``, equal the original's.
    """
    clustering = model.clustering
    grid = clustering.grid
    return {
        "kind": "cluster-model",
        "space": _space_to_dict(grid.space),
        "attributes": list(grid.attributes),
        "cuts": {
            name: [float(c) for c in cuts] for name, cuts in grid.cuts.items()
        },
        "densities": [float(d) for d in clustering.densities],
        "dense_cells": [int(c) for c in clustering.dense_cells],
        "cluster_of_cell": [
            [int(cell), int(cid)]
            for cell, cid in sorted(clustering.cluster_of_cell.items())
        ],
        "n_clusters": int(clustering.n_clusters),
    }


def cluster_model_from_dict(payload: dict[str, Any]) -> "ClusterModel":
    """Rebuild a cluster-model from :func:`cluster_model_to_dict` output."""
    from repro.core.cluster_model import ClusterModel
    from repro.mining.cluster.grid import Grid, GridClustering

    if payload.get("kind") != "cluster-model":
        raise InvalidParameterError(
            "payload does not describe a cluster-model"
        )
    grid = Grid(
        space=_space_from_dict(payload["space"]),
        attributes=tuple(payload["attributes"]),
        cuts={
            name: np.array(cuts, dtype=np.float64)
            for name, cuts in payload["cuts"].items()
        },
    )
    clustering = GridClustering(
        grid=grid,
        densities=np.array(payload["densities"], dtype=np.float64),
        dense_cells=np.array(payload["dense_cells"], dtype=np.int64),
        cluster_of_cell={
            int(cell): int(cid) for cell, cid in payload["cluster_of_cell"]
        },
        n_clusters=int(payload["n_clusters"]),
    )
    return ClusterModel(clustering)


def save_cluster_model(model: ClusterModel, path: str | Path) -> None:
    """Write a cluster-model as JSON."""
    Path(path).write_text(json.dumps(cluster_model_to_dict(model), indent=1))


def load_cluster_model(path: str | Path) -> ClusterModel:
    """Read a cluster-model written by :func:`save_cluster_model`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "cluster-model":
        raise InvalidParameterError(f"{path} does not contain a cluster-model")
    return cluster_model_from_dict(payload)


def save_packed_model(
    model: LitsModel | DtModel | ClusterModel, path: str | Path
) -> None:
    """Write a model as a compact checksummed wire envelope.

    The binary sibling of the JSON savers: same canonical dict form,
    shipped through the :mod:`repro.wire` envelope (magic, version, kind
    tag, per-section CRC32) -- the format sketches travel in, so a model
    file and a sketch payload are verified by the same reader.
    """
    # imported lazily: repro.wire imports this module's dict converters
    from repro.wire import pack

    Path(path).write_bytes(pack(model))


def load_packed_model(path: str | Path) -> LitsModel | DtModel | ClusterModel:
    """Read a model written by :func:`save_packed_model` (CRC-verified)."""
    from repro.wire.models import unpack_model

    return unpack_model(Path(path).read_bytes())
