"""Model persistence: mine once, compare later.

The delta* workflow (Section 4.1.1) assumes mined models are kept around
-- "which will probably fit in main memory, unlike the datasets" -- so a
production deployment stores models, not data. This module round-trips
both model classes through JSON:

* :class:`LitsModel` -- itemsets + supports + threshold;
* :class:`DecisionTree` / :class:`DtModel` -- the split tree, leaf
  histograms, and the attribute space.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.attribute import Attribute, AttributeKind, AttributeSpace
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.errors import InvalidParameterError
from repro.mining.tree.splits import CategoricalSplit, NumericSplit
from repro.mining.tree.tree import DecisionTree, Node


def save_lits_model(model: LitsModel, path: str | Path) -> None:
    """Write a lits-model as JSON."""
    payload = {
        "kind": "lits-model",
        "min_support": model.min_support,
        "n_items": model.n_items,
        "itemsets": [
            {"items": sorted(itemset), "support": support}
            for itemset, support in sorted(
                model.supports.items(),
                key=lambda kv: (len(kv[0]), tuple(sorted(kv[0]))),
            )
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_lits_model(path: str | Path) -> LitsModel:
    """Read a lits-model written by :func:`save_lits_model`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "lits-model":
        raise InvalidParameterError(f"{path} does not contain a lits-model")
    supports = {
        frozenset(entry["items"]): float(entry["support"])
        for entry in payload["itemsets"]
    }
    return LitsModel(supports, payload["min_support"], payload["n_items"])


def _space_to_dict(space: AttributeSpace) -> dict[str, Any]:
    return {
        "attributes": [
            {
                "name": a.name,
                "kind": a.kind.value,
                "low": a.low,
                "high": a.high,
                "values": list(a.values),
            }
            for a in space.attributes
        ],
        "class_labels": list(space.class_labels),
    }


def _space_from_dict(d: dict[str, Any]) -> AttributeSpace:
    return AttributeSpace(
        tuple(
            Attribute(
                name=a["name"],
                kind=AttributeKind(a["kind"]),
                low=a["low"],
                high=a["high"],
                values=tuple(a["values"]),
            )
            for a in d["attributes"]
        ),
        tuple(d["class_labels"]),
    )


def _node_to_dict(node: Node) -> dict[str, Any]:
    out: dict[str, Any] = {"class_counts": [int(c) for c in node.class_counts]}
    if node.is_leaf:
        return out
    split = node.split
    if isinstance(split, NumericSplit):
        out["split"] = {
            "type": "numeric",
            "attribute": split.attribute,
            "threshold": split.threshold,
            "gain": split.gain,
        }
    else:
        assert isinstance(split, CategoricalSplit)
        out["split"] = {
            "type": "categorical",
            "attribute": split.attribute,
            "left_values": sorted(split.left_values),
            "gain": split.gain,
        }
    assert node.left is not None and node.right is not None
    out["left"] = _node_to_dict(node.left)
    out["right"] = _node_to_dict(node.right)
    return out


def _node_from_dict(d: dict[str, Any], depth: int = 0) -> Node:
    node = Node(
        class_counts=np.array(d["class_counts"], dtype=np.int64), depth=depth
    )
    if "split" in d:
        s = d["split"]
        if s["type"] == "numeric":
            node.split = NumericSplit(s["attribute"], s["threshold"], s["gain"])
        else:
            node.split = CategoricalSplit(
                s["attribute"], frozenset(s["left_values"]), s["gain"]
            )
        node.left = _node_from_dict(d["left"], depth + 1)
        node.right = _node_from_dict(d["right"], depth + 1)
    return node


def save_dt_model(model: DtModel | DecisionTree, path: str | Path) -> None:
    """Write a decision-tree model as JSON."""
    tree = model.tree if isinstance(model, DtModel) else model
    payload = {
        "kind": "dt-model",
        "space": _space_to_dict(tree.space),
        "root": _node_to_dict(tree.root),
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_dt_model(path: str | Path) -> DtModel:
    """Read a dt-model written by :func:`save_dt_model`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "dt-model":
        raise InvalidParameterError(f"{path} does not contain a dt-model")
    space = _space_from_dict(payload["space"])
    tree = DecisionTree(space=space, root=_node_from_dict(payload["root"]))
    return DtModel(tree)
