"""Figure 15: misclassification error versus deviation.

Paper's shape: "they exhibit a strong positive correlation" -- the ME of
the base tree on a second dataset grows with the FOCUS deviation between
the datasets.
"""

from __future__ import annotations

from conftest import once

from repro.experiments.me_correlation import figure_15


def test_fig15_me_vs_deviation(benchmark, scale):
    result = once(benchmark, figure_15, scale)

    print(f"\nFigure 15 (scaled): Pearson r = {result.pearson_r:.3f}")
    for p in sorted(result.points, key=lambda p: p.deviation):
        print(f"  {p.label:9s} deviation={p.deviation:8.4f} "
              f"ME={p.misclassification:.4f}")

    assert len(result.points) == 6
    assert result.pearson_r > 0.8  # strong positive correlation

    # The ordering is consistent at the extremes: the most deviant
    # dataset has (weakly) the largest ME among the block rows vs cross rows.
    points = sorted(result.points, key=lambda p: p.deviation)
    assert points[0].misclassification < points[-1].misclassification
