"""Shared benchmark configuration.

Every bench reproduces one table or figure of the paper at the ``tiny``
scale (seconds-per-bench; see EXPERIMENTS.md for a recorded ``small``
run and the paper-vs-measured comparison). Benches assert the *shape*
of each result -- who wins, what decreases, what is significant -- not
absolute numbers, which depend on scale and hardware.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Scale


@pytest.fixture(scope="session")
def scale() -> Scale:
    return Scale.tiny()


def once(benchmark, fn, *args, **kwargs):
    """Run a harness function exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
