"""Ablation: incremental partition windows vs rebuild-per-window.

The partition-model half of the streaming claim (the lits half is pinned
by ``bench_streaming.py``): advancing a sliding tabular window is
``+ entering chunk histogram - leaving chunk histogram`` -- the only
rows assigned are the entering chunk's, so a stream of ``W``-row windows
advancing by ``s`` rows costs O(s) per advance instead of the O(W)
re-assignment a from-scratch recount pays. This bench pins the
acceptance bar: >= 3x over 50 sliding windows of 2,000 tabular rows,
with bit-identical per-window counts.

A second test pins the other acceptance criterion: measuring a
100k-row labelled dataset through ``PartitionStructure.counts`` (one
assigner pass + ``searchsorted`` label routing + ``bincount``) must beat
the seed's per-row Python-loop label encoding by >= 3x -- the
behavioural proof that no per-row loop survives in the counting path.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.dtree_model import DtModel
from repro.data.quest_classify import generate_classification
from repro.mining.tree.builder import TreeParams
from repro.obs import MetricsRegistry, use_registry
from repro.stream.chunks import iter_tabular_chunks
from repro.stream.windows import PartitionChunkSketcher, WindowManager

#: Acceptance scale: 50 sliding windows of 2k rows each, advancing by a
#: 250-row chunk (87.5% overlap between neighbours -- the regime where
#: re-assigning surviving rows is pure waste).
WINDOW = 2_000
STEP = 250
N_WINDOWS = 50
N_ROWS = WINDOW + (N_WINDOWS - 1) * STEP  # 14,250

JSON_PATH = Path(__file__).parent / "BENCH_partition_stream.json"


@pytest.fixture(scope="module")
def workload():
    # F5 induces a realistic tree (dozens of leaves over several
    # attributes) rather than F1's three-leaf stub, so the measured
    # advance cost reflects an actual dt-model monitoring deployment.
    dataset = generate_classification(N_ROWS, function=5, seed=902)
    head = dataset.slice_rows(0, WINDOW)
    structure = DtModel.fit(
        head, TreeParams(max_depth=8, min_leaf=25)
    ).structure
    return dataset, structure


def _incremental(dataset, structure):
    manager = WindowManager(
        PartitionChunkSketcher(structure.plan),
        window_chunks=WINDOW // STEP,
        policy="sliding",
    )
    # chunks are fresh view-backed slices each run, so repeated timings
    # cannot lean on the per-dataset assignment memo
    return [
        (w.start, w.sketch.counts)
        for w in manager.push_many(iter_tabular_chunks(dataset, STEP))
    ]


def _rebuild_per_window(dataset, structure):
    """The non-incremental consumer: buffer chunks, materialise, recount.

    Mirrors the lits bench's baseline (which rebuilds a BitmapIndex from
    raw transactions per window): a streaming consumer without sketches
    holds the last ``WINDOW // STEP`` chunks, concatenates them into a
    window dataset, and recounts all of it on every advance.
    """
    from collections import deque

    from repro.data.tabular import TabularDataset

    ring: deque = deque(maxlen=WINDOW // STEP)
    out = []
    for i, chunk in enumerate(iter_tabular_chunks(dataset, STEP)):
        ring.append(chunk)
        if len(ring) == WINDOW // STEP:
            window = TabularDataset.concat_many(list(ring))
            out.append(((i + 1) * STEP - WINDOW, structure.counts(window)))
    return out


def _best_of(fn, repeats: int):
    """Best-of CPU time: process_time is immune to scheduler noise, and
    both pipelines here are single-threaded and CPU-bound, so it is the
    stable basis for the speedup assertion on shared CI machines."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.process_time()
        value = fn()
        best = min(best, time.process_time() - t0)
    return best, value


def _best_of_interleaved(fn_a, fn_b, repeats: int):
    """Interleave the contenders so drifting machine load hits both."""
    best_a = best_b = float("inf")
    value_a = value_b = None
    for _ in range(repeats):
        t_a, value_a = _best_of(fn_a, 1)
        t_b, value_b = _best_of(fn_b, 1)
        best_a = min(best_a, t_a)
        best_b = min(best_b, t_b)
    return (best_a, value_a), (best_b, value_b)


def test_incremental_advance_beats_full_reassign(benchmark, workload):
    """The acceptance bar: >= 3x on 50 sliding windows, same counts."""
    dataset, structure = workload

    fast = benchmark(lambda: _incremental(dataset, structure))
    # best-of-10: the incremental side measures ~4ms against a 3x floor
    # with ~17% headroom, so a single unlucky scheduler hit across too
    # few repeats flips the verdict; more repeats cost ~100ms total
    (t_fast, _), (t_slow, slow) = _best_of_interleaved(
        lambda: _incremental(dataset, structure),
        lambda: _rebuild_per_window(dataset, structure),
        repeats=10,
    )

    assert len(fast) == len(slow) == N_WINDOWS
    for (start_a, counts_a), (start_b, counts_b) in zip(fast, slow):
        assert start_a == start_b
        assert counts_a.tolist() == counts_b.tolist()

    speedup = t_slow / max(t_fast, 1e-9)

    # Enabled run (untimed): the same pipeline under a live registry,
    # so the emitted JSON carries the engine counters next to the
    # disabled-mode timings the assertion above was measured in.
    registry = MetricsRegistry()
    with use_registry(registry):
        _incremental(dataset, structure)
    counters = registry.snapshot()["counters"]
    assert counters["stream.windows.rows_sketched"] == N_ROWS
    assert counters["stream.windows.emitted"] == N_WINDOWS

    payload = {
        "bench": "partition_stream",
        "window": WINDOW,
        "step": STEP,
        "n_windows": N_WINDOWS,
        "n_regions": len(structure.regions),
        "t_incremental_s": round(t_fast, 4),
        "t_rebuild_s": round(t_slow, 4),
        "speedup": round(speedup, 2),
        "min_speedup_asserted": 3.0,
        "counters": counters,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n{N_WINDOWS} windows of {WINDOW} rows (step {STEP}, "
        f"{len(structure.regions)} regions): incremental "
        f"{t_fast * 1e3:.1f}ms vs rebuild {t_slow * 1e3:.1f}ms "
        f"({speedup:.1f}x) -> {JSON_PATH.name}"
    )
    assert speedup >= 3.0


def test_incremental_scans_only_entering_rows(workload):
    """Scan accounting: every pushed row is histogrammed exactly once."""
    dataset, structure = workload
    manager = WindowManager(
        PartitionChunkSketcher(structure.plan),
        window_chunks=WINDOW // STEP,
        policy="sliding",
    )
    windows = list(manager.push_many(iter_tabular_chunks(dataset, STEP)))
    assert len(windows) == N_WINDOWS
    assert manager.rows_sketched == N_ROWS
    # a rebuild-per-window baseline would assign WINDOW rows per window
    assert N_WINDOWS * WINDOW / manager.rows_sketched > 3.5


def _counts_python_loop(structure, dataset):
    """The seed's per-row label routing, kept as the ablation baseline."""
    cell_idx = np.asarray(structure.assigner(dataset), dtype=np.int64)
    label_code = {label: i for i, label in enumerate(structure.class_labels)}
    codes = np.array([label_code[int(v)] for v in dataset.y], dtype=np.int64)
    k = len(structure.class_labels)
    flat = cell_idx * k + codes
    return np.bincount(flat, minlength=len(structure.cells) * k)


def test_counts_has_no_per_row_python_loop():
    """100k labelled rows: vectorised counts >= 3x the per-row loop.

    Each timed call measures a *fresh* view-backed dataset object, so
    the vectorised path cannot hide behind the assignment memo -- both
    sides pay the same (compact, grid-compiled) assigner pass; the
    difference is precisely the per-row label routing this assertion
    pins as gone.
    """
    big = generate_classification(100_000, function=1, seed=903)
    structure = DtModel.fit(
        big.slice_rows(0, 5_000), TreeParams(max_depth=4, min_leaf=50)
    ).structure

    t_fast, _ = _best_of(
        lambda: structure.counts(big.slice_rows(0, len(big))), repeats=3
    )
    t_slow, _ = _best_of(
        lambda: _counts_python_loop(structure, big.slice_rows(0, len(big))),
        repeats=2,
    )
    np.testing.assert_array_equal(
        structure.counts(big.slice_rows(0, len(big))),
        _counts_python_loop(structure, big),
    )
    speedup = t_slow / max(t_fast, 1e-9)
    print(
        f"\n100k-row counts: vectorised {t_fast * 1e3:.1f}ms vs per-row "
        f"loop {t_slow * 1e3:.1f}ms ({speedup:.1f}x)"
    )
    assert speedup >= 3.0
