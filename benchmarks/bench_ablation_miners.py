"""Ablation: Apriori versus FP-growth as the lits-model backend.

Both miners must produce the identical lits-model (the FOCUS deviation
only sees the model); the bench compares their runtimes on the same
workload and confirms result equality.
"""

from __future__ import annotations

import time

import pytest

from repro.data.quest_basket import generate_basket
from repro.mining.apriori import apriori
from repro.mining.fpgrowth import fpgrowth


@pytest.fixture(scope="module")
def workload(scale):
    dataset = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len,
        seed=808,
    )
    return dataset, scale.min_supports[0], scale.max_itemset_len


def test_apriori_vs_fpgrowth(benchmark, workload):
    dataset, min_support, max_len = workload

    a_result = benchmark.pedantic(
        lambda: apriori(dataset, min_support, max_len=max_len),
        rounds=1, iterations=1,
    )

    t0 = time.perf_counter()
    f_result = fpgrowth(dataset, min_support, max_len=max_len)
    t_fp = time.perf_counter() - t0

    t0 = time.perf_counter()
    apriori(dataset, min_support, max_len=max_len)
    t_ap = time.perf_counter() - t0

    print(f"\n{len(a_result)} frequent itemsets at ms={min_support:g}: "
          f"apriori {t_ap:.3f}s, fpgrowth {t_fp:.3f}s")

    # Identical models regardless of miner.
    assert a_result.keys() == f_result.keys()
    for itemset in a_result:
        assert abs(a_result[itemset] - f_result[itemset]) < 1e-12
