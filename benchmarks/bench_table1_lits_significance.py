"""Table 1: lits-models -- significance of representativeness increase.

Paper's row (1M.20L.1K.4000pats.4patlen, 50 reps, Wilcoxon): 99.99 at
every sample-fraction step. Scaled expectation: high significance at the
early steps (where SD drops steeply); the late steps may be noisier at
tiny replicate counts, mirroring the paper's dt-model Table 2.
"""

from __future__ import annotations

from conftest import once

from repro.experiments.significance_tables import table_1


def test_table1_lits_significance(benchmark, scale):
    result = once(benchmark, table_1, scale)

    print(f"\nTable 1 ({result.dataset_name}):")
    for fraction, sig in result.rows():
        print(f"  SF={fraction:>5}: significance {sig}")

    assert len(result.significances) == len(scale.fractions) - 1
    # Shape: the early size increases are decisively significant.
    assert result.significances[0] > 95.0
    assert result.significances[1] > 95.0
    # And the overall tendency is towards significance.
    above_95 = sum(1 for s in result.significances if s > 95.0)
    assert above_95 >= len(result.significances) // 2
