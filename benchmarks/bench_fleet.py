"""Ablation: delta*-pruned fleet matrices vs the exhaustive oracle.

The fleet engine's claims, pinned at acceptance scale (a 24-store lits
fleet -- 20 healthy stores cloned from one regional buying process plus
4 drifted outliers, the fleet-health shape where certification pays):

* **pruning**: with the threshold between the healthy and drifted
  regimes, the delta* bound matrix certifies every healthy-healthy pair
  without a scan -- >= 50% of the exact pair computations are skipped;
* **agreement**: the pruned matrix equals the exhaustive oracle on
  every scanned entry, majorises it elsewhere while staying below the
  threshold, and makes identical threshold decisions (so the threshold
  grouping is exact);
* **one scan per store**: even the exhaustive path builds each store's
  counting state once per GCR family -- 24 batched scans total, not one
  per pair (the naive loop's 2 x 276).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.deviation import deviation
from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.fleet import FleetDeviationMatrix, components
from repro.obs import MetricsRegistry, use_registry

N_HEALTHY = 20
N_DRIFTED = 4
N_STORES = N_HEALTHY + N_DRIFTED
N_PAIRS = N_STORES * (N_STORES - 1) // 2
N_TRANSACTIONS = 1_200
N_ITEMS = 100
MIN_SUPPORT = 0.02

JSON_PATH = Path(__file__).parent / "BENCH_fleet.json"


@pytest.fixture(scope="module")
def fleet():
    """24 stores: 20 from one healthy process, 4 drifted outliers."""
    rng = np.random.default_rng(417)
    healthy_pool = build_pattern_pool(
        rng, n_items=N_ITEMS, n_patterns=80, avg_pattern_len=4
    )
    datasets = [
        generate_basket(N_TRANSACTIONS, n_items=N_ITEMS,
                        avg_transaction_len=8, rng=rng, pool=healthy_pool)
        for _ in range(N_HEALTHY)
    ]
    for k in range(N_DRIFTED):
        drifted_pool = build_pattern_pool(
            rng, n_items=N_ITEMS, n_patterns=80, avg_pattern_len=6 + k % 2
        )
        datasets.append(
            generate_basket(N_TRANSACTIONS, n_items=N_ITEMS,
                            avg_transaction_len=8, rng=rng, pool=drifted_pool)
        )
    models = [LitsModel.mine(d, MIN_SUPPORT, max_len=2) for d in datasets]
    return models, datasets


def drift_threshold(bounds: np.ndarray) -> float:
    """The operator's cut: between the healthy and drifted bound regimes."""
    healthy = bounds[:N_HEALTHY, :N_HEALTHY]
    within = healthy[np.triu_indices(N_HEALTHY, k=1)]
    involving_drifted = bounds[N_HEALTHY:, :][
        bounds[N_HEALTHY:, :] > 0
    ]
    return float((within.max() + involving_drifted.min()) / 2.0)


def test_pruning_skips_half_the_pair_scans_and_agrees(benchmark, fleet):
    """The acceptance bar: >= 50% of exact pair scans pruned, oracle-equal."""
    models, datasets = fleet

    oracle_engine = FleetDeviationMatrix(models, datasets)
    t0 = time.perf_counter()
    exhaustive = oracle_engine.exhaustive()
    t_exhaustive = time.perf_counter() - t0

    threshold = drift_threshold(oracle_engine.bound_matrix())

    def run_pruned():
        engine = FleetDeviationMatrix(models, datasets)
        return engine, engine.pruned(threshold)

    engine, pruned = benchmark.pedantic(
        run_pruned, rounds=1, iterations=1
    )

    # >= 50% of the exact pair computations were skipped.
    assert pruned.n_pairs == N_PAIRS
    assert pruned.n_pruned >= N_PAIRS // 2, (
        f"only {pruned.n_pruned}/{N_PAIRS} pairs pruned"
    )
    assert engine.n_pair_computations == N_PAIRS - pruned.n_pruned

    # Agreement with the exhaustive oracle: exact where scanned,
    # majorising-but-certified where pruned, same decisions everywhere.
    assert np.allclose(
        pruned.values[pruned.exact_mask], exhaustive.values[pruned.exact_mask]
    )
    assert (pruned.values >= exhaustive.values - 1e-9).all()
    assert (pruned.values[~pruned.exact_mask] <= threshold + 1e-12).all()
    assert (
        (pruned.values <= threshold) == (exhaustive.values <= threshold)
    ).all()
    assert pruned.components() == components(
        exhaustive.values, threshold, names=exhaustive.names
    )
    # The healthy fleet hangs together; the drifted stores stand apart.
    groups = pruned.components()
    healthy_group = next(
        members for members in groups.values() if "store-0" in members
    )
    assert len(healthy_group) >= N_HEALTHY

    t1 = time.perf_counter()
    run_pruned()
    t_pruned = time.perf_counter() - t1

    # Enabled run (untimed): the pruned path under a live registry. The
    # obs counters must tell the same story the matrix itself does --
    # pruned pairs are exactly the bound-valued (non-exact) entries.
    registry = MetricsRegistry()
    with use_registry(registry):
        _, observed = run_pruned()
    counters = registry.snapshot()["counters"]
    off_diag = np.triu_indices(N_STORES, k=1)
    assert counters["fleet.pairs.pruned"] == observed.n_pruned
    assert counters["fleet.pairs.pruned"] == int(
        (~observed.exact_mask[off_diag]).sum()
    )
    assert (
        counters["fleet.pairs.scanned"]
        + counters.get("fleet.pairs.model_only", 0)
        + counters["fleet.pairs.pruned"]
        == N_PAIRS
    )
    assert counters["fleet.bounds.filled"] == N_PAIRS

    payload = {
        "bench": "fleet",
        "n_stores": N_STORES,
        "n_pairs": N_PAIRS,
        "n_pruned": pruned.n_pruned,
        "n_scanned": pruned.n_scanned,
        "t_pruned_s": round(t_pruned, 4),
        "t_exhaustive_s": round(t_exhaustive, 4),
        "speedup": round(t_exhaustive / max(t_pruned, 1e-9), 2),
        "counters": counters,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n{N_STORES} stores / {N_PAIRS} pairs: pruned "
        f"{pruned.n_pruned} ({100 * pruned.n_pruned / N_PAIRS:.0f}%), "
        f"scanned {pruned.n_scanned}; pruned matrix {t_pruned * 1e3:.0f}ms "
        f"vs exhaustive {t_exhaustive * 1e3:.0f}ms "
        f"({t_exhaustive / max(t_pruned, 1e-9):.1f}x) -> {JSON_PATH.name}"
    )


def test_counting_state_built_once_per_store_not_once_per_pair(fleet):
    """Scan accounting: N batched scans for N stores, not one per pair."""
    models, datasets = fleet
    engine = FleetDeviationMatrix(models, datasets)
    exhaustive = engine.exhaustive()
    assert engine.scan_counts() == [1] * N_STORES
    # Re-deriving any product of the matrix re-uses the memoised state.
    engine.exhaustive()
    engine.pruned(drift_threshold(engine.bound_matrix()))
    assert engine.scan_counts() == [1] * N_STORES
    assert engine.n_pair_computations == N_PAIRS

    # And the per-store reuse loses nothing vs the naive pair loop.
    i, j = 0, N_HEALTHY  # a healthy-vs-drifted pair
    direct = deviation(models[i], models[j], datasets[i], datasets[j]).value
    assert exhaustive.values[i, j] == pytest.approx(direct)
