"""Resilience overhead: supervision and checkpoints are nearly free.

The fault-tolerance layer's acceptance bars, pinned at tiny scale:

* **zero-cost supervision**: a *fault-free* fan run under
  :class:`SupervisedExecutor` produces the bit-identical merged sketch
  at a small constant overhead, and every ``resilience.*`` counter
  stays at **zero** -- the snapshot invariant CI asserts from
  ``BENCH_resilience.json`` (a nonzero retry or pool rebuild on a
  clean run means the supervisor is misfiring);
* **cheap durability**: checkpointing a live monitor and resuming it
  are tens-of-milliseconds operations, and the resumed monitor emits
  bit-identical observations to the run that never died.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.data.quest_basket import generate_basket
from repro.core.lits import LitsModel
from repro.obs import MetricsRegistry, use_registry
from repro.resilience import SupervisedExecutor
from repro.stream.executor import ThreadExecutor, sharded_support_sketch
from repro.stream.monitor import OnlineChangeMonitor

N_ROWS = 12_000
N_ITEMS = 60
N_SHARDS = 8
ITEMSETS = [(i,) for i in range(0, 20)] + [
    (i, j) for i in range(0, 8) for j in range(i + 1, 8)
]

JSON_PATH = Path(__file__).parent / "BENCH_resilience.json"

RESILIENCE_COUNTERS = (
    "resilience.retries",
    "resilience.pool_rebuilds",
    "resilience.degraded_fans",
    "resilience.quarantined_shards",
)


def test_fault_free_supervision_is_bit_identical_and_zero_cost(benchmark):
    rows = list(
        generate_basket(
            N_ROWS, n_items=N_ITEMS, avg_transaction_len=6, seed=77
        )
    )

    bare = ThreadExecutor(max_workers=2)
    t0 = time.perf_counter()
    try:
        plain = sharded_support_sketch(
            rows, ITEMSETS, N_ITEMS, n_shards=N_SHARDS, executor=bare
        )
    finally:
        bare.close()
    t_bare = time.perf_counter() - t0

    registry = MetricsRegistry()
    supervised = SupervisedExecutor("thread", max_workers=2)
    t1 = time.perf_counter()
    try:
        with use_registry(registry):
            guarded = benchmark.pedantic(
                sharded_support_sketch,
                args=(rows, ITEMSETS, N_ITEMS),
                kwargs={"n_shards": N_SHARDS, "executor": supervised},
                rounds=1, iterations=1,
            )
    finally:
        supervised.close()
    t_supervised = time.perf_counter() - t1

    # Bit-identical merge, and a clean run never touches the failure
    # machinery: all resilience counters pinned at zero.
    assert guarded == plain
    counters = registry.snapshot()["counters"]
    for name in RESILIENCE_COUNTERS:
        assert counters.get(name, 0) == 0, f"{name} nonzero on a clean fan"

    overhead = t_supervised / t_bare if t_bare > 0 else 1.0

    # Durable checkpoints on a live monitor: write, resume, bit-identity.
    def builder(dataset):
        return LitsModel.mine(dataset, 0.05, max_len=2)

    def make():
        return OnlineChangeMonitor(
            builder, N_ITEMS, window_size=1_000, step=500, n_boot=8,
            rng=np.random.default_rng(5),
        )

    ckpt_dir = JSON_PATH.parent / ".bench_ckpt"
    ckpt_registry = MetricsRegistry()
    with use_registry(ckpt_registry):
        expected = make().push(rows)
        live = make()
        emitted = list(live.push(rows[:7_000]))
        t2 = time.perf_counter()
        live.checkpoint(ckpt_dir)
        t_checkpoint = time.perf_counter() - t2
        resumed = make()
        t3 = time.perf_counter()
        resumed.resume(ckpt_dir)
        t_resume = time.perf_counter() - t3
        emitted.extend(resumed.push(rows[resumed.rows_ingested:]))
    checkpoint_bytes = sum(
        p.stat().st_size for p in ckpt_dir.rglob("*") if p.is_file()
    )
    def key(o):
        return (o.index, o.deviation, o.significance, o.drifted)

    assert [key(o) for o in emitted] == [key(o) for o in expected]
    assert ckpt_registry.counter("resilience.checkpoints_written") == 1
    assert ckpt_registry.counter("resilience.checkpoints_resumed") == 1
    import shutil

    shutil.rmtree(ckpt_dir)

    payload = {
        "bench": "resilience",
        "n_rows": N_ROWS,
        "n_shards": N_SHARDS,
        "n_itemsets": len(ITEMSETS),
        "t_bare_fan_s": round(t_bare, 4),
        "t_supervised_fan_s": round(t_supervised, 4),
        "supervision_overhead_x": round(overhead, 2),
        "t_checkpoint_s": round(t_checkpoint, 4),
        "t_resume_s": round(t_resume, 4),
        "checkpoint_bytes": checkpoint_bytes,
        "counters": counters,
        "checkpoint_counters": ckpt_registry.snapshot()["counters"],
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nsupervised fan {t_supervised * 1e3:.0f}ms vs bare "
        f"{t_bare * 1e3:.0f}ms ({overhead:.2f}x), all resilience counters "
        f"zero; checkpoint {t_checkpoint * 1e3:.0f}ms / resume "
        f"{t_resume * 1e3:.0f}ms ({checkpoint_bytes} B) -> {JSON_PATH.name}"
    )
