"""Table 2: dt-models -- significance of SD decrease with sample fraction.

Paper's row (1M.F1, 50 reps, Wilcoxon): values from 79 to 99.99 -- high
but visibly noisier than the lits-model Table 1. Scaled expectation: the
early steps significant, later steps noisy.
"""

from __future__ import annotations

from conftest import once

from repro.experiments.significance_tables import table_2


def test_table2_dt_significance(benchmark, scale):
    result = once(benchmark, table_2, scale)

    print(f"\nTable 2 ({result.dataset_name}):")
    for fraction, sig in result.rows():
        print(f"  SF={fraction:>5}: significance {sig}")

    assert len(result.significances) == len(scale.fractions) - 1
    # Shape: at least the first step is clearly significant, and no
    # step is "significantly harmful" (close to 0 would mean bigger
    # samples made models worse).
    assert max(result.significances) > 95.0
    assert all(s >= 0.0 for s in result.significances)
