"""Figures 10-12: dt-model SD-vs-SF curves (3 dataset sizes x F1-F4).

Paper's shapes: SD falls with SF for every classification function; the
simple function F1 (a pure 3-interval function of age) sits far below
the harder F2-F4 curves; larger datasets give lower SD at fixed SF.
"""

from __future__ import annotations

from conftest import once

from repro.experiments.figures import figures_10_to_12
from repro.experiments.reporting import format_curves


def test_fig10_12_dt_sd_vs_sf(benchmark, scale):
    families = once(benchmark, figures_10_to_12, scale)

    assert len(families) == 3
    for family in families:
        series = [(c.label, list(c.means())) for c in family.curves]
        print(f"\n{family.figure} -- dt-models: {family.dataset_name}")
        print(format_curves(list(scale.fractions), series))

        f1, f2, f3, f4 = [c.means() for c in family.curves]
        # SD decreases from smallest to largest sample fraction.
        for means in (f1, f2, f3, f4):
            assert means[-1] < means[0]
        # F1 is the easiest function: its curve sits lowest on average.
        assert f1.mean() < f2.mean()
        assert f1.mean() < f3.mean()
        assert f1.mean() < f4.mean()

    # Larger dataset => lower SD at fixed SF (F1 curves, 1x vs 0.5x).
    big = families[0].curves[0].means().mean()
    small = families[2].curves[0].means().mean()
    assert big < small * 1.5  # allow noise; the paper's gap is modest
