"""Figure 14: the dt deviation table (delta + bootstrap significance).

Paper's shapes: the same-process D(1) row has low significance; the
F2/F3/F4 rows are grossly significant with deviations around 1; the 5%
block rows have small deltas (they share 95% of their tuples with D).
"""

from __future__ import annotations

from conftest import once

from repro.experiments.deviation_tables import figure_14


def test_fig14_dt_deviation_table(benchmark, scale):
    rows = once(benchmark, figure_14, scale)

    print("\nFigure 14 (scaled):")
    for r in rows:
        print(f"  {r.label:9s} delta={r.delta:8.4f}  sig={r.significance:5.0f}%")

    by_label = {r.label: r for r in rows}
    same = by_label["D(1)"]
    cross = [by_label[k] for k in ("D(2)", "D(3)", "D(4)")]
    blocks = [by_label[k] for k in ("D+d(5)", "D+d(6)", "D+d(7)")]

    assert same.significance < 95.0
    for row in cross:
        assert row.significance >= 95.0
        assert row.delta > 10 * same.delta  # different functions: huge gap

    # Block rows share 95% of tuples with D: deltas far below cross rows.
    for row in blocks:
        assert row.delta < cross[0].delta / 5
