"""Ablation: count-space bootstrap vs the per-replicate resampling loop.

The qualification procedure (Section 3.4) is the repo's dominant cost
when run naively: every replicate materialises two resampled datasets
via ``take()`` and re-scans each from scratch, so ``n_boot = 100``
costs ~100 full passes over the pooled rows. The count-space engine
(:mod:`repro.stats.resample_plan`) scans the pooled data **once** into
a per-row membership matrix and computes every replicate's counts as a
``(B x n_rows) @ (n_rows x n_regions)`` product.

Acceptance bars, pinned here on a 50,000-row pooled dataset at
``n_boot = 100``:

* >= 5x measured speedup over the per-replicate loop (target ~10x;
  the loop is timed over a replicate subset and scaled -- its cost is
  per-replicate constant -- so the bench stays CI-sized);
* exactly one pooled scan: row-scan accounting proves the fast path
  indexes each pooled row once and never calls ``take()``;
* the vectorized null equals the loop oracle **exactly** under shared
  draws.

The measured numbers are also written to ``BENCH_bootstrap.json`` next
to this file (machine-readable: speedup, n_boot, rows, timings) so CI
can archive the perf trajectory as an artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.deviation import deviation_over_structure
from repro.core.gcr import gcr
from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.data import transactions as transactions_module
from repro.data.transactions import TransactionDataset
from repro.obs import MetricsRegistry, use_registry
from repro.stats.bootstrap import deviation_significance
from repro.stats.resample_plan import (
    compile_resample_plan,
    multiplicities_from_indices,
)

#: Acceptance scale: a 50k-row pooled dataset (25k + 25k), the full
#: paper-scale replicate count.
N_ROWS_EACH = 25_000
N_POOLED = 2 * N_ROWS_EACH
N_ITEMS = 200
N_BOOT = 100
#: Replicates actually timed for the loop baseline; its cost is
#: per-replicate constant, so the full-loop time is this times
#: ``N_BOOT / N_BOOT_ORACLE``.
N_BOOT_ORACLE = 8
MIN_SPEEDUP = 5.0

JSON_PATH = Path(__file__).parent / "BENCH_bootstrap.json"


def _builder(dataset):
    return LitsModel.mine(dataset, 0.02, max_len=2)


@pytest.fixture(scope="module")
def workload():
    d1 = generate_basket(
        N_ROWS_EACH, n_items=N_ITEMS, avg_transaction_len=8,
        n_patterns=120, avg_pattern_len=4, seed=71,
    )
    d2 = generate_basket(
        N_ROWS_EACH, n_items=N_ITEMS, avg_transaction_len=8,
        n_patterns=120, avg_pattern_len=5, seed=72,
    )
    m1, m2 = _builder(d1), _builder(d2)
    structure = gcr(m1.structure, m2.structure)
    return d1, d2, (m1, m2), structure


def _fast_significance(d1, d2, models):
    return deviation_significance(
        d1, d2, n_boot=N_BOOT, rng=np.random.default_rng(3), models=models
    )


def _loop_null(structure, pooled, n_boot, rng):
    """The pre-engine path: materialise + rescan every replicate."""
    null = np.empty(n_boot)
    for b in range(n_boot):
        idx1 = rng.choice(N_POOLED, size=N_ROWS_EACH, replace=True)
        idx2 = rng.choice(N_POOLED, size=N_ROWS_EACH, replace=True)
        d1b = pooled.take(idx1)
        d2b = pooled.take(idx2)
        null[b] = deviation_over_structure(structure, d1b, d2b).value
    return null


def test_count_space_engine_beats_replicate_loop(benchmark, workload):
    """>= 5x at n_boot=100 on 50k pooled rows, JSON trajectory emitted."""
    d1, d2, models, structure = workload
    pooled = d1.concat(d2)
    pooled.index  # build outside the timed region: the loop pays its
    # per-replicate take() + rescan either way

    # Fast path timed end to end: compile (the one pooled scan) + all
    # 100 replicates. Indexes dropped so the scan is honestly included.
    def fast():
        d1.drop_index()
        d2.drop_index()
        return _fast_significance(d1, d2, models)

    result = benchmark(fast)
    t_fast = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        result = fast()
        t_fast = min(t_fast, time.perf_counter() - t0)

    t0 = time.perf_counter()
    _loop_null(structure, pooled, N_BOOT_ORACLE, np.random.default_rng(4))
    t_loop_subset = time.perf_counter() - t0
    t_loop = t_loop_subset * (N_BOOT / N_BOOT_ORACLE)

    speedup = t_loop / max(t_fast, 1e-9)

    # Enabled run (untimed): the count-space engine under a live
    # registry. The counters must prove the headline claim -- exactly
    # one pooled scan compiled the whole null.
    registry = MetricsRegistry()
    with use_registry(registry):
        d1.drop_index()
        d2.drop_index()
        _fast_significance(d1, d2, models)
    counters = registry.snapshot()["counters"]
    assert counters["bootstrap.pooled_scans"] == 1
    assert counters.get("bootstrap.replicates.gemm", 0) >= N_BOOT

    payload = {
        "bench": "bootstrap",
        "rows": N_POOLED,
        "n_regions": len(structure.regions),
        "n_boot": N_BOOT,
        "n_boot_timed_for_loop": N_BOOT_ORACLE,
        "t_fast_s": round(t_fast, 4),
        "t_loop_per_replicate_s": round(t_loop_subset / N_BOOT_ORACLE, 4),
        "t_loop_extrapolated_s": round(t_loop, 4),
        "speedup": round(speedup, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
        "counters": counters,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n{N_POOLED} pooled rows, {len(structure.regions)} regions, "
        f"n_boot={N_BOOT}: engine {t_fast:.2f}s vs loop {t_loop:.1f}s "
        f"extrapolated from {N_BOOT_ORACLE} replicates ({speedup:.1f}x) "
        f"-> {JSON_PATH.name}"
    )
    assert len(result.null_values) == N_BOOT
    assert speedup >= MIN_SPEEDUP


def test_fast_path_scans_the_pool_exactly_once(workload, monkeypatch):
    """Scan accounting: each pooled row is indexed once, take() never runs."""
    d1, d2, models, _ = workload
    rows_indexed = []
    real_init = transactions_module.BitmapIndex.__init__

    def counting_init(self, transactions, n_items, **kwargs):
        rows_indexed.append(len(transactions))
        real_init(self, transactions, n_items, **kwargs)

    def forbidden_take(self, indices):
        raise AssertionError("take() materialised a resample")

    monkeypatch.setattr(transactions_module.BitmapIndex, "__init__", counting_init)
    monkeypatch.setattr(TransactionDataset, "take", forbidden_take)
    d1.drop_index()
    d2.drop_index()
    result = _fast_significance(d1, d2, models)
    assert len(result.null_values) == N_BOOT
    # one index build per side = one scan of the pooled rows, total
    assert sum(rows_indexed) == N_POOLED
    assert len(rows_indexed) == 2


def test_vectorized_null_equals_oracle_under_shared_draws(workload):
    """Exactness at scale: same draws -> bit-identical null vectors."""
    d1, d2, _, structure = workload
    pooled = d1.concat(d2)
    plan = compile_resample_plan(structure, d1, d2)
    rng = np.random.default_rng(9)
    n_shared = 4
    idx1 = rng.integers(0, N_POOLED, size=(n_shared, N_ROWS_EACH))
    idx2 = rng.integers(0, N_POOLED, size=(n_shared, N_ROWS_EACH))
    oracle = np.array(
        [
            deviation_over_structure(
                structure, pooled.take(i1), pooled.take(i2)
            ).value
            for i1, i2 in zip(idx1, idx2)
        ]
    )
    fast = plan.null_from_multiplicities(
        multiplicities_from_indices(idx1, N_POOLED),
        multiplicities_from_indices(idx2, N_POOLED),
    )
    assert np.array_equal(oracle, fast)
