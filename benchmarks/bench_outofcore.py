"""Out-of-core storage: ingest throughput, zero-copy fans, bounded RSS.

Three claims of the mmap stripe backend, each pinned here:

1. **Zero-copy process fan-out.** Fanning a support sketch over process
   workers ships a byte-cheap :class:`~repro.data.storage.StripeHandle`
   instead of the packed bit matrix. Against a RAM-backed index of the
   same bytes -- which must pickle the whole buffer to every worker --
   the handle fan must win by at least ``MIN_FAN_SPEEDUP`` with
   bit-identical counts, and ``storage.bytes_shipped`` must stay 0.
2. **Bounded residency.** A chunked scan of a dataset far larger than
   the scan budget completes with exact counts while a fresh child
   process's peak RSS stays *below the dataset size* -- the definition
   of out-of-core. Measured with ``resource.getrusage`` in a spawned
   subprocess so the parent's page cache does not pollute the reading.
3. **Streaming ingest.** Appends commit through capacity-doubling
   stripe growth; the bench records rows/sec for the append path and
   for the full chunked scan.

The timed runs execute in disabled observability mode; an untimed
enabled rerun collects the storage counters, asserted here and again by
the CI snapshot-invariant step over ``BENCH_outofcore.json``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.storage import RamStripeStore, make_store, open_store
from repro.data.transactions import BitmapIndex
from repro.obs import MetricsRegistry, use_registry
from repro.stream.chunks import TransactionLog
from repro.stream.executor import ProcessExecutor, sharded_index_sketch

#: Acceptance scale: a 128 MiB packed bit matrix (1024 item stripes over
#: 2**20 rows) -- ~4x a fresh interpreter's RSS, so "peak RSS below the
#: dataset size" is a real bar, and large enough that pickling it to a
#: process pool is visibly slower than shipping a stripe handle.
N_ITEMS = 1024
N_ROWS = 1 << 20
DATASET_BYTES = N_ITEMS * (N_ROWS // 8)  # 128 MiB

SCAN_BUDGET_BYTES = 1 << 24  # 16 MiB: forces >= 8 chunks over the scan
FAN_SHARDS = 3
MIN_FAN_SPEEDUP = 1.2

INGEST_ROWS = 200_000
INGEST_CHUNK = 8_192

ITEMSETS = [(i,) for i in range(8)] + [(0, 1), (2, 3), (4, 5, 6), ()]

JSON_PATH = Path(__file__).parent / "BENCH_outofcore.json"

_ITEM_BITS = "item_bits"


def _fill_store(store, rng):
    """Create + fill the packed stripe with random bytes, block-wise."""
    buf = store.create(_ITEM_BITS, (N_ITEMS, N_ROWS // 8), np.uint8)
    block = 1 << 23  # 8 MiB of columns at a time
    per_item = N_ROWS // 8
    cols = max(1, block // N_ITEMS)
    for start in range(0, per_item, cols):
        stop = min(per_item, start + cols)
        buf[:, start:stop] = rng.integers(
            0, 256, size=(N_ITEMS, stop - start), dtype=np.uint8
        )
    store.meta["n_rows"] = N_ROWS
    store.meta["n_items"] = N_ITEMS
    store.commit()


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """The same 128 MiB of packed bits behind both backends."""
    stripe_dir = tmp_path_factory.mktemp("outofcore") / "stripes"
    mm_store = make_store("mmap", stripe_dir)
    _fill_store(mm_store, np.random.default_rng(17))
    mm_index = BitmapIndex.from_store(mm_store)

    ram_store = RamStripeStore()
    ram_store.create(_ITEM_BITS, (N_ITEMS, N_ROWS // 8), np.uint8)
    ram_store.stripe(_ITEM_BITS)[:] = mm_store.stripe(_ITEM_BITS)
    ram_store.meta["n_rows"] = N_ROWS
    ram_store.meta["n_items"] = N_ITEMS
    ram_store.commit()
    ram_index = BitmapIndex.from_store(ram_store)

    return stripe_dir, mm_index, ram_index


def _best_of(fn, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _read_payload() -> dict:
    return json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() else {}


def _write_payload(update: dict) -> None:
    payload = _read_payload()
    payload.update(update)
    payload["bench"] = "outofcore"
    payload["n_items"] = N_ITEMS
    payload["n_rows"] = N_ROWS
    payload["dataset_bytes"] = DATASET_BYTES
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_handle_fan_beats_buffer_copy_fan(benchmark, stores):
    """Process fans: shipping a stripe handle vs pickling 128 MiB."""
    _, mm_index, ram_index = stores
    ref = sharded_index_sketch(mm_index, ITEMSETS, n_shards=1).counts

    pool = ProcessExecutor(max_workers=FAN_SHARDS)
    try:
        # Warm the pool (worker spawn + first-import costs) so the
        # timed gap isolates the shipping cost.
        sharded_index_sketch(
            mm_index, ITEMSETS, n_shards=FAN_SHARDS, executor=pool
        )
        fan_mm = benchmark(
            lambda: sharded_index_sketch(
                mm_index, ITEMSETS, n_shards=FAN_SHARDS, executor=pool
            )
        )
        t_mm, _ = _best_of(
            lambda: sharded_index_sketch(
                mm_index, ITEMSETS, n_shards=FAN_SHARDS, executor=pool
            ),
            repeats=3,
        )
        t_ram, fan_ram = _best_of(
            lambda: sharded_index_sketch(
                ram_index, ITEMSETS, n_shards=FAN_SHARDS, executor=pool
            ),
            repeats=2,
        )
    finally:
        pool.shutdown()

    assert np.array_equal(fan_mm.counts, ref)
    assert np.array_equal(fan_ram.counts, ref)
    speedup = t_ram / max(t_mm, 1e-9)

    # Enabled rerun (untimed, fresh owned pool): the zero-copy invariant.
    registry = MetricsRegistry()
    with use_registry(registry):
        sharded_index_sketch(
            mm_index, ITEMSETS, n_shards=FAN_SHARDS, executor="process"
        )
    counters = registry.snapshot()["counters"]
    assert counters.get("storage.bytes_shipped", 0) == 0
    assert counters["stream.shards.sketched"] == FAN_SHARDS

    _write_payload(
        {
            "fan_shards": FAN_SHARDS,
            "t_fan_mmap_s": round(t_mm, 4),
            "t_fan_ram_s": round(t_ram, 4),
            "fan_speedup": round(speedup, 2),
            "min_fan_speedup_asserted": MIN_FAN_SPEEDUP,
            "fan_counters": counters,
        }
    )
    print(
        f"\nprocess fan over {DATASET_BYTES >> 20} MiB: handle "
        f"{t_mm * 1e3:.0f}ms vs copy {t_ram * 1e3:.0f}ms "
        f"({speedup:.1f}x) -> {JSON_PATH.name}"
    )
    assert speedup >= MIN_FAN_SPEEDUP


def test_chunked_scan_bounded_rss_in_child_process(stores):
    """A fresh process scans 128 MiB with peak RSS below the dataset."""
    stripe_dir, mm_index, _ = stores
    ref = mm_index.support_counts(ITEMSETS)

    child = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        input=json.dumps(
            {
                "stripe_dir": str(stripe_dir),
                "itemsets": [list(s) for s in ITEMSETS],
                "budget_bytes": SCAN_BUDGET_BYTES,
            }
        ),
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=Path(__file__).parent.parent,
    )
    result = json.loads(child.stdout)

    assert result["counts"] == ref.tolist()
    peak = result["peak_sampled_rss_bytes"]
    assert peak < DATASET_BYTES, (
        f"child peak RSS {peak >> 20} MiB not below the "
        f"{DATASET_BYTES >> 20} MiB dataset"
    )
    counters = result["counters"]
    assert counters["storage.rows_scanned"] == N_ROWS
    assert counters["storage.chunks_scanned"] >= DATASET_BYTES // (
        2 * SCAN_BUDGET_BYTES
    )
    _write_payload(
        {
            "scan_budget_bytes": SCAN_BUDGET_BYTES,
            "scan_rows": N_ROWS,
            "child_peak_rss_bytes": peak,
            "scan_counters": counters,
        }
    )
    print(
        f"\nchild scanned {DATASET_BYTES >> 20} MiB under a "
        f"{SCAN_BUDGET_BYTES >> 20} MiB budget with peak RSS "
        f"{peak >> 20} MiB"
    )


#: Runs in a fresh interpreter. Peak residency is tracked by sampling
#: ``VmRSS`` (current resident set) in a background thread: the kernel's
#: ``ru_maxrss`` / ``VmHWM`` high-water mark is inherited across
#: fork+exec on Linux, so a child spawned by a fat parent would report
#: the parent's peak no matter what it does itself.
_CHILD_SCRIPT = """
import json, sys, threading, time

import numpy as np

from repro.data.storage import open_store
from repro.data.transactions import BitmapIndex
from repro.obs import MetricsRegistry, use_registry

def vmrss_bytes():
    with open("/proc/self/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    return 0

peak = [vmrss_bytes()]
done = threading.Event()

def sampler():
    while not done.is_set():
        peak[0] = max(peak[0], vmrss_bytes())
        time.sleep(0.005)

spec = json.loads(sys.stdin.read())
thread = threading.Thread(target=sampler, daemon=True)
thread.start()
index = BitmapIndex.from_store(open_store(spec["stripe_dir"]))
registry = MetricsRegistry()
with use_registry(registry):
    counts = index.scan_counts(
        [tuple(s) for s in spec["itemsets"]],
        budget_bytes=spec["budget_bytes"],
    )
done.set()
thread.join()
peak[0] = max(peak[0], vmrss_bytes())
print(json.dumps({
    "counts": counts.tolist(),
    "peak_sampled_rss_bytes": peak[0],
    "counters": registry.snapshot()["counters"],
}))
"""


def test_mmap_ingest_throughput(tmp_path):
    """Append-commit streaming ingest through capacity-doubling stripes."""
    rows = [(i % N_ITEMS,) for i in range(INGEST_ROWS)]

    t0 = time.perf_counter()
    log = TransactionLog(
        N_ITEMS, backend="mmap", stripe_dir=tmp_path / "ingest"
    )
    for start in range(0, INGEST_ROWS, INGEST_CHUNK):
        log.append(rows[start : start + INGEST_CHUNK])
    t_ingest = time.perf_counter() - t0
    assert log.index.n_transactions == INGEST_ROWS

    t_scan, counts = _best_of(
        lambda: log.index.scan_counts(ITEMSETS, budget_bytes=1 << 22),
        repeats=3,
    )
    assert np.array_equal(counts, log.index.support_counts(ITEMSETS))

    ingest_rps = INGEST_ROWS / max(t_ingest, 1e-9)
    scan_rps = INGEST_ROWS / max(t_scan, 1e-9)
    _write_payload(
        {
            "ingest_rows": INGEST_ROWS,
            "ingest_rows_per_s": round(ingest_rps),
            "scan_rows_per_s": round(scan_rps),
        }
    )
    print(
        f"\ningest {ingest_rps / 1e3:.0f}k rows/s, "
        f"chunked scan {scan_rps / 1e3:.0f}k rows/s"
    )
    assert ingest_rps > 0 and scan_rps > 0
