"""Ablation: incremental window advance vs rebuild-per-window.

The streaming subsystem's claim: advancing a sliding window is
``+ entering chunk sketch - leaving chunk sketch`` -- the only rows
scanned are the entering chunk's, so a stream of ``W``-row windows
advancing by ``s`` rows costs O(s) per advance instead of the O(W)
(plus an index rebuild) a from-scratch recount pays. This bench pins
the acceptance bar: >= 3x over 50 sliding windows of 2,000 transactions,
with bit-identical per-window counts.

The timed runs execute in the default *disabled* observability mode
(the module-level null registry), so the >= 3x floor doubles as the
overhead acceptance bar for :mod:`repro.obs`. A separate enabled run
collects the engine counters and writes them, with the timings, to
``BENCH_streaming.json`` for the CI artifact trail.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.data.transactions import BitmapIndex
from repro.obs import MetricsRegistry, use_registry
from repro.stream.chunks import iter_chunks
from repro.stream.windows import WindowManager

#: Acceptance scale: 50 sliding windows of 2k transactions each,
#: advancing by a 250-row chunk (87.5% overlap between neighbours --
#: the regime where recounting surviving rows is pure waste).
WINDOW = 2_000
STEP = 250
N_WINDOWS = 50
N_ROWS = WINDOW + (N_WINDOWS - 1) * STEP  # 14,250
N_ITEMS = 150

JSON_PATH = Path(__file__).parent / "BENCH_streaming.json"


@pytest.fixture(scope="module")
def workload():
    dataset = generate_basket(
        N_ROWS, n_items=N_ITEMS, avg_transaction_len=8, n_patterns=100,
        avg_pattern_len=4, seed=901,
    )
    stream = list(dataset)
    head = dataset.take(np.arange(WINDOW))
    itemsets = list(LitsModel.mine(head, 0.01, max_len=2).itemsets)
    return stream, itemsets


def _incremental(stream, itemsets):
    manager = WindowManager(
        itemsets, N_ITEMS, window_chunks=WINDOW // STEP, policy="sliding"
    )
    return [
        (w.start, w.sketch.counts)
        for w in manager.push_many(iter_chunks(stream, STEP))
    ]


def _rebuild_per_window(stream, itemsets):
    out = []
    for start in range(0, len(stream) - WINDOW + 1, STEP):
        index = BitmapIndex(stream[start : start + WINDOW], N_ITEMS)
        out.append((start, index.support_counts(itemsets)))
    return out


def _best_of(fn, repeats: int):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_incremental_advance_beats_full_rescan(benchmark, workload):
    """The acceptance bar: >= 3x on 50 sliding windows, same counts."""
    stream, itemsets = workload

    fast = benchmark(lambda: _incremental(stream, itemsets))
    t_fast, _ = _best_of(lambda: _incremental(stream, itemsets), repeats=3)
    t_slow, slow = _best_of(
        lambda: _rebuild_per_window(stream, itemsets), repeats=2
    )

    assert len(fast) == len(slow) == N_WINDOWS
    for (start_a, counts_a), (start_b, counts_b) in zip(fast, slow):
        assert start_a == start_b
        assert counts_a.tolist() == counts_b.tolist()

    speedup = t_slow / max(t_fast, 1e-9)

    # Enabled run (untimed): the same pipeline under a live registry,
    # so the emitted JSON carries the engine counters next to the
    # disabled-mode timings the assertion above was measured in.
    registry = MetricsRegistry()
    with use_registry(registry):
        _incremental(stream, itemsets)
    counters = registry.snapshot()["counters"]
    assert counters["stream.windows.rows_sketched"] == N_ROWS
    assert counters["stream.windows.emitted"] == N_WINDOWS

    payload = {
        "bench": "streaming",
        "window": WINDOW,
        "step": STEP,
        "n_windows": N_WINDOWS,
        "n_itemsets": len(itemsets),
        "t_incremental_s": round(t_fast, 4),
        "t_rebuild_s": round(t_slow, 4),
        "speedup": round(speedup, 2),
        "min_speedup_asserted": 3.0,
        "counters": counters,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n{N_WINDOWS} windows of {WINDOW} rows (step {STEP}, "
        f"{len(itemsets)} itemsets): incremental {t_fast * 1e3:.1f}ms vs "
        f"rebuild {t_slow * 1e3:.1f}ms ({speedup:.1f}x) -> {JSON_PATH.name}"
    )
    assert speedup >= 3.0


def test_incremental_scans_only_entering_rows(workload):
    """Scan accounting: every pushed row is sketched exactly once."""
    stream, itemsets = workload
    manager = WindowManager(
        itemsets, N_ITEMS, window_chunks=WINDOW // STEP, policy="sliding"
    )
    windows = list(manager.push_many(iter_chunks(stream, STEP)))
    assert len(windows) == N_WINDOWS
    assert manager.rows_sketched == N_ROWS
    # a rebuild-per-window baseline would scan WINDOW rows per window
    assert N_WINDOWS * WINDOW / manager.rows_sketched > 3.5
