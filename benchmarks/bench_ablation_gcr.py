"""Ablation: GCR versus coarser/finer common refinements (Thms 4.1/4.3).

Using the GCR rather than an arbitrary common refinement gives the least
deviation -- the "least-work transformation". This bench quantifies how
much a needlessly fine refinement inflates the measured deviation and
how much slower it is to measure.
"""

from __future__ import annotations

import time

import pytest

from repro.core.deviation import deviation, deviation_over_structure
from repro.core.gcr import gcr
from repro.core.lits import LitsModel
from repro.core.model import LitsStructure
from repro.data.quest_basket import generate_basket


@pytest.fixture(scope="module")
def pair(scale):
    d1 = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len,
        seed=301,
    )
    d2 = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len + 1,
        seed=302,
    )
    ms = scale.min_supports[0]
    m1 = LitsModel.mine(d1, ms, max_len=scale.max_itemset_len)
    m2 = LitsModel.mine(d2, ms, max_len=scale.max_itemset_len)
    return m1, m2, d1, d2


def test_gcr_vs_finer_refinement(benchmark, pair, scale):
    m1, m2, d1, d2 = pair

    via_gcr = benchmark.pedantic(
        lambda: deviation(m1, m2, d1, d2).value, rounds=1, iterations=1
    )

    # A gratuitously finer common refinement: GCR + all single items +
    # all pairs of frequent single items.
    g = gcr(m1.structure, m2.structure)
    singles = [frozenset({i}) for i in range(scale.n_items)]
    frequent_singles = sorted(
        {next(iter(s)) for s in g.itemsets if len(s) == 1}
    )
    pairs = [
        frozenset({a, b})
        for i, a in enumerate(frequent_singles[:40])
        for b in frequent_singles[i + 1 : 40]
    ]
    finer = LitsStructure(tuple(g.itemsets) + tuple(singles) + tuple(pairs))

    t0 = time.perf_counter()
    via_finer = deviation_over_structure(finer, d1, d2).value
    t_finer = time.perf_counter() - t0

    print(f"\nGCR ({len(g)} regions): delta={via_gcr:.4f}")
    print(f"finer refinement ({len(finer)} regions): delta={via_finer:.4f} "
          f"in {t_finer:.3f}s")
    print(f"inflation from over-refining: "
          f"{100 * (via_finer - via_gcr) / max(via_gcr, 1e-12):.1f}%")

    # Theorem 4.1: the GCR gives the least deviation.
    assert via_gcr <= via_finer + 1e-9
    # And measures strictly fewer regions.
    assert len(g) < len(finer)
