"""Substrate micro-benchmarks: the miners and the GCR overlay.

Not a paper table -- these keep the building blocks honest so the
experiment-level timings above stay interpretable.
"""

from __future__ import annotations

import pytest

from repro.core.dtree_model import DtModel
from repro.core.gcr import gcr_partition
from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.data.quest_classify import generate_classification
from repro.mining.tree.builder import TreeParams


@pytest.fixture(scope="module")
def basket(scale):
    return generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len,
        seed=606,
    )


@pytest.fixture(scope="module")
def people(scale):
    return generate_classification(scale.base_rows, function=2, seed=607)


def test_apriori_mining(benchmark, basket, scale):
    model = benchmark(
        lambda: LitsModel.mine(
            basket, scale.min_supports[0], max_len=scale.max_itemset_len
        )
    )
    print(f"\nApriori: {len(model)} frequent itemsets "
          f"at ms={scale.min_supports[0]:g} over {len(basket)} transactions")
    assert len(model) > 0


def test_tree_building(benchmark, people, scale):
    params = TreeParams(
        max_depth=scale.tree_max_depth,
        min_leaf=scale.tree_min_leaf(len(people)),
    )
    model = benchmark(lambda: DtModel.fit(people, params))
    print(f"\nCART: {model.n_leaves} leaves on {len(people)} tuples")
    assert model.n_leaves >= 2


def test_partition_overlay(benchmark, people, scale):
    params = TreeParams(
        max_depth=scale.tree_max_depth,
        min_leaf=scale.tree_min_leaf(len(people)),
    )
    m1 = DtModel.fit(people, params)
    other = generate_classification(scale.base_rows, function=3, seed=608)
    m2 = DtModel.fit(other, params)

    overlay = benchmark(lambda: gcr_partition(m1.structure, m2.structure))
    print(f"\noverlay: {len(m1.structure.cells)} x {len(m2.structure.cells)} "
          f"leaves -> {len(overlay.cells)} GCR cells")
    assert len(overlay.cells) >= max(
        len(m1.structure.cells), len(m2.structure.cells)
    )


def test_gcr_measurement_scan(benchmark, people, scale):
    """One-scan measurement of all GCR regions (Section 3.3.1)."""
    params = TreeParams(
        max_depth=scale.tree_max_depth,
        min_leaf=scale.tree_min_leaf(len(people)),
    )
    m1 = DtModel.fit(people, params)
    other = generate_classification(scale.base_rows, function=3, seed=609)
    m2 = DtModel.fit(other, params)
    structure = gcr_partition(m1.structure, m2.structure)

    counts = benchmark(lambda: structure.counts(people))
    assert counts.sum() == len(people)
