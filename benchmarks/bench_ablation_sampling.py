"""Ablation: sampling with versus without replacement (Figure 9's WOR note).

Figure 9 plots without-replacement (WOR) SD curves. At small fractions
the two schemes behave alike; at large fractions WOR samples converge to
the dataset itself, so WOR SD drops to zero faster than WR SD.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.experiments.sample_size import sample_deviation_curve


@pytest.fixture(scope="module")
def dataset(scale):
    return generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len,
        seed=505,
    )


def test_wr_vs_wor_sampling(benchmark, dataset, scale):
    ms = scale.min_supports[0]

    def builder(d):
        return LitsModel.mine(d, ms, max_len=scale.max_itemset_len)

    fractions = (0.1, 0.5, 0.9)

    def both_curves():
        wr = sample_deviation_curve(
            dataset, builder, fractions, n_reps=scale.n_reps,
            rng=np.random.default_rng(1), replace=True, label="WR",
        )
        wor = sample_deviation_curve(
            dataset, builder, fractions, n_reps=scale.n_reps,
            rng=np.random.default_rng(1), replace=False, label="WOR",
        )
        return wr, wor

    wr, wor = benchmark.pedantic(both_curves, rounds=1, iterations=1)

    print("\nSF    WR-SD     WOR-SD")
    for f, a, b in zip(fractions, wr.means(), wor.means()):
        print(f"{f:4.2f}  {a:8.4f}  {b:8.4f}")

    # Both decrease with SF.
    assert wr.means()[-1] < wr.means()[0]
    assert wor.means()[-1] < wor.means()[0]
    # At 90% the WOR sample nearly *is* the dataset: clearly lower SD.
    assert wor.means()[-1] < wr.means()[-1]
