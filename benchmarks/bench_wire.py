"""Wire ablation: federated fleet comparison from kilobyte payloads.

The sketch-exchange claim, pinned at acceptance scale (a 24-store
tabular fleet -- 20 stores labelled by one classification process plus
4 drifted outliers on other functions):

* **compaction**: each store's shipment (partition sketch + embedded
  reference model) is >= 100x smaller than its raw rows -- kilobytes
  cross the wire, not the 480 KB row bags;
* **fidelity**: the comparer, holding only the payloads, reproduces the
  row-level oracle's deviation matrix bit-for-bit and therefore every
  threshold decision and the drift grouping;
* **accounting**: the obs counters (``wire.bytes_shipped``,
  ``wire.payloads_unpacked``, ``fleet.pairs.sketch_exact``) tell the
  same story the matrix does, with zero checksum failures.
"""

from __future__ import annotations

import itertools
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.dtree_model import DtModel
from repro.data.quest_classify import generate_classification
from repro.fleet import FleetDeviationMatrix
from repro.mining.tree.builder import TreeParams
from repro.obs import MetricsRegistry, use_registry
from repro.stream.sketch import PartitionSketch
from repro.wire import pack

N_HEALTHY = 20
N_DRIFTED = 4
N_STORES = N_HEALTHY + N_DRIFTED
N_PAIRS = N_STORES * (N_STORES - 1) // 2
N_ROWS = 6_000
FUNCTIONS = [1] * N_HEALTHY + [2, 3, 2, 3]

JSON_PATH = Path(__file__).parent / "BENCH_wire.json"


@pytest.fixture(scope="module")
def fleet():
    """24 stores: 20 on classification function 1, 4 drifted outliers."""
    datasets = [
        generate_classification(N_ROWS, function=fn, seed=500 + i)
        for i, fn in enumerate(FUNCTIONS)
    ]
    ref = DtModel.fit(datasets[0], TreeParams(max_depth=6, min_leaf=50))
    return ref, datasets


def drift_threshold(values: np.ndarray) -> float:
    """The operator's cut: between same-function and cross-function."""
    same = [
        values[i, j]
        for i, j in itertools.combinations(range(N_STORES), 2)
        if FUNCTIONS[i] == FUNCTIONS[j]
    ]
    cross = [
        values[i, j]
        for i, j in itertools.combinations(range(N_STORES), 2)
        if FUNCTIONS[i] != FUNCTIONS[j]
    ]
    return float((max(same) + min(cross)) / 2.0)


def test_fleet_comparison_from_payloads_matches_row_level_oracle(
    benchmark, fleet
):
    """The acceptance bar: kilobyte payloads, oracle-equal decisions."""
    ref, datasets = fleet

    # Every store packs its shipment locally (rows never leave).
    pack_registry = MetricsRegistry()
    t0 = time.perf_counter()
    with use_registry(pack_registry):
        payloads = [
            pack(PartitionSketch.from_dataset(d, ref.structure), model=ref)
            for d in datasets
        ]
    t_pack = time.perf_counter() - t0

    # >= 100x compaction, per store: a few KiB vs hundreds of KB of rows.
    raw_bytes = [d.X.nbytes + d.y.nbytes for d in datasets]
    compaction = min(r / len(p) for r, p in zip(raw_bytes, payloads))
    assert max(len(p) for p in payloads) <= 4096, (
        f"largest shipment is {max(len(p) for p in payloads)} bytes"
    )
    assert compaction >= 100.0, f"only {compaction:.0f}x compaction"

    def run_federated():
        sketch_fleet = FleetDeviationMatrix.from_sketches(payloads)
        return sketch_fleet, sketch_fleet.exhaustive()

    sketch_fleet, federated = benchmark.pedantic(
        run_federated, rounds=1, iterations=1
    )

    t1 = time.perf_counter()
    run_federated()
    t_federated = time.perf_counter() - t1

    t2 = time.perf_counter()
    oracle = FleetDeviationMatrix([ref] * N_STORES, datasets).exhaustive()
    t_oracle = time.perf_counter() - t2

    # Bit-equal to the row-level engine: identical region counts feed
    # identical deviation arithmetic, so every threshold decision (and
    # the drift grouping) is reproduced exactly from the payloads.
    assert np.array_equal(federated.values, oracle.values)
    assert federated.n_sketch_exact == federated.n_pairs == N_PAIRS
    assert federated.n_sketch_exact + federated.n_pruned == N_PAIRS
    threshold = drift_threshold(oracle.values)
    assert (
        (federated.values <= threshold) == (oracle.values <= threshold)
    ).all()
    groups = federated.components(threshold)
    healthy_group = next(
        members for members in groups.values() if "store-0" in members
    )
    assert len(healthy_group) == N_HEALTHY

    # Enabled run (untimed): the comparer under a live registry. The
    # shipped-bytes ledger must equal the payloads it was handed, with
    # every envelope checksum-verified and none failing.
    registry = MetricsRegistry()
    with use_registry(registry):
        fed_fleet, _ = run_federated()
    counters = registry.snapshot()["counters"]
    bytes_shipped = sum(len(p) for p in payloads)
    assert fed_fleet.payload_bytes == tuple(len(p) for p in payloads)
    assert counters["wire.bytes_shipped"] == bytes_shipped
    assert counters["wire.payloads_unpacked"] >= N_STORES
    assert counters.get("wire.checksum_failures", 0) == 0
    assert counters["fleet.pairs.sketch_exact"] == N_PAIRS

    payload = {
        "bench": "wire",
        "n_stores": N_STORES,
        "n_pairs": N_PAIRS,
        "n_rows_per_store": N_ROWS,
        "raw_bytes_per_store": raw_bytes[0],
        "payload_bytes_max": max(len(p) for p in payloads),
        "bytes_shipped": bytes_shipped,
        "compaction_x": round(compaction, 1),
        "t_pack_s": round(t_pack, 4),
        "t_unpack_compare_s": round(t_federated, 4),
        "t_oracle_s": round(t_oracle, 4),
        "pack_counters": pack_registry.snapshot()["counters"],
        "counters": counters,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n{N_STORES} stores / {N_PAIRS} pairs from payloads alone: "
        f"{max(len(p) for p in payloads)} B/store vs {raw_bytes[0]} B raw "
        f"({compaction:.0f}x); pack {t_pack * 1e3:.0f}ms, unpack+compare "
        f"{t_federated * 1e3:.0f}ms, row-level oracle "
        f"{t_oracle * 1e3:.0f}ms -> {JSON_PATH.name}"
    )


def test_merged_shards_ship_like_one_store(fleet):
    """Shard merge over the wire: sum of shipped halves == whole."""
    ref, datasets = fleet
    whole = PartitionSketch.from_dataset(datasets[0], ref.structure)
    half_a = PartitionSketch.from_dataset(
        datasets[0].slice_rows(0, N_ROWS // 2), ref.structure
    )
    half_b = PartitionSketch.from_dataset(
        datasets[0].slice_rows(N_ROWS // 2, N_ROWS), ref.structure
    )
    from repro.wire import unpack

    merged = unpack(pack(half_a, model=ref)) + unpack(
        pack(half_b, model=ref)
    )
    np.testing.assert_array_equal(merged.counts, whole.counts)
    assert merged.n_rows == whole.n_rows
    assert pack(merged, model=ref) == pack(whole, model=ref)
