"""Section 4.1.1: delta* quality and speed against the exact delta.

The paper's claim set (Theorem 4.2 + Figure 13's timing columns):
delta* majorises delta, never ignores a significant deviation, satisfies
the triangle inequality, and is computed from the in-memory models alone
-- orders of magnitude faster than the dataset-scanning delta.
"""

from __future__ import annotations

import time

import pytest

from repro.core.deviation import deviation
from repro.core.lits import LitsModel
from repro.core.upper_bound import upper_bound_deviation
from repro.data.quest_basket import generate_basket


@pytest.fixture(scope="module")
def mined_pair(scale):
    d1 = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len,
        seed=101,
    )
    d2 = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len + 1,
        seed=202,
    )
    ms = scale.min_supports[0]
    m1 = LitsModel.mine(d1, ms, max_len=scale.max_itemset_len)
    m2 = LitsModel.mine(d2, ms, max_len=scale.max_itemset_len)
    return m1, m2, d1, d2


def test_upper_bound_speed(benchmark, mined_pair):
    """Benchmark delta* itself; it must beat the scanning delta handily."""
    m1, m2, d1, d2 = mined_pair

    ub = benchmark(lambda: upper_bound_deviation(m1, m2).value)

    d1.drop_index()
    d2.drop_index()
    t0 = time.perf_counter()
    exact = deviation(m1, m2, d1, d2).value
    t_exact = time.perf_counter() - t0

    t0 = time.perf_counter()
    upper_bound_deviation(m1, m2)
    t_bound = time.perf_counter() - t0

    print(f"\ndelta = {exact:.4f} in {t_exact:.4f}s; "
          f"delta* = {ub:.4f} in {t_bound:.5f}s "
          f"({t_exact / max(t_bound, 1e-9):.0f}x faster)")

    assert ub >= exact - 1e-9
    assert t_bound < t_exact / 2
    # delta* is tight enough to be useful (within a small factor).
    assert ub <= 2 * exact + 1.0


def test_upper_bound_quality(mined_pair):
    """The relative slack of delta* stays moderate on generated data."""
    m1, m2, d1, d2 = mined_pair
    exact = deviation(m1, m2, d1, d2).value
    ub = upper_bound_deviation(m1, m2).value
    slack = (ub - exact) / max(exact, 1e-12)
    print(f"\ndelta* slack: {100 * slack:.1f}%")
    assert slack >= -1e-12
    assert slack < 1.0  # less than 2x on realistic basket data
