"""Ablation: the four (f, g) deviation instantiations (Section 3.3.2).

The paper studies all four combinations of {f_a, f_s} x {g_sum, g_max}
(presenting f_a/g_sum for space). This bench computes all four on one
dataset pair and checks the structural relationships between them:
g_max <= g_sum, f_s inflates rare-region changes relative to f_a, and
all four agree on the same-process-vs-drift ordering.
"""

from __future__ import annotations

import pytest

from repro.core.aggregate import MAX, SUM
from repro.core.deviation import deviation
from repro.core.difference import ABSOLUTE, SCALED
from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
import numpy as np


@pytest.fixture(scope="module")
def datasets(scale):
    rng = np.random.default_rng(77)
    pool = build_pattern_pool(
        rng, n_items=scale.n_items, n_patterns=scale.n_patterns,
        avg_pattern_len=scale.avg_pattern_len,
    )
    base = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len, rng=rng, pool=pool,
    )
    same = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len, rng=rng, pool=pool,
    )
    drifted = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len + 1,
        rng=rng,
    )
    return base, same, drifted


def test_four_instantiations(benchmark, datasets, scale):
    base, same, drifted = datasets
    ms = scale.min_supports[0]

    def mine(d):
        return LitsModel.mine(d, ms, max_len=scale.max_itemset_len)

    m_base, m_same, m_drift = mine(base), mine(same), mine(drifted)

    def all_four(m2, d2):
        return {
            (f.name, g.name): deviation(m_base, m2, base, d2, f=f, g=g).value
            for f in (ABSOLUTE, SCALED)
            for g in (SUM, MAX)
        }

    values = benchmark.pedantic(
        all_four, args=(m_drift, drifted), rounds=1, iterations=1
    )
    same_values = all_four(m_same, same)

    print("\nfour instantiations (same-process vs drifted):")
    for key in values:
        print(f"  {key}: same={same_values[key]:9.4f}  drift={values[key]:9.4f}")

    # g_max never exceeds g_sum.
    assert values[("f_a", "g_max")] <= values[("f_a", "g_sum")]
    assert values[("f_s", "g_max")] <= values[("f_s", "g_sum")]
    # f_s's per-region values are bounded by 2, so its g_max is too.
    assert values[("f_s", "g_max")] <= 2.0 + 1e-9
    # Every instantiation ranks drifted above same-process.
    for key in values:
        assert values[key] > same_values[key], key
