"""Figures 7-9: lits-model SD-vs-SF curves (3 dataset sizes x 3 minsups).

Paper's shapes: (1) SD falls steeply with SF and flattens past ~0.3;
(2) lower minimum support sits on a higher curve ("the lower the minimum
support level the more difficult it is to estimate the model");
(3) for a fixed SF, bigger datasets give lower SD.
"""

from __future__ import annotations

from conftest import once

from repro.experiments.figures import figures_7_to_9
from repro.experiments.reporting import format_curves


def test_fig7_9_lits_sd_vs_sf(benchmark, scale):
    families = once(benchmark, figures_7_to_9, scale)

    assert len(families) == 3
    for family in families:
        series = [(c.label, list(c.means())) for c in family.curves]
        print(f"\n{family.figure} -- {family.dataset_name}")
        print(format_curves(list(scale.fractions), series))

        for curve in family.curves:
            means = curve.means()
            # (1) SD decreases from the smallest to the largest fraction.
            assert means[-1] < means[0]
            # ...and the early drop dominates the late drop (knee shape).
            early_drop = means[0] - means[len(means) // 2]
            late_drop = means[len(means) // 2] - means[-1]
            assert early_drop > late_drop

        # (2) lower minsup => higher curve (compare curve averages).
        averages = [c.means().mean() for c in family.curves]
        assert averages == sorted(averages), (
            "curves should rise as minsup falls: " + str(averages)
        )

    # (3) bigger dataset => lower SD at the same minsup (compare the
    # 1x family against the 0.5x family at the top support level).
    big = families[0].curves[0].means().mean()
    small = families[2].curves[0].means().mean()
    assert big < small
