"""Ablation: batched support counting vs the seed per-itemset loop
(and both vs per-transaction subset tests).

The bitmap index is what makes "extend the model to the GCR and measure
both datasets in one scan" cheap; the batched engine is what makes a
*collection* of itemsets cheap: one stacked ``bitwise_and`` reduction
plus one popcount pass per length group, instead of a Python-level loop
over itemsets. This bench pins down both gaps and checks the batched
deviation engine's scan discipline.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.deviation import deviation_many
from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.data.transactions import BitmapIndex
from repro.mining.itemsets import brute_force_support_count

#: Acceptance scale: >= 10k transactions, >= 500 itemsets.
N_TRANSACTIONS = 12_000
N_ITEMSETS = 600


@pytest.fixture(scope="module")
def workload():
    dataset = generate_basket(
        N_TRANSACTIONS, n_items=200, avg_transaction_len=8,
        n_patterns=150, avg_pattern_len=4, seed=404,
    )
    model = LitsModel.mine(dataset, 0.01, max_len=3)
    itemsets = list(model.itemsets)
    rng = np.random.default_rng(405)
    while len(itemsets) < N_ITEMSETS:  # pad with random pairs/triples
        size = int(rng.integers(2, 4))
        itemsets.append(frozenset(rng.choice(200, size=size, replace=False).tolist()))
    return dataset, itemsets[:N_ITEMSETS]


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_batched_vs_seed_loop(benchmark, workload):
    """The tentpole claim: batched counting >= 3x the per-itemset loop."""
    dataset, itemsets = workload
    index = dataset.index
    index.support_counts(itemsets)  # warm any lazy allocations

    batched = benchmark(lambda: index.support_counts(itemsets))
    t_batch, _ = _best_of(lambda: index.support_counts(itemsets), repeats=5)
    t_loop, looped = _best_of(lambda: index.support_counts_loop(itemsets), repeats=3)

    speedup = t_loop / max(t_batch, 1e-9)
    print(f"\n{len(itemsets)} itemsets x {len(dataset)} transactions: "
          f"batched {t_batch * 1e3:.2f}ms vs per-itemset loop "
          f"{t_loop * 1e3:.2f}ms ({speedup:.1f}x)")

    assert batched.tolist() == looped.tolist()  # identical answers
    assert speedup >= 3.0


def test_bitmap_support_counting(benchmark, workload):
    """The seed comparison: any bitmap path vs per-transaction subset tests."""
    dataset, itemsets = workload
    small = itemsets[:150]
    dataset.drop_index()

    def count_all():
        dataset.drop_index()  # include the scan (index build) in the timing
        return dataset.index.support_counts(small)

    fast = benchmark(count_all)

    t0 = time.perf_counter()
    slow = [brute_force_support_count(dataset, s) for s in small]
    t_slow = time.perf_counter() - t0

    t_fast, _ = _best_of(count_all, repeats=2)

    print(f"\n{len(small)} itemsets x {len(dataset)} transactions: "
          f"bitmap {t_fast:.3f}s vs subset-test {t_slow:.3f}s "
          f"({t_slow / max(t_fast, 1e-9):.0f}x)")

    assert list(fast) == slow  # identical answers
    assert t_fast < t_slow  # and the bitmap path is faster


def test_deviation_many_scans_each_window_once(workload, monkeypatch):
    """W windows cost W + 1 batched counting passes, not W x itemsets."""
    dataset, _ = workload
    n_windows = 6
    size = len(dataset) // n_windows
    windows = [
        dataset.take(np.arange(i * size, (i + 1) * size))
        for i in range(n_windows)
    ]
    models = [LitsModel.mine(w, 0.02, max_len=3) for w in windows]
    for w in windows:
        w.index  # pre-build so only counting passes are measured

    calls: list[int] = []
    original = BitmapIndex.support_counts

    def counting(self, itemsets, **kwargs):
        calls.append(id(self))
        return original(self, itemsets, **kwargs)

    monkeypatch.setattr(BitmapIndex, "support_counts", counting)
    results = deviation_many(models[0], models[1:], windows[0], windows[1:])

    assert len(results) == n_windows - 1
    # one union pass over the reference window + one pass per fleet window
    assert len(calls) == n_windows
    assert len(set(calls)) == len(calls)  # no window counted twice
