"""Ablation: packed-bitmap support counting versus per-transaction subset
tests.

The bitmap index is what makes "extend the model to the GCR and measure
both datasets in one scan" cheap. This bench measures both
implementations counting the same itemset collection.
"""

from __future__ import annotations

import time

import pytest

from repro.core.lits import LitsModel
from repro.data.quest_basket import generate_basket
from repro.mining.itemsets import brute_force_support_count


@pytest.fixture(scope="module")
def workload(scale):
    dataset = generate_basket(
        scale.base_transactions, n_items=scale.n_items,
        avg_transaction_len=scale.avg_transaction_len,
        n_patterns=scale.n_patterns, avg_pattern_len=scale.avg_pattern_len,
        seed=404,
    )
    model = LitsModel.mine(
        dataset, scale.min_supports[0], max_len=scale.max_itemset_len
    )
    itemsets = list(model.itemsets)[:150]
    return dataset, itemsets


def test_bitmap_support_counting(benchmark, workload):
    dataset, itemsets = workload
    dataset.drop_index()

    def count_all():
        dataset.drop_index()  # include the scan (index build) in the timing
        return dataset.index.support_counts(itemsets)

    fast = benchmark(count_all)

    t0 = time.perf_counter()
    slow = [brute_force_support_count(dataset, s) for s in itemsets]
    t_slow = time.perf_counter() - t0

    t0 = time.perf_counter()
    count_all()
    t_fast = time.perf_counter() - t0

    print(f"\n{len(itemsets)} itemsets x {len(dataset)} transactions: "
          f"bitmap {t_fast:.3f}s vs subset-test {t_slow:.3f}s "
          f"({t_slow / max(t_fast, 1e-9):.0f}x)")

    assert list(fast) == slow  # identical answers
    assert t_fast < t_slow  # and the bitmap path is faster
