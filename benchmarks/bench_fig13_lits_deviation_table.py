"""Figure 13: the lits deviation table (delta, sig%, delta*, timings).

Paper's shapes: the same-process dataset D(1) is insignificant while the
fresh-process D(2)-D(4) rows hit 99%; pattern length dominates the
deviation magnitude; delta* majorises delta and is computed effectively
instantaneously (their 44-46s vs 0.01s; ours scale down but keep the
orders-of-magnitude gap).

Scaled-down divergence (documented in EXPERIMENTS.md): the 5%-block rows
(5)-(7) need paper-scale row counts for the block shift to clear the
mining noise floor, so their significances are not asserted here.
"""

from __future__ import annotations

from conftest import once

from repro.experiments.deviation_tables import figure_13


def test_fig13_lits_deviation_table(benchmark, scale):
    rows = once(benchmark, figure_13, scale)

    print("\nFigure 13 (scaled):")
    print(f"{'Dataset':9s} {'delta':>9s} {'sig%':>5s} {'delta*':>9s} "
          f"{'t(delta)':>9s} {'t(delta*)':>9s}")
    for r in rows:
        print(f"{r.label:9s} {r.delta:9.4f} {r.significance:5.0f} "
              f"{r.delta_star:9.4f} {r.time_delta:9.4f} {r.time_delta_star:9.4f}")

    by_label = {r.label: r for r in rows}
    same = by_label["D(1)"]
    cross = [by_label[k] for k in ("D(2)", "D(3)", "D(4)")]

    # Same process: unremarkable deviation; fresh processes: significant.
    assert same.significance < 95.0
    for row in cross:
        assert row.significance >= 95.0
        assert row.delta > same.delta

    # Pattern length (rows 3-4) influences characteristics more than
    # pattern count (row 2) -- the paper's "patlen has a large influence".
    assert by_label["D(3)"].delta > by_label["D(2)"].delta

    for row in rows:
        # Theorem 4.2(1): delta* majorises delta.
        assert row.delta_star >= row.delta - 1e-9
        # Theorem 4.2(3): delta* needs no scan -- it is much faster.
        assert row.time_delta_star < row.time_delta / 2
