"""Tests for the bootstrap qualification procedure (Section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lits import LitsModel
from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.errors import InvalidParameterError
from repro.stats.bootstrap import (
    BootstrapResult,
    deviation_significance,
    significance_of_statistic,
)


def lits_builder(dataset):
    return LitsModel.mine(dataset, 0.05, max_len=2)


@pytest.fixture(scope="module")
def same_process_pair():
    rng = np.random.default_rng(21)
    pool = build_pattern_pool(rng, n_items=60, n_patterns=40, avg_pattern_len=3)
    d1 = generate_basket(600, n_items=60, avg_transaction_len=5, rng=rng, pool=pool)
    d2 = generate_basket(600, n_items=60, avg_transaction_len=5, rng=rng, pool=pool)
    return d1, d2


@pytest.fixture(scope="module")
def cross_process_pair():
    d1 = generate_basket(
        600, n_items=60, avg_transaction_len=5, n_patterns=40,
        avg_pattern_len=3, seed=31,
    )
    d2 = generate_basket(
        600, n_items=60, avg_transaction_len=5, n_patterns=40,
        avg_pattern_len=5, seed=32,
    )
    return d1, d2


class TestBootstrapResult:
    def test_significance_is_percentile(self):
        result = BootstrapResult(
            observed=5.0, null_values=np.array([1.0, 2.0, 6.0, 7.0])
        )
        assert result.significance_percent == pytest.approx(50.0)
        # add-one correction: (1 + 2 exceedances) / (4 + 1)
        assert result.p_value == pytest.approx(0.6)
        assert result.p_value_raw == pytest.approx(0.5)

    def test_extremes(self):
        low = BootstrapResult(observed=0.0, null_values=np.array([1.0, 2.0]))
        high = BootstrapResult(observed=9.0, null_values=np.array([1.0, 2.0]))
        assert low.significance_percent == 0.0
        assert high.significance_percent == 100.0
        # the add-one estimator never reports the impossible p = 0 from
        # a finite null: the floor is 1 / (B + 1)
        assert high.p_value == pytest.approx(1.0 / 3.0)
        assert high.p_value_raw == 0.0
        assert low.p_value == pytest.approx(1.0)

    def test_empty_null(self):
        empty = BootstrapResult(observed=1.0, null_values=np.array([]))
        assert empty.significance_percent == 0.0
        assert empty.p_value == 1.0  # (1 + 0) / (0 + 1)
        assert empty.p_value_raw == 1.0

    def test_ties_count_against_significance(self):
        """A null value exactly equal to the observed one is not
        strictly below it (``<``), and counts as an exceedance in both
        p-value estimators."""
        tied = BootstrapResult(
            observed=2.0, null_values=np.array([1.0, 2.0, 2.0, 3.0])
        )
        assert tied.significance_percent == pytest.approx(25.0)
        assert tied.p_value_raw == pytest.approx(0.75)
        assert tied.p_value == pytest.approx(0.8)  # (1 + 3) / 5


class TestSignificanceOfStatistic:
    def test_null_preserving_statistic_is_insignificant(self, same_process_pair):
        """A constant statistic can never look significant."""
        d1, d2 = same_process_pair
        result = significance_of_statistic(
            d1, d2, lambda a, b: 1.0, n_boot=10, rng=np.random.default_rng(1)
        )
        assert result.significance_percent == 0.0

    def test_n_boot_validation(self, same_process_pair):
        d1, d2 = same_process_pair
        with pytest.raises(InvalidParameterError):
            significance_of_statistic(d1, d2, lambda a, b: 1.0, n_boot=0)

    def test_null_sample_size(self, same_process_pair):
        d1, d2 = same_process_pair
        result = significance_of_statistic(
            d1, d2, lambda a, b: float(len(a)), n_boot=7,
            rng=np.random.default_rng(2),
        )
        assert len(result.null_values) == 7


class TestDeviationSignificance:
    @pytest.mark.parametrize("refit", [False, True])
    def test_same_process_insignificant(self, same_process_pair, refit):
        d1, d2 = same_process_pair
        result = deviation_significance(
            d1, d2, lits_builder, n_boot=20, rng=np.random.default_rng(3),
            refit_models=refit,
        )
        assert result.significance_percent < 95.0

    @pytest.mark.parametrize("refit", [False, True])
    def test_cross_process_significant(self, cross_process_pair, refit):
        d1, d2 = cross_process_pair
        result = deviation_significance(
            d1, d2, lits_builder, n_boot=20, rng=np.random.default_rng(4),
            refit_models=refit,
        )
        assert result.significance_percent >= 95.0

    def test_reproducible_with_seeded_rng(self, cross_process_pair):
        d1, d2 = cross_process_pair
        a = deviation_significance(
            d1, d2, lits_builder, n_boot=8, rng=np.random.default_rng(5)
        )
        b = deviation_significance(
            d1, d2, lits_builder, n_boot=8, rng=np.random.default_rng(5)
        )
        assert np.array_equal(a.null_values, b.null_values)
        assert a.observed == b.observed

    def test_fixed_structure_observed_matches_full_deviation(
        self, cross_process_pair
    ):
        """With refit_models=False the observed statistic is still the
        full GCR deviation of the two observed models."""
        from repro.core.deviation import deviation

        d1, d2 = cross_process_pair
        result = deviation_significance(
            d1, d2, lits_builder, n_boot=3, rng=np.random.default_rng(6)
        )
        m1, m2 = lits_builder(d1), lits_builder(d2)
        assert result.observed == pytest.approx(
            deviation(m1, m2, d1, d2).value
        )


class TestBlockExtensionCrossover:
    """The Figure 14 block rows: a 5% block extension of a large dataset
    is detected by the fixed-structure bootstrap (the paper's 99%-rows),
    while the same comparison at small row counts drowns in measure
    noise -- the crossover EXPERIMENTS.md documents."""

    def test_block_detected_at_large_n(self):
        from repro.data.quest_classify import generate_classification
        from repro.core.dtree_model import DtModel
        from repro.mining.tree.builder import TreeParams

        n = 100_000
        rng = np.random.default_rng(4000)
        base = generate_classification(n, function=1, rng=rng)
        block = generate_classification(int(0.05 * n), function=3, rng=rng)
        extended = base.concat(block)

        def builder(d):
            return DtModel.fit(
                d, TreeParams(max_depth=8, min_leaf=max(10, len(d) // 200))
            )

        result = deviation_significance(
            base, extended, builder, n_boot=15, rng=rng
        )
        assert result.significance_percent >= 95.0


class TestEngineRoutingAndFallback:
    def test_prebuilt_models_skip_rebuilding(self, cross_process_pair):
        """models=(m1, m2) must not invoke model_builder at all."""
        d1, d2 = cross_process_pair
        m1, m2 = lits_builder(d1), lits_builder(d2)

        def exploding_builder(dataset):
            raise AssertionError("model_builder re-invoked")

        result = deviation_significance(
            d1, d2, exploding_builder, models=(m1, m2), n_boot=5,
            rng=np.random.default_rng(1),
        )
        assert len(result.null_values) == 5

    def test_models_or_builder_required(self, cross_process_pair):
        d1, d2 = cross_process_pair
        with pytest.raises(InvalidParameterError):
            deviation_significance(d1, d2, n_boot=3, seed=1)

    def test_refit_requires_builder(self, cross_process_pair):
        d1, d2 = cross_process_pair
        with pytest.raises(InvalidParameterError):
            deviation_significance(
                d1, d2, n_boot=3, seed=1, refit_models=True
            )

    def test_unindexable_datasets_fall_back_to_the_loop(
        self, cross_process_pair
    ):
        """A dataset kind without a bitmap index cannot compile a
        count-space plan; the per-replicate loop must still qualify it."""

        class Bare:
            """Rows-only view: take/concat/len but no .index."""

            def __init__(self, inner):
                self._inner = inner

            def __len__(self):
                return len(self._inner)

            def take(self, indices):
                return Bare(self._inner.take(indices))

            def concat(self, other):
                return Bare(self._inner.concat(other._inner))

        d1, d2 = cross_process_pair
        m1, m2 = lits_builder(d1), lits_builder(d2)

        class CountsVia(type(m1.structure)):
            pass

        from repro.core.deviation import deviation_over_structure
        from repro.core.gcr import gcr

        structure = gcr(m1.structure, m2.structure)

        # monkey-free: wraps force hasattr(d, "index") to fail
        b1, b2 = Bare(d1), Bare(d2)

        class M:
            def __init__(self, s):
                self.structure = s

        # give the bare wrapper the counting interface the loop needs
        Bare.index = property(lambda self: (_ for _ in ()).throw(
            AttributeError("no index")
        ))

        def counts(self, dataset):
            return type(structure).counts(self, dataset._inner)

        CountsVia.counts = counts
        wrapped = CountsVia(structure.itemsets)
        result = deviation_significance(
            b1, b2, models=(M(wrapped), M(wrapped)), n_boot=4,
            rng=np.random.default_rng(2),
        )
        assert len(result.null_values) == 4
        expected = deviation_over_structure(wrapped, b1, b2).value
        assert result.observed == pytest.approx(expected)

    def test_seed_kwarg_reproduces(self, cross_process_pair):
        d1, d2 = cross_process_pair
        a = deviation_significance(d1, d2, lits_builder, n_boot=6, seed=9)
        b = deviation_significance(d1, d2, lits_builder, n_boot=6, seed=9)
        assert np.array_equal(a.null_values, b.null_values)

    def test_unseeded_loop_oracle_warns(self, same_process_pair):
        d1, d2 = same_process_pair
        with pytest.warns(UserWarning, match="not reproducible"):
            significance_of_statistic(d1, d2, lambda a, b: 1.0, n_boot=2)

    def test_models_with_refit_rejected(self, cross_process_pair):
        """refit re-induces per replicate; pinned models would be
        silently discarded, so the combination raises."""
        d1, d2 = cross_process_pair
        m1, m2 = lits_builder(d1), lits_builder(d2)
        with pytest.raises(InvalidParameterError, match="refit_models"):
            deviation_significance(
                d1, d2, lits_builder, models=(m1, m2), n_boot=3,
                seed=1, refit_models=True,
            )
