"""Property suite: the count-space bootstrap engine vs the loop oracle.

The engine's contract is *exact* equivalence, not statistical
similarity: when the vectorized plan and the per-replicate resampling
loop consume the same multiplicity draws, the two null vectors must be
equal bit for bit -- for lits structures (overlapping itemset regions,
including never-occurring itemsets and the empty itemset), for
partition structures (disjoint cell x class regions, including empty
ones), at ``n1 = 1``, at ``B = 1``, under tied deviations, and
regardless of how replicate blocks are fanned over executors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deviation import deviation_over_structure
from repro.core.difference import SCALED
from repro.core.aggregate import MAX
from repro.core.dtree_model import DtModel
from repro.core.model import LitsStructure
from repro.data.quest_classify import generate_classification
from repro.data.transactions import TransactionDataset
from repro.errors import InvalidParameterError
from repro.mining.tree.builder import TreeParams
from repro.stats.resample_plan import (
    CountsResamplePlan,
    LitsResamplePlan,
    PackedLitsResamplePlan,
    PartitionResamplePlan,
    compile_resample_plan,
    draw_multiplicities,
    lits_membership,
    max_membership_bytes,
    multiplicities_from_indices,
)

N_ITEMS = 10


def oracle_null(structure, pooled, idx1, idx2, f=None, g=None):
    """The per-replicate loop: materialise each resample and rescan it."""
    kwargs = {}
    if f is not None:
        kwargs["f"] = f
    if g is not None:
        kwargs["g"] = g
    return np.array(
        [
            deviation_over_structure(
                structure, pooled.take(i1), pooled.take(i2), **kwargs
            ).value
            for i1, i2 in zip(idx1, idx2)
        ]
    )


transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=N_ITEMS - 1), max_size=5),
    min_size=2,
    max_size=40,
)

# Itemsets may reference items the data never contains (empty regions)
# and always include the empty itemset (support = everything).
itemsets_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=N_ITEMS - 1), max_size=4),
    max_size=12,
).map(lambda sets: [*sets, [], [N_ITEMS - 1, N_ITEMS - 2, N_ITEMS - 3]])


@st.composite
def lits_cases(draw):
    txns = draw(transactions_strategy)
    structure = LitsStructure(
        [frozenset(s) for s in draw(itemsets_strategy)]
    )
    n = len(txns)
    n1 = draw(st.integers(min_value=1, max_value=n - 1))
    n_boot = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return txns, structure, n1, n_boot, seed


class TestLitsExactEquality:
    @given(case=lits_cases())
    @settings(max_examples=60, deadline=None)
    def test_engine_equals_loop_oracle_under_shared_draws(self, case):
        txns, structure, n1, n_boot, seed = case
        pooled = TransactionDataset(txns, N_ITEMS)
        n = len(pooled)
        n2 = n - n1
        d1 = pooled.take(np.arange(n1))
        d2 = pooled.take(np.arange(n1, n))

        plan = compile_resample_plan(structure, d1, d2)
        assert isinstance(plan, LitsResamplePlan)

        rng = np.random.default_rng(seed)
        idx1 = rng.integers(0, n, size=(n_boot, n1))
        idx2 = rng.integers(0, n, size=(n_boot, n2))
        slow = oracle_null(structure, pooled, idx1, idx2)
        fast = plan.null_from_multiplicities(
            multiplicities_from_indices(idx1, n),
            multiplicities_from_indices(idx2, n),
        )
        assert np.array_equal(slow, fast)

    @given(case=lits_cases())
    @settings(max_examples=25, deadline=None)
    def test_observed_counts_match_direct_scan(self, case):
        txns, structure, n1, _, _ = case
        pooled = TransactionDataset(txns, N_ITEMS)
        d1 = pooled.take(np.arange(n1))
        d2 = pooled.take(np.arange(n1, len(pooled)))
        plan = compile_resample_plan(structure, d1, d2)
        counts1, counts2 = plan.observed_counts()
        assert np.array_equal(counts1, structure.counts(d1))
        assert np.array_equal(counts2, structure.counts(d2))

    @given(case=lits_cases())
    @settings(max_examples=20, deadline=None)
    def test_non_default_f_g_also_exact(self, case):
        txns, structure, n1, n_boot, seed = case
        pooled = TransactionDataset(txns, N_ITEMS)
        n = len(pooled)
        d1 = pooled.take(np.arange(n1))
        d2 = pooled.take(np.arange(n1, n))
        plan = compile_resample_plan(structure, d1, d2)
        rng = np.random.default_rng(seed)
        idx1 = rng.integers(0, n, size=(n_boot, n1))
        idx2 = rng.integers(0, n, size=(n_boot, n - n1))
        slow = oracle_null(structure, pooled, idx1, idx2, f=SCALED, g=MAX)
        fast = plan.null_from_multiplicities(
            multiplicities_from_indices(idx1, n),
            multiplicities_from_indices(idx2, n),
            f=SCALED,
            g=MAX,
        )
        assert np.array_equal(slow, fast)


class TestPackedPlanRegression:
    """The bit-packed block-streaming plan is the dense GEMM, exactly.

    ``PackedLitsResamplePlan`` exists to lift the dense membership cap;
    its correctness contract is that under shared draws its observed
    counts and null vector equal both the dense ``LitsResamplePlan`` and
    the per-replicate loop oracle bit for bit -- including when the
    block budget forces multi-block row streaming.
    """

    @given(case=lits_cases())
    @settings(max_examples=40, deadline=None)
    def test_packed_equals_dense_and_oracle_under_shared_draws(self, case):
        txns, structure, n1, n_boot, seed = case
        pooled = TransactionDataset(txns, N_ITEMS)
        n = len(pooled)
        d1 = pooled.take(np.arange(n1))
        d2 = pooled.take(np.arange(n1, n))

        dense = LitsResamplePlan.from_datasets(structure, d1, d2)
        packed = PackedLitsResamplePlan.from_datasets(structure, d1, d2)
        # force the streaming path: at most one byte-block of rows at a
        # time, so every case with > 8 pooled rows exercises multi-block
        packed._block_rows = 8

        assert np.array_equal(
            packed.observed_counts()[0], dense.observed_counts()[0]
        )
        assert np.array_equal(
            packed.observed_counts()[1], dense.observed_counts()[1]
        )

        rng = np.random.default_rng(seed)
        idx1 = rng.integers(0, n, size=(n_boot, n1))
        idx2 = rng.integers(0, n, size=(n_boot, n - n1))
        m1 = multiplicities_from_indices(idx1, n)
        m2 = multiplicities_from_indices(idx2, n)
        slow = oracle_null(structure, pooled, idx1, idx2)
        assert np.array_equal(packed.null_from_multiplicities(m1, m2), slow)
        assert np.array_equal(
            packed.null_from_multiplicities(m1, m2),
            dense.null_from_multiplicities(m1, m2),
        )

    def test_small_cap_routes_to_packed_with_identical_significance(self):
        txns = [(0,), (0, 1), (1,), (2,), (0, 2), (1, 2)] * 4
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure(
            [frozenset([0]), frozenset([1]), frozenset([0, 1]), frozenset()]
        )
        d1 = pooled.take(np.arange(12))
        d2 = pooled.take(np.arange(12, 24))
        dense = compile_resample_plan(structure, d1, d2)
        packed = compile_resample_plan(
            structure, d1, d2, max_membership_bytes=1
        )
        assert isinstance(dense, LitsResamplePlan)
        assert isinstance(packed, PackedLitsResamplePlan)
        ref = dense.significance(16, np.random.default_rng(7))
        got = packed.significance(16, np.random.default_rng(7))
        assert got.observed == ref.observed
        assert np.array_equal(got.null_values, ref.null_values)

    def test_env_var_injects_the_cap(self, monkeypatch):
        txns = [(0,), (0, 1), (1,)] * 3
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure([frozenset([0]), frozenset([1])])
        d1 = pooled.take(np.arange(4))
        d2 = pooled.take(np.arange(4, 9))
        monkeypatch.setenv("REPRO_MAX_MEMBERSHIP_BYTES", "1")
        assert max_membership_bytes() == 1
        plan = compile_resample_plan(structure, d1, d2)
        assert isinstance(plan, PackedLitsResamplePlan)
        # an explicit argument overrides the environment
        assert isinstance(
            compile_resample_plan(
                structure, d1, d2, max_membership_bytes=1 << 31
            ),
            LitsResamplePlan,
        )

    def test_cap_resolver_rejects_nonpositive(self, monkeypatch):
        with pytest.raises(InvalidParameterError):
            max_membership_bytes(0)
        monkeypatch.setenv("REPRO_MAX_MEMBERSHIP_BYTES", "-5")
        with pytest.raises(InvalidParameterError):
            max_membership_bytes()


@st.composite
def partition_cases(draw):
    n = draw(st.integers(min_value=12, max_value=80))
    n1 = draw(st.integers(min_value=1, max_value=n - 1))
    n_boot = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    function = draw(st.integers(min_value=1, max_value=3))
    return n, n1, n_boot, seed, function


class TestPartitionExactEquality:
    @given(case=partition_cases())
    @settings(max_examples=40, deadline=None)
    def test_engine_equals_loop_oracle_under_shared_draws(self, case):
        n, n1, n_boot, seed, function = case
        pooled = generate_classification(n, function=function, seed=seed)
        # The structure is induced from the pooled data (so every class
        # label is in its alphabet) and then held fixed, as the paper's
        # null construction does. Class-crossed leaf regions are often
        # empty at these sizes -- the empty-region edge rides along.
        structure = DtModel.fit(
            pooled, TreeParams(max_depth=3, min_leaf=3)
        ).structure
        d1 = pooled.take(np.arange(n1))
        d2 = pooled.take(np.arange(n1, n))

        plan = compile_resample_plan(structure, d1, d2)
        assert isinstance(plan, PartitionResamplePlan)

        rng = np.random.default_rng(seed)
        idx1 = rng.integers(0, n, size=(n_boot, n1))
        idx2 = rng.integers(0, n, size=(n_boot, n - n1))
        slow = oracle_null(structure, pooled, idx1, idx2)
        fast = plan.null_from_multiplicities(
            multiplicities_from_indices(idx1, n),
            multiplicities_from_indices(idx2, n),
        )
        assert np.array_equal(slow, fast)

    @given(case=partition_cases())
    @settings(max_examples=20, deadline=None)
    def test_observed_counts_match_direct_scan(self, case):
        n, n1, _, seed, function = case
        pooled = generate_classification(n, function=function, seed=seed)
        structure = DtModel.fit(
            pooled, TreeParams(max_depth=3, min_leaf=3)
        ).structure
        d1 = pooled.take(np.arange(n1))
        d2 = pooled.take(np.arange(n1, n))
        plan = compile_resample_plan(structure, d1, d2)
        counts1, counts2 = plan.observed_counts()
        assert np.array_equal(counts1, structure.counts(d1))
        assert np.array_equal(counts2, structure.counts(d2))


class TestExecutorFannedBlocks:
    """Shard-merge: fanned replicate blocks reproduce the serial null."""

    @pytest.fixture(scope="class")
    def lits_plan(self):
        rng = np.random.default_rng(11)
        txns = [
            tuple(np.flatnonzero(rng.random(N_ITEMS) < 0.3)) for _ in range(90)
        ]
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure(
            [frozenset([i]) for i in range(N_ITEMS)]
            + [frozenset([i, i + 1]) for i in range(N_ITEMS - 1)]
        )
        d1 = pooled.take(np.arange(40))
        d2 = pooled.take(np.arange(40, 90))
        return compile_resample_plan(structure, d1, d2)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    @pytest.mark.parametrize("n_blocks", [2, 3, 7, 64])
    def test_blocked_null_equals_unblocked(self, lits_plan, executor, n_blocks):
        rng = np.random.default_rng(5)
        w1 = draw_multiplicities(lits_plan.n_pooled, lits_plan.n1, 9, rng)
        w2 = draw_multiplicities(lits_plan.n_pooled, lits_plan.n2, 9, rng)
        base = lits_plan.null_from_multiplicities(w1, w2)
        fanned = lits_plan.null_from_multiplicities(
            w1, w2, executor=executor, n_blocks=n_blocks
        )
        assert np.array_equal(base, fanned)

    def test_null_deviations_deterministic_across_backends(self, lits_plan):
        nulls = [
            lits_plan.null_deviations(
                8,
                np.random.default_rng(3),
                executor=executor,
                n_blocks=n_blocks,
            )
            for executor, n_blocks in (
                ("serial", 1),
                ("serial", 4),
                ("thread", 4),
            )
        ]
        assert np.array_equal(nulls[0], nulls[1])
        assert np.array_equal(nulls[0], nulls[2])

    def test_invalid_blocks_rejected(self, lits_plan):
        w = draw_multiplicities(lits_plan.n_pooled, lits_plan.n1, 2,
                                np.random.default_rng(0))
        with pytest.raises(InvalidParameterError):
            lits_plan.null_from_multiplicities(w, w, n_blocks=0)


class TestDrawHelpers:
    def test_multiplicities_shape_and_mass(self):
        w = draw_multiplicities(30, 12, 5, np.random.default_rng(1))
        assert w.shape == (5, 30)
        assert (w.sum(axis=1) == 12).all()
        assert w.min() >= 0

    def test_empty_pool_rejected(self):
        with pytest.raises(InvalidParameterError):
            draw_multiplicities(0, 3, 2, np.random.default_rng(1))

    def test_indices_round_trip(self):
        idx = np.array([[0, 0, 2], [1, 1, 1]])
        w = multiplicities_from_indices(idx, 4)
        assert w.tolist() == [[2, 0, 1, 0], [0, 3, 0, 0]]

    def test_indices_must_be_2d(self):
        with pytest.raises(InvalidParameterError):
            multiplicities_from_indices(np.array([1, 2, 3]), 4)

    def test_membership_columns_are_support_vectors(self):
        txns = [(0, 1), (1,), (0, 2), (), (0, 1, 2)]
        dataset = TransactionDataset(txns, 3)
        structure = LitsStructure(
            [frozenset(), frozenset([0]), frozenset([0, 1]), frozenset([2])]
        )
        membership = lits_membership(structure, dataset.index)
        assert membership.shape == (5, 4)
        assert np.array_equal(
            membership.sum(axis=0), structure.counts(dataset)
        )
        empty_col = structure.itemsets.index(frozenset())
        assert (membership[:, empty_col] == 1).all()


class TestTiedDeviations:
    def test_all_replicates_tie_with_observed(self):
        """Identical single-row datasets: every resample reproduces the
        observed counts, so the whole null ties at the observed value
        -- significance must be 0 (strict ``<``) and p must be 1."""
        txns = [(0, 1)] * 2
        pooled = TransactionDataset(txns, N_ITEMS)
        d1 = pooled.take(np.arange(1))  # n1 = 1
        d2 = pooled.take(np.arange(1, 2))
        structure = LitsStructure([frozenset([0]), frozenset([0, 1])])
        plan = compile_resample_plan(structure, d1, d2)
        result = plan.significance(5, np.random.default_rng(0))
        assert result.observed == 0.0
        assert (result.null_values == 0.0).all()
        assert result.significance_percent == 0.0
        assert result.p_value == 1.0
        assert result.p_value_raw == 1.0


class TestCountsResamplePlan:
    @pytest.fixture(scope="class")
    def fixed_structure_pair(self):
        pooled = generate_classification(300, function=1, seed=9)
        structure = DtModel.fit(
            pooled, TreeParams(max_depth=3, min_leaf=10)
        ).structure
        d1 = pooled.take(np.arange(180))
        d2 = pooled.take(np.arange(180, 300))
        return structure, d1, d2

    def test_counts_plan_matches_observed_scan(self, fixed_structure_pair):
        structure, d1, d2 = fixed_structure_pair
        counts1 = structure.counts(d1)
        counts2 = structure.counts(d2)
        plan = CountsResamplePlan(structure, counts1, counts2, len(d1), len(d2))
        observed = plan.observed_deviation().value
        assert observed == pytest.approx(
            deviation_over_structure(structure, d1, d2).value
        )

    def test_replicates_conserve_mass(self, fixed_structure_pair):
        structure, d1, d2 = fixed_structure_pair
        plan = CountsResamplePlan(
            structure,
            structure.counts(d1),
            structure.counts(d2),
            len(d1),
            len(d2),
        )
        c1, c2 = plan._replicate_count_pairs(
            7, np.random.default_rng(2), "serial", 1
        )
        # partition regions are exhaustive here: every resampled row
        # lands in exactly one region
        assert (c1.sum(axis=1) == len(d1)).all()
        assert (c2.sum(axis=1) == len(d2)).all()

    def test_same_seed_is_deterministic(self, fixed_structure_pair):
        structure, d1, d2 = fixed_structure_pair
        plan = CountsResamplePlan(
            structure,
            structure.counts(d1),
            structure.counts(d2),
            len(d1),
            len(d2),
        )
        a = plan.null_deviations(6, np.random.default_rng(4))
        b = plan.null_deviations(6, np.random.default_rng(4))
        assert np.array_equal(a, b)

    def test_overlapping_regions_rejected(self):
        """Lits counts sum past the pool size -- the counts-only plan
        must refuse rather than draw from a wrong multinomial."""
        structure = LitsStructure([frozenset(), frozenset([0])])
        with pytest.raises(InvalidParameterError, match="overlap"):
            CountsResamplePlan(
                structure,
                np.array([10, 8]),
                np.array([10, 9]),
                10,
                10,
            )

    def test_misaligned_counts_rejected(self, fixed_structure_pair):
        structure, d1, d2 = fixed_structure_pair
        with pytest.raises(InvalidParameterError):
            CountsResamplePlan(
                structure, np.array([1.0]), np.array([1.0]), 1, 1
            )


class TestUnseededWarning:
    def test_null_deviations_without_rng_warns(self):
        txns = [(0,), (1,), (0, 1)] * 4
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure([frozenset([0])])
        plan = compile_resample_plan(
            structure, pooled.take(np.arange(6)), pooled.take(np.arange(6, 12))
        )
        with pytest.warns(UserWarning, match="not reproducible"):
            plan.null_deviations(2)

    def test_seed_argument_is_silent_and_deterministic(self):
        txns = [(0,), (1,), (0, 1)] * 4
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure([frozenset([0]), frozenset([1])])
        plan = compile_resample_plan(
            structure, pooled.take(np.arange(6)), pooled.take(np.arange(6, 12))
        )
        a = plan.null_deviations(4, seed=7)
        b = plan.null_deviations(4, seed=7)
        assert np.array_equal(a, b)


class TestCompileFrontEnd:
    def test_unknown_structure_returns_none(self):
        class Opaque:
            pass

        d = TransactionDataset([(0,)], 2)
        assert compile_resample_plan(Opaque(), d, d) is None

    def test_lits_membership_part_validation(self):
        structure = LitsStructure([frozenset([0])])
        with pytest.raises(InvalidParameterError, match="cover"):
            LitsResamplePlan(
                structure, [np.zeros((3, 1), dtype=np.uint8)], 3, 1
            )
        with pytest.raises(InvalidParameterError, match="columns"):
            LitsResamplePlan(
                structure, [np.zeros((4, 2), dtype=np.uint8)], 3, 1
            )

    def test_multiplicity_shape_validation(self):
        structure = LitsStructure([frozenset([0])])
        plan = LitsResamplePlan(
            structure, [np.ones((4, 1), dtype=np.uint8)], 2, 2
        )
        with pytest.raises(InvalidParameterError, match="multiplicities"):
            plan.replicate_counts(np.ones((2, 5), dtype=np.int64))


class TestEdgeShapes:
    def test_single_pooled_part_straddles_the_split(self):
        """A caller may hand one pooled membership block instead of two
        per-side blocks; observed_counts must split it at n1."""
        txns = [(0,), (0, 1), (1,), (2,), (0, 2)]
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure(
            [frozenset([0]), frozenset([1]), frozenset([0, 1])]
        )
        whole = lits_membership(structure, pooled.index)
        plan = LitsResamplePlan(structure, [whole], 2, 3)
        counts1, counts2 = plan.observed_counts()
        assert np.array_equal(
            counts1, structure.counts(pooled.take(np.arange(2)))
        )
        assert np.array_equal(
            counts2, structure.counts(pooled.take(np.arange(2, 5)))
        )

    def test_structure_with_no_regions(self):
        """Zero tracked regions: the null is identically zero (g over an
        empty region set), and nothing crashes."""
        txns = [(0,), (1,)] * 3
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure([])
        plan = compile_resample_plan(
            structure, pooled.take(np.arange(3)), pooled.take(np.arange(3, 6))
        )
        result = plan.significance(3, np.random.default_rng(1))
        assert result.observed == 0.0
        assert (result.null_values == 0.0).all()

    def test_negative_draw_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            draw_multiplicities(5, -1, 2, np.random.default_rng(0))

    def test_n_boot_validation(self):
        txns = [(0,), (1,)] * 3
        pooled = TransactionDataset(txns, N_ITEMS)
        plan = compile_resample_plan(
            LitsStructure([frozenset([0])]),
            pooled.take(np.arange(3)),
            pooled.take(np.arange(3, 6)),
        )
        with pytest.raises(InvalidParameterError):
            plan.null_deviations(0, np.random.default_rng(1))

    def test_empty_pool_compiles_to_none(self):
        empty = TransactionDataset([], N_ITEMS)
        assert (
            compile_resample_plan(LitsStructure([]), empty, empty) is None
        )

    def test_lits_counts_below_pool_size_also_rejected(self):
        """The dangerous case: lits supports summing *below* the pool
        size pass a naive sum check, but the multinomial would still
        destroy cross-region correlations -- the type is rejected."""
        structure = LitsStructure([frozenset([0]), frozenset([0, 1])])
        with pytest.raises(InvalidParameterError, match="overlap"):
            CountsResamplePlan(
                structure, np.array([3, 1]), np.array([2, 1]), 10, 10
            )


class TestChunkedDraws:
    def test_chunked_draws_match_unchunked_same_seed(self, monkeypatch):
        """Shrinking the draw-matrix cap forces the chunked path; the
        generator stream is sequential, so the null is bit-identical."""
        from repro.stats import resample_plan as rp

        txns = [(0,), (1,), (0, 1), (2,)] * 25
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure(
            [frozenset([0]), frozenset([1]), frozenset([0, 1])]
        )
        plan = compile_resample_plan(
            structure, pooled.take(np.arange(50)), pooled.take(np.arange(50, 100))
        )
        unchunked = plan.null_deviations(20, np.random.default_rng(6))
        # cap of 8*n_pooled bytes -> one replicate row per chunk
        monkeypatch.setattr(rp, "_MAX_DRAW_BYTES", 8 * plan.n_pooled)
        chunked = plan.null_deviations(20, np.random.default_rng(6))
        assert np.array_equal(unchunked, chunked)

    def test_string_executor_pool_is_released_per_call(self, monkeypatch):
        """A fanned call that resolves its executor from a name must
        shut the pool down before returning (no idle-worker leak)."""
        from repro.stream import executor as executor_module

        created = []
        real = executor_module.ThreadExecutor

        class Tracking(real):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                created.append(self)

        monkeypatch.setattr(executor_module, "_EXECUTORS",
                            {**executor_module._EXECUTORS, "thread": Tracking})
        txns = [(0,), (1,), (0, 1)] * 20
        pooled = TransactionDataset(txns, N_ITEMS)
        plan = compile_resample_plan(
            LitsStructure([frozenset([0]), frozenset([1])]),
            pooled.take(np.arange(30)),
            pooled.take(np.arange(30, 60)),
        )
        plan.null_deviations(6, np.random.default_rng(1),
                             executor="thread", n_blocks=3)
        assert created, "fan did not resolve the named executor"
        assert all(e._pool is None for e in created), "pool leaked"

    def test_instance_executor_pool_is_left_to_its_owner(self):
        from repro.stream.executor import ThreadExecutor

        owner = ThreadExecutor()
        txns = [(0,), (1,), (0, 1)] * 20
        pooled = TransactionDataset(txns, N_ITEMS)
        plan = compile_resample_plan(
            LitsStructure([frozenset([0]), frozenset([1])]),
            pooled.take(np.arange(30)),
            pooled.take(np.arange(30, 60)),
        )
        plan.null_deviations(6, np.random.default_rng(1),
                             executor=owner, n_blocks=3)
        assert owner._pool is not None  # still warm for reuse
        owner.shutdown()
        assert owner._pool is None

    def test_oversized_membership_pool_routes_to_packed(self, monkeypatch):
        """Past the membership-bytes cap the dense lits plan would not
        fit in memory; compile hands over to the bit-packed
        block-streaming plan instead of the old None fallback."""
        from repro.stats import resample_plan as rp

        txns = [(0,), (1,), (0, 1)] * 10
        pooled = TransactionDataset(txns, N_ITEMS)
        structure = LitsStructure([frozenset([0]), frozenset([1])])
        d1 = pooled.take(np.arange(15))
        d2 = pooled.take(np.arange(15, 30))
        dense = compile_resample_plan(structure, d1, d2)
        assert isinstance(dense, LitsResamplePlan)
        assert not isinstance(dense, PackedLitsResamplePlan)
        monkeypatch.setattr(rp, "_MAX_MEMBERSHIP_BYTES", 4 * 30 * 2 - 1)
        packed = compile_resample_plan(structure, d1, d2)
        assert isinstance(packed, PackedLitsResamplePlan)

    def test_membership_cap_accounts_for_float64_pools(self, monkeypatch):
        """Past 2**24 pooled rows the dense plan's columns are 8-byte
        float64, so the routing cap must budget 8 bytes/entry, not 4."""
        from repro.stats import resample_plan as rp

        class Huge:
            """Index-bearing stub: routing must decide on size alone."""

            def __init__(self, n):
                self._n = n
                self.index = object()

            def __len__(self):
                return self._n

        # intercept both constructors so the routing decision is
        # observable without materialising a 2**24-row pool
        monkeypatch.setattr(
            rp.PackedLitsResamplePlan,
            "from_datasets",
            classmethod(lambda cls, *a, **k: "packed"),
        )
        monkeypatch.setattr(
            rp.LitsResamplePlan,
            "from_datasets",
            classmethod(lambda cls, *a, **k: "dense"),
        )
        structure = LitsStructure([frozenset([0]), frozenset([1])])
        half = rp._FLOAT32_EXACT_ROWS // 2
        # 2 regions x 2**24 rows x 8 bytes = 256 MiB; a 4-byte budget
        # would wrongly admit this pool dense under a 192 MiB cap
        monkeypatch.setattr(rp, "_MAX_MEMBERSHIP_BYTES", 192 * (1 << 20))
        assert (
            compile_resample_plan(structure, Huge(half), Huge(half))
            == "packed"
        )
