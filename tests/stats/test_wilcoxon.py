"""Tests for the Wilcoxon rank-sum test (cross-checked against scipy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.stats.wilcoxon import WilcoxonResult, _midranks, rank_sum_test

scipy_stats = pytest.importorskip("scipy.stats")


class TestMidranks:
    def test_no_ties(self):
        ranks = _midranks(np.array([30.0, 10.0, 20.0]))
        assert ranks.tolist() == [3.0, 1.0, 2.0]

    def test_ties_get_average_rank(self):
        ranks = _midranks(np.array([1.0, 2.0, 2.0, 3.0]))
        assert ranks.tolist() == [1.0, 2.5, 2.5, 4.0]

    def test_matches_scipy_rankdata(self, rng):
        values = rng.integers(0, 10, 50).astype(float)
        ours = _midranks(values)
        scipys = scipy_stats.rankdata(values)
        assert np.allclose(ours, scipys)


class TestRankSum:
    def test_clearly_smaller_sample(self, rng):
        x = rng.normal(0, 1, 40)
        y = rng.normal(3, 1, 40)
        result = rank_sum_test(x, y, alternative="less")
        assert result.p_value < 1e-6
        assert result.significance_percent > 99.99

    def test_identical_distributions_not_significant(self, rng):
        x = rng.normal(0, 1, 50)
        y = rng.normal(0, 1, 50)
        result = rank_sum_test(x, y, alternative="less")
        assert result.p_value > 0.01

    def test_matches_scipy_mannwhitneyu(self, rng):
        for _ in range(10):
            x = rng.normal(0, 1, 25)
            y = rng.normal(0.5, 1, 30)
            ours = rank_sum_test(x, y, alternative="less")
            scipys = scipy_stats.mannwhitneyu(
                x, y, alternative="less", method="asymptotic"
            )
            assert ours.p_value == pytest.approx(scipys.pvalue, abs=1e-6)

    def test_matches_scipy_with_ties(self, rng):
        x = rng.integers(0, 5, 30).astype(float)
        y = rng.integers(1, 6, 30).astype(float)
        ours = rank_sum_test(x, y, alternative="less")
        scipys = scipy_stats.mannwhitneyu(
            x, y, alternative="less", method="asymptotic"
        )
        assert ours.p_value == pytest.approx(scipys.pvalue, abs=1e-6)

    def test_two_sided_matches_scipy(self, rng):
        x = rng.normal(0, 1, 30)
        y = rng.normal(1, 1, 30)
        ours = rank_sum_test(x, y, alternative="two-sided")
        scipys = scipy_stats.mannwhitneyu(
            x, y, alternative="two-sided", method="asymptotic"
        )
        assert ours.p_value == pytest.approx(scipys.pvalue, abs=1e-6)

    def test_greater_alternative(self, rng):
        x = rng.normal(3, 1, 30)
        y = rng.normal(0, 1, 30)
        assert rank_sum_test(x, y, alternative="greater").p_value < 1e-6

    def test_all_identical_values(self):
        result = rank_sum_test([1.0] * 10, [1.0] * 10)
        assert result.p_value == 1.0
        assert result.z == 0.0

    def test_empty_sample_rejected(self):
        with pytest.raises(InvalidParameterError):
            rank_sum_test([], [1.0])

    def test_unknown_alternative_rejected(self):
        with pytest.raises(InvalidParameterError):
            rank_sum_test([1.0], [2.0], alternative="weird")

    def test_significance_percent(self):
        result = WilcoxonResult(statistic=0, z=0, p_value=0.05, alternative="less")
        assert result.significance_percent == pytest.approx(95.0)
