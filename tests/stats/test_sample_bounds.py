"""Tests for the Hoeffding sample-size bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.quest_basket import generate_basket
from repro.errors import InvalidParameterError
from repro.stats.sample_bounds import (
    failure_probability,
    required_sample_size,
    sd_bound_sum,
    support_error_bound,
)


class TestFormulas:
    def test_inverse_relationship(self):
        """required_sample_size and support_error_bound are inverses."""
        n = required_sample_size(0.02, 0.05, n_itemsets=10)
        eps = support_error_bound(n, 0.05, n_itemsets=10)
        assert eps <= 0.02
        assert support_error_bound(n - 1, 0.05, n_itemsets=10) > 0.0199

    def test_monotonicity(self):
        assert required_sample_size(0.01, 0.05) > required_sample_size(0.02, 0.05)
        assert required_sample_size(0.02, 0.01) > required_sample_size(0.02, 0.05)
        assert required_sample_size(0.02, 0.05, 100) > required_sample_size(
            0.02, 0.05, 1
        )
        assert support_error_bound(1_000, 0.05) > support_error_bound(10_000, 0.05)

    def test_failure_probability(self):
        assert failure_probability(10, 0.01) == 1.0  # capped
        assert failure_probability(100_000, 0.05) < 1e-100
        # More itemsets, more chances to fail.
        assert failure_probability(1_000, 0.05, 100) > failure_probability(
            1_000, 0.05, 1
        )

    def test_classic_value(self):
        """ln(2/0.05)/(2*0.05^2) ~ 738: the textbook Hoeffding number."""
        assert required_sample_size(0.05, 0.05) == 738

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            required_sample_size(0.0, 0.05)
        with pytest.raises(InvalidParameterError):
            required_sample_size(0.05, 1.5)
        with pytest.raises(InvalidParameterError):
            support_error_bound(0, 0.05)
        with pytest.raises(InvalidParameterError):
            failure_probability(10, 2.0)
        with pytest.raises(InvalidParameterError):
            sd_bound_sum(0, 0.05, 3)


class TestEmpiricalCoverage:
    def test_bound_holds_on_sampled_supports(self):
        """Sampled single-item supports stay within the Hoeffding epsilon."""
        dataset = generate_basket(
            5_000, n_items=50, avg_transaction_len=6, n_patterns=40,
            avg_pattern_len=3, seed=91,
        )
        rng = np.random.default_rng(92)
        items = list(range(20))
        true_supports = np.array(
            [dataset.itemset_selectivity({i}) for i in items]
        )

        n_sample = 1_500
        eps = support_error_bound(n_sample, delta=0.05, n_itemsets=len(items))
        violations = 0
        trials = 20
        for _ in range(trials):
            sample = dataset.take(rng.choice(len(dataset), n_sample))
            sampled = np.array(
                [sample.itemset_selectivity({i}) for i in items]
            )
            if np.any(np.abs(sampled - true_supports) > eps):
                violations += 1
        # delta = 0.05: expect ~1 violating trial in 20; allow slack.
        assert violations <= 3

    def test_sd_bound_envelope(self):
        """The analytic SD bound shrinks like 1/sqrt(n)."""
        bounds = [sd_bound_sum(n, 0.05, 200) for n in (1_000, 4_000, 16_000)]
        assert bounds[0] / bounds[1] == pytest.approx(2.0, rel=0.01)
        assert bounds[1] / bounds[2] == pytest.approx(2.0, rel=0.01)
