"""Tests for the chi-squared tail and descriptive statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.stats.chisq import chi2_cdf, chi2_sf, gammainc_lower, gammainc_upper
from repro.stats.descriptive import (
    mean_std,
    normal_sf,
    pearson_correlation,
    quantiles,
    spearman_correlation,
)

scipy_stats = pytest.importorskip("scipy.stats")
scipy_special = pytest.importorskip("scipy.special")


class TestChiSquared:
    def test_sf_matches_scipy(self):
        for df in (1, 2, 5, 10, 50):
            for x in (0.1, 1.0, 5.0, 20.0, 100.0):
                assert chi2_sf(x, df) == pytest.approx(
                    scipy_stats.chi2.sf(x, df), rel=1e-8, abs=1e-12
                )

    def test_cdf_complements_sf(self):
        assert chi2_cdf(5.0, 3) + chi2_sf(5.0, 3) == pytest.approx(1.0)

    def test_boundaries(self):
        assert chi2_sf(0.0, 4) == 1.0
        assert chi2_sf(-1.0, 4) == 1.0
        assert chi2_sf(1e6, 4) < 1e-12

    def test_gammainc_matches_scipy(self):
        for a in (0.5, 1.0, 3.5, 10.0):
            for x in (0.1, 1.0, 5.0, 20.0):
                assert gammainc_lower(a, x) == pytest.approx(
                    scipy_special.gammainc(a, x), rel=1e-8
                )
                assert gammainc_upper(a, x) == pytest.approx(
                    scipy_special.gammaincc(a, x), rel=1e-8, abs=1e-12
                )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(InvalidParameterError):
            chi2_sf(1.0, 0)
        with pytest.raises(InvalidParameterError):
            gammainc_lower(-1.0, 1.0)
        with pytest.raises(InvalidParameterError):
            gammainc_upper(1.0, -1.0)


class TestDescriptive:
    def test_mean_std(self):
        mean, std = mean_std([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert std == pytest.approx(2.0)

    def test_mean_std_single_value(self):
        mean, std = mean_std([5.0])
        assert (mean, std) == (5.0, 0.0)

    def test_mean_std_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_std([])

    def test_quantiles(self):
        qs = quantiles(list(range(101)), (0.25, 0.5, 0.75))
        assert qs == [25.0, 50.0, 75.0]

    def test_pearson_perfect_correlation(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson_correlation(x, [2 * v for v in x]) == pytest.approx(1.0)
        assert pearson_correlation(x, [-v for v in x]) == pytest.approx(-1.0)

    def test_pearson_matches_scipy(self, rng):
        x = rng.normal(0, 1, 60)
        y = x + rng.normal(0, 0.6, 60)
        assert pearson_correlation(x, y) == pytest.approx(
            scipy_stats.pearsonr(x, y).statistic, abs=1e-9
        )

    def test_pearson_degenerate_rejected(self):
        with pytest.raises(InvalidParameterError):
            pearson_correlation([1.0, 1.0], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            pearson_correlation([1.0], [1.0])
        with pytest.raises(InvalidParameterError):
            pearson_correlation([1.0, 2.0], [1.0])

    def test_spearman_matches_scipy(self, rng):
        x = rng.normal(0, 1, 40)
        y = x**3 + rng.normal(0, 0.1, 40)
        assert spearman_correlation(x, y) == pytest.approx(
            scipy_stats.spearmanr(x, y).statistic, abs=1e-9
        )

    def test_normal_sf(self):
        assert normal_sf(0.0) == pytest.approx(0.5)
        assert normal_sf(1.96) == pytest.approx(0.025, abs=1e-3)
