"""Tests for model persistence (JSON round-trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deviation import deviation
from repro.core.dtree_model import DtModel
from repro.core.lits import LitsModel
from repro.core.upper_bound import upper_bound_deviation
from repro.data.model_io import (
    load_dt_model,
    load_lits_model,
    save_dt_model,
    save_lits_model,
)
from repro.data.quest_classify import generate_classification
from repro.errors import InvalidParameterError
from repro.mining.tree.builder import TreeParams


class TestLitsModelIo:
    def test_roundtrip(self, small_transactions, tmp_path):
        model = LitsModel.mine(small_transactions, 0.2)
        path = tmp_path / "model.json"
        save_lits_model(model, path)
        loaded = load_lits_model(path)
        assert loaded.min_support == model.min_support
        assert loaded.n_items == model.n_items
        assert dict(loaded.supports) == pytest.approx(dict(model.supports))

    def test_loaded_model_usable_for_upper_bound(self, small_transactions, tmp_path):
        """The delta* workflow: persist models, compare without data."""
        m1 = LitsModel.mine(small_transactions, 0.2)
        m2 = LitsModel.mine(small_transactions, 0.3)
        save_lits_model(m1, tmp_path / "a.json")
        save_lits_model(m2, tmp_path / "b.json")
        l1 = load_lits_model(tmp_path / "a.json")
        l2 = load_lits_model(tmp_path / "b.json")
        assert upper_bound_deviation(l1, l2).value == pytest.approx(
            upper_bound_deviation(m1, m2).value
        )

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(InvalidParameterError):
            load_lits_model(path)


class TestDtModelIo:
    @pytest.fixture(scope="class")
    def fitted(self):
        data = generate_classification(1_500, function=3, seed=51)
        return DtModel.fit(data, TreeParams(max_depth=5, min_leaf=30)), data

    def test_roundtrip_preserves_predictions(self, fitted, tmp_path):
        model, data = fitted
        path = tmp_path / "tree.json"
        save_dt_model(model, path)
        loaded = load_dt_model(path)
        assert np.array_equal(loaded.predict(data), model.predict(data))
        assert loaded.n_leaves == model.n_leaves

    def test_roundtrip_preserves_structure(self, fitted, tmp_path):
        model, data = fitted
        path = tmp_path / "tree.json"
        save_dt_model(model, path)
        loaded = load_dt_model(path)
        assert loaded.structure.key == model.structure.key
        # Identical structure => zero deviation on the same data.
        assert deviation(model, loaded, data, data).value == pytest.approx(0.0)

    def test_roundtrip_with_categorical_splits(self, tmp_path):
        """F3 trees use categorical (elevel) splits."""
        data = generate_classification(2_500, function=3, seed=52)
        model = DtModel.fit(data, TreeParams(max_depth=6, min_leaf=20))
        from repro.mining.tree.splits import CategoricalSplit

        def has_categorical(node):
            if node.is_leaf:
                return False
            return isinstance(node.split, CategoricalSplit) or (
                has_categorical(node.left) or has_categorical(node.right)
            )

        assert has_categorical(model.tree.root)
        path = tmp_path / "tree.json"
        save_dt_model(model, path)
        loaded = load_dt_model(path)
        assert np.array_equal(loaded.predict(data), model.predict(data))

    def test_saving_raw_tree(self, fitted, tmp_path):
        model, _ = fitted
        path = tmp_path / "raw.json"
        save_dt_model(model.tree, path)
        assert load_dt_model(path).n_leaves == model.n_leaves

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "lits-model"}')
        with pytest.raises(InvalidParameterError):
            load_dt_model(path)
