"""Incremental BitmapIndex growth and prefix-cache memory discipline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.transactions import (
    BitmapIndex,
    SupportCountingPlan,
    TransactionDataset,
)
from repro.errors import InvalidParameterError
from repro.mining.apriori import apriori

TXNS = [
    (0, 1), (0, 1, 2), (0,), (1, 2), (2,), (0, 1), (3,), (0, 2, 3),
    (1,), (0, 1, 3),
]
PROBES = [(), (0,), (0, 1), (1, 2), (0, 1, 2), (3,), (0, 2, 3)]


class TestAppend:
    def test_append_equals_full_build(self):
        full = BitmapIndex(TXNS, 4)
        grown = BitmapIndex(TXNS[:3], 4)
        grown.append(TXNS[3:7])
        grown.append(TXNS[7:])
        assert grown.n_transactions == len(TXNS)
        np.testing.assert_array_equal(
            grown.support_counts(PROBES), full.support_counts(PROBES)
        )

    def test_append_to_empty_index(self):
        grown = BitmapIndex([], 4)
        grown.append(TXNS)
        np.testing.assert_array_equal(
            grown.support_counts(PROBES), BitmapIndex(TXNS, 4).support_counts(PROBES)
        )

    def test_append_nothing_is_noop(self):
        index = BitmapIndex(TXNS, 4)
        before = index.support_counts(PROBES).copy()
        index.append([])
        assert index.n_transactions == len(TXNS)
        np.testing.assert_array_equal(index.support_counts(PROBES), before)

    def test_capacity_doubles_not_rebuilds(self):
        """Appending R rows costs O(R) writes plus O(log R) reallocations."""
        index = BitmapIndex([], 4)
        capacities = set()
        for _start in range(0, 4_096, 64):
            index.append([(i % 4,) for i in range(64)])
            capacities.add(index._buf.shape[1])
        # 4096 rows = 512 bytes; doubling from 8 gives ~7 distinct widths,
        # far fewer than the 64 a rebuild-per-append would show.
        assert len(capacities) <= 8
        assert index.n_transactions == 4_096

    def test_padding_bits_stay_clean_across_appends(self):
        """Odd-sized appends never leak set bits past n_transactions."""
        index = BitmapIndex([], 3)
        for size in (1, 3, 5, 7, 2):
            index.append([(0, 1, 2)] * size)
        # every item is in every transaction: all supports == n
        assert index.support_count((0, 1, 2)) == index.n_transactions == 18
        assert index.support_count(()) == 18

    def test_append_invalidates_prefix_cache(self):
        index = BitmapIndex(TXNS, 4)
        index.support_counts([(0, 1), (1, 2)], cache=True)
        assert index.cache_size() > 0
        index.append([(0, 1, 2, 3)])
        assert index.cache_size() == 0  # stale vectors dropped
        # and fresh counts see the new row: 4 occurrences in TXNS plus it
        assert index.support_count((0, 1)) == 5

    def test_out_of_universe_append_rejected(self):
        index = BitmapIndex(TXNS, 4)
        with pytest.raises(InvalidParameterError):
            index.append([(9,)])


class TestSupportCountingPlan:
    def test_plan_matches_support_counts(self):
        plan = SupportCountingPlan(PROBES)
        index = BitmapIndex(TXNS, 4)
        np.testing.assert_array_equal(
            plan.count(index), index.support_counts(PROBES)
        )

    def test_one_plan_many_indexes(self):
        """The streaming shape: a fixed plan over per-chunk indexes."""
        plan = SupportCountingPlan(PROBES)
        whole = BitmapIndex(TXNS, 4).support_counts(PROBES)
        partial = sum(
            plan.count(BitmapIndex(TXNS[i : i + 3], 4))
            for i in range(0, len(TXNS), 3)
        )
        np.testing.assert_array_equal(partial, whole)

    def test_plan_outside_universe_rejected(self):
        plan = SupportCountingPlan([(0, 7)])
        with pytest.raises(InvalidParameterError):
            plan.count(BitmapIndex(TXNS, 4))

    def test_plan_on_appended_index(self):
        plan = SupportCountingPlan(PROBES)
        index = BitmapIndex(TXNS[:4], 4)
        index.append(TXNS[4:])
        np.testing.assert_array_equal(
            plan.count(index), BitmapIndex(TXNS, 4).support_counts(PROBES)
        )

    def test_empty_collection_plan(self):
        plan = SupportCountingPlan([])
        assert plan.count(BitmapIndex(TXNS, 4)).shape == (0,)


class TestPrefixCacheBound:
    def test_cap_is_configurable_and_enforced(self):
        index = BitmapIndex(TXNS, 4, max_cache_entries=4)
        pairs = [(a, b) for a in range(4) for b in range(a + 1, 4)]  # 6 > 4
        counts = index.support_counts(pairs, cache=True)
        # a group larger than the cap is computed but never admitted
        assert index.cache_size() == 0
        np.testing.assert_array_equal(counts, index.support_counts_loop(pairs))

    def test_overflow_clears_then_readmits(self):
        index = BitmapIndex(TXNS, 4, max_cache_entries=4)
        index.support_counts([(0, 1), (0, 2)], cache=True)
        assert index.cache_size() == 2
        index.support_counts([(1, 2), (1, 3), (2, 3)], cache=True)
        # admitting 3 more would exceed 4: wholesale clear, then admit
        assert index.cache_size() == 3

    def test_mining_releases_the_cache(self):
        """Regression: a full Apriori run must not leave memoised
        intersection vectors (and the batch buffers they pin) behind."""
        rng = np.random.default_rng(9)
        txns = [
            tuple(sorted(set(rng.integers(0, 12, size=5).tolist())))
            for _ in range(400)
        ]
        dataset = TransactionDataset(txns, 12)
        apriori(dataset, 0.05)
        assert dataset.index.cache_size() == 0
        # a second mining run over the same index starts from a cold,
        # bounded memo and reproduces identical results
        assert apriori(dataset, 0.05) == apriori(dataset, 0.05)
        assert dataset.index.cache_size() == 0
