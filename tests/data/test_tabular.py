"""Unit tests for TabularDataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute import AttributeSpace, numeric
from repro.core.predicate import interval_constraint
from repro.core.region import BoxRegion
from repro.data.tabular import TabularDataset, from_rows
from repro.errors import InvalidParameterError, SchemaError


class TestConstruction:
    def test_shape_validation(self, two_d_space):
        with pytest.raises(InvalidParameterError):
            TabularDataset(two_d_space, np.zeros(3), np.zeros(3, dtype=int))

    def test_column_count_must_match(self, two_d_space):
        with pytest.raises(SchemaError):
            TabularDataset(two_d_space, np.zeros((3, 5)), np.zeros(3, dtype=int))

    def test_labelled_space_requires_y(self, two_d_space):
        with pytest.raises(SchemaError):
            TabularDataset(two_d_space, np.zeros((3, 2)))

    def test_y_without_class_labels_rejected(self):
        space = AttributeSpace((numeric("a"),))
        with pytest.raises(SchemaError):
            TabularDataset(space, np.zeros((2, 1)), np.zeros(2, dtype=int))

    def test_y_length_must_match(self, two_d_space):
        with pytest.raises(SchemaError):
            TabularDataset(
                two_d_space, np.zeros((3, 2)), np.zeros(4, dtype=int)
            )

    def test_from_rows(self, two_d_space):
        d = from_rows(two_d_space, [[1, 2], [3, 4]], [0, 1])
        assert len(d) == 2
        assert d.column("age").tolist() == [1.0, 3.0]


class TestRegionEvaluation:
    def test_box_selectivity(self, two_d_space):
        d = from_rows(
            two_d_space, [[10, 0], [20, 0], [30, 0], [40, 0]], [0, 0, 1, 1]
        )
        region = BoxRegion(interval_constraint("age", 15, 35))
        assert d.box_selectivity(region) == pytest.approx(0.5)

    def test_box_with_class(self, two_d_space):
        d = from_rows(
            two_d_space, [[10, 0], [20, 0], [30, 0], [40, 0]], [0, 0, 1, 1]
        )
        region = BoxRegion(interval_constraint("age", 15, 45), class_label=1)
        assert d.box_count(region) == 2

    def test_class_region_on_unlabelled_raises(self):
        space = AttributeSpace((numeric("age"),))
        d = TabularDataset(space, np.array([[1.0]]))
        with pytest.raises(SchemaError):
            d.box_count(BoxRegion(interval_constraint("age", 0, 2), class_label=0))

    def test_empty_dataset_selectivity_zero(self, two_d_space):
        d = from_rows(two_d_space, [], [])
        assert d.box_selectivity(BoxRegion()) == 0.0


class TestAlgebra:
    def test_take_with_repeats(self, two_d_space):
        d = from_rows(two_d_space, [[1, 2], [3, 4]], [0, 1])
        taken = d.take(np.array([1, 1, 0]))
        assert len(taken) == 3
        assert taken.column("age").tolist() == [3.0, 3.0, 1.0]

    def test_filter(self, two_d_space):
        d = from_rows(two_d_space, [[1, 2], [3, 4], [5, 6]], [0, 1, 0])
        kept = d.filter(d.column("age") > 2)
        assert len(kept) == 2

    def test_concat(self, two_d_space):
        a = from_rows(two_d_space, [[1, 2]], [0])
        b = from_rows(two_d_space, [[3, 4]], [1])
        c = a.concat(b)
        assert len(c) == 2
        assert c.y.tolist() == [0, 1]

    def test_concat_incompatible_spaces_rejected(self, two_d_space):
        other_space = AttributeSpace((numeric("x"), numeric("y")), (0, 1))
        a = from_rows(two_d_space, [[1, 2]], [0])
        b = from_rows(other_space, [[3, 4]], [1])
        with pytest.raises(SchemaError):
            a.concat(b)

    def test_relabel(self, two_d_space):
        d = from_rows(two_d_space, [[1, 2], [3, 4]], [0, 1])
        r = d.relabel(np.array([1, 0]))
        assert r.y.tolist() == [1, 0]
        assert np.array_equal(r.X, d.X)

    def test_class_distribution(self, two_d_space):
        d = from_rows(two_d_space, [[1, 2], [3, 4], [5, 6], [7, 8]], [0, 1, 1, 1])
        dist = d.class_distribution()
        assert dist[0] == pytest.approx(0.25)
        assert dist[1] == pytest.approx(0.75)
