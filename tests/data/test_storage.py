"""StripeStore contract, mmap recovery, and crash-consistency tests.

The store contract is backend-agnostic (create/resize/commit behave
identically on RAM and mmap), and the mmap backend additionally promises
crash consistency against process kill: anything written after the last
commit is invisible after a reopen. The crash tests simulate the
post-kill disk state directly -- scribbling uncommitted bytes into the
stripe files without touching the manifest -- which is exactly what a
SIGKILL between stripe writes and the manifest replace leaves behind.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.data.storage import (
    MANIFEST_NAME,
    AttachedStripeStore,
    MmapStripeStore,
    RamStripeStore,
    attach,
    iter_row_blocks,
    make_store,
    manifest_meta,
    open_store,
    scan_budget_bytes,
)
from repro.data.transactions import BitmapIndex
from repro.errors import InvalidParameterError
from repro.stream.chunks import TransactionLog


def _make(backend, tmp_path, tag="store"):
    return make_store(backend, tmp_path / tag)


ROWS = [(0, 3), (1,), (0, 1, 2), (), (2, 3), (3,), (0,), (1, 2), (2,)]


# --------------------------------------------------------------------- #
# The backend-shared contract
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", ["ram", "mmap"])
class TestStoreContract:
    def test_create_zero_initialised_and_live(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        arr = store.create("a", (3, 4), np.uint8)
        assert arr.shape == (3, 4) and not arr.any()
        arr[1, 2] = 7
        assert store.stripe("a")[1, 2] == 7

    def test_resize_preserves_prefix(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        arr = store.create("a", (2, 3), np.int64)
        arr[:] = [[1, 2, 3], [4, 5, 6]]
        grown = store.resize("a", (4, 5))
        assert grown.shape == (4, 5)
        assert np.array_equal(grown[:2, :3], [[1, 2, 3], [4, 5, 6]])
        assert not grown[2:].any() and not grown[:, 3:].any()

    def test_leading_axis_growth_preserves_prefix(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        arr = store.create("a", (2, 3), np.float64)
        arr[:] = 1.5
        grown = store.resize("a", (6, 3))
        assert np.array_equal(grown[:2], np.full((2, 3), 1.5))
        assert not grown[2:].any()

    def test_resize_rejects_shrink(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        store.create("a", (4, 4), np.uint8)
        with pytest.raises(InvalidParameterError):
            store.resize("a", (2, 4))

    def test_duplicate_create_rejected(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        store.create("a", (1,), np.uint8)
        with pytest.raises(InvalidParameterError):
            store.create("a", (1,), np.uint8)

    def test_names(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        store.create("a", (1,), np.uint8)
        store.create("b", (2, 2), np.int64)
        assert sorted(store.names()) == ["a", "b"]

    def test_zero_size_stripe_grows(self, backend, tmp_path):
        store = _make(backend, tmp_path)
        arr = store.create("a", (0,), np.int32)
        assert arr.size == 0
        grown = store.resize("a", (5,))
        grown[:] = np.arange(5)
        assert np.array_equal(store.stripe("a"), np.arange(5))


class TestMakeStore:
    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            make_store("tape", tmp_path)

    def test_mmap_requires_dir(self):
        with pytest.raises(InvalidParameterError):
            make_store("mmap")

    def test_ram_handle_is_none(self):
        assert RamStripeStore().handle() is None


# --------------------------------------------------------------------- #
# Mmap specifics: reopen, handles, generations
# --------------------------------------------------------------------- #


class TestMmapStore:
    def test_fresh_constructor_rejects_existing_store(self, tmp_path):
        MmapStripeStore(tmp_path / "s")
        with pytest.raises(InvalidParameterError):
            MmapStripeStore(tmp_path / "s")

    def test_reopen_rolls_back_to_last_commit(self, tmp_path):
        store = MmapStripeStore(tmp_path / "s")
        arr = store.create("a", (4,), np.int64)
        arr[:] = [1, 2, 3, 4]
        store.meta["n_rows"] = 4
        store.commit()
        # grow + write + meta bump, all uncommitted
        grown = store.resize("a", (8,))
        grown[4:] = 9
        store.meta["n_rows"] = 8

        reopened = open_store(tmp_path / "s")
        assert reopened.meta["n_rows"] == 4
        assert np.array_equal(reopened.stripe("a"), [1, 2, 3, 4])

    def test_width_growth_writes_new_generation_and_gcs_old(self, tmp_path):
        store = MmapStripeStore(tmp_path / "s")
        arr = store.create("a", (2, 2), np.uint8)
        arr[:] = 5
        store.commit()
        files = {p.name for p in (tmp_path / "s").iterdir()}
        assert "a.0.stripe" in files
        grown = store.resize("a", (2, 6))  # trailing-axis growth: new gen
        assert np.array_equal(grown[:, :2], np.full((2, 2), 5))
        # old generation survives until the commit stops referencing it
        assert (tmp_path / "s" / "a.0.stripe").exists()
        store.commit()
        assert not (tmp_path / "s" / "a.0.stripe").exists()
        assert (tmp_path / "s" / "a.1.stripe").exists()

    def test_open_deletes_unreferenced_stripe_files(self, tmp_path):
        store = MmapStripeStore(tmp_path / "s")
        store.create("a", (2,), np.uint8)
        store.commit()
        orphan = tmp_path / "s" / "dead.7.stripe"
        orphan.write_bytes(b"garbage")
        open_store(tmp_path / "s")
        assert not orphan.exists()

    def test_manifest_meta_reads_without_mapping(self, tmp_path):
        store = MmapStripeStore(tmp_path / "s")
        store.meta["n_rows"] = 17
        store.commit()
        assert manifest_meta(tmp_path / "s")["n_rows"] == 17

    def test_handle_round_trips_through_pickle(self, tmp_path):
        store = MmapStripeStore(tmp_path / "s")
        arr = store.create("a", (3, 2), np.int64)
        arr[:] = np.arange(6).reshape(3, 2)
        store.meta["n_rows"] = 3
        store.commit()
        handle = pickle.loads(pickle.dumps(store.handle()))
        attached = attach(handle)
        assert isinstance(attached, AttachedStripeStore)
        assert attached.meta["n_rows"] == 3
        assert np.array_equal(attached.stripe("a"), arr)
        assert attached.handle() is handle

    def test_attached_store_is_read_only(self, tmp_path):
        store = MmapStripeStore(tmp_path / "s")
        store.create("a", (2,), np.uint8)
        store.commit()
        attached = attach(store.handle())
        for mutate in (
            lambda: attached.create("b", (1,), np.uint8),
            lambda: attached.resize("a", (4,)),
            lambda: attached.commit(),
        ):
            with pytest.raises(InvalidParameterError):
                mutate()

    def test_release_and_flush_do_not_corrupt(self, tmp_path):
        store = MmapStripeStore(tmp_path / "s")
        arr = store.create("a", (1024,), np.int64)
        arr[:] = np.arange(1024)
        store.commit()
        store.flush()
        store.release("a")
        assert np.array_equal(store.stripe("a"), np.arange(1024))


# --------------------------------------------------------------------- #
# Crash consistency: reopen == rebuild from committed rows
# --------------------------------------------------------------------- #


def _scribble_uncommitted(stripe_dir):
    """Simulate a SIGKILL mid-append: grow + dirty stripes, manifest stale.

    Writes garbage into every committed stripe file -- flipping the
    bytes beyond the committed extents *and* extending each file -- and
    leaves a stale manifest temp file behind. This is exactly the set of
    disk states an append killed before its commit can leave.
    """
    manifest = json.loads((stripe_dir / MANIFEST_NAME).read_text())
    for spec in manifest["stripes"].values():
        path = stripe_dir / spec["file"]
        committed = path.stat().st_size
        blob = path.read_bytes()
        path.write_bytes(blob + b"\xff" * max(64, committed // 2))
    (stripe_dir / (MANIFEST_NAME + ".tmp")).write_text("{broken")


class TestCrashConsistency:
    def test_reopened_index_matches_rebuilt(self, tmp_path):
        committed = ROWS  # 9 rows: the committed tail byte is partial
        log = TransactionLog(
            4, committed, backend="mmap", stripe_dir=tmp_path / "s"
        )
        n_bytes = log.index._buf.shape[1]
        del log

        # the kill: uncommitted garbage lands in the files, including
        # the spare capacity bytes of the committed rows' own stripes
        buf_file = next((tmp_path / "s").glob("item_bits*.stripe"))
        raw = bytearray(buf_file.read_bytes())
        committed_bytes = (len(committed) + 7) >> 3
        for item in range(4):
            row = item * n_bytes
            for b in range(committed_bytes, n_bytes):
                raw[row + b] = 0xFF
            # dirty the committed partial byte's spare bits too
            raw[row + committed_bytes - 1] |= 0x7F
        buf_file.write_bytes(bytes(raw))
        _scribble_uncommitted(tmp_path / "s")

        reopened = TransactionLog.open(tmp_path / "s")
        rebuilt = BitmapIndex(committed, 4)
        assert len(reopened) == len(committed)
        assert reopened.transactions == [
            tuple(sorted(set(t))) for t in committed
        ]
        itemsets = [(0,), (1,), (2,), (3,), (0, 1), (1, 2), (0, 2, 3), ()]
        assert np.array_equal(
            reopened.index.support_counts(itemsets),
            rebuilt.support_counts(itemsets),
        )

    def test_append_after_recovery_continues_cleanly(self, tmp_path):
        log = TransactionLog(
            4, ROWS[:5], backend="mmap", stripe_dir=tmp_path / "s"
        )
        del log
        _scribble_uncommitted(tmp_path / "s")
        reopened = TransactionLog.open(tmp_path / "s")
        reopened.append(ROWS[5:])
        rebuilt = BitmapIndex(ROWS, 4)
        itemsets = [(0,), (1, 2), (2, 3), ()]
        assert np.array_equal(
            reopened.index.support_counts(itemsets),
            rebuilt.support_counts(itemsets),
        )
        # and the recovered-and-extended state itself reopens
        again = TransactionLog.open(tmp_path / "s")
        assert len(again) == len(ROWS)
        assert np.array_equal(
            again.index.support_counts(itemsets),
            rebuilt.support_counts(itemsets),
        )

    def test_store_level_reopen_masks_nothing_it_should_keep(self, tmp_path):
        store = MmapStripeStore(tmp_path / "s")
        arr = store.create("a", (16,), np.uint8)
        arr[:] = np.arange(16)
        store.meta["n_rows"] = 16
        store.commit()
        _scribble_uncommitted(tmp_path / "s")
        reopened = open_store(tmp_path / "s")
        assert np.array_equal(reopened.stripe("a"), np.arange(16))


# --------------------------------------------------------------------- #
# Budget helpers
# --------------------------------------------------------------------- #


class TestScanBudget:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCAN_BUDGET_BYTES", raising=False)
        assert scan_budget_bytes() == 1 << 26

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_BUDGET_BYTES", "4096")
        assert scan_budget_bytes() == 4096

    def test_param_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_BUDGET_BYTES", "4096")
        assert scan_budget_bytes(128) == 128

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            scan_budget_bytes(0)

    def test_iter_row_blocks_covers_exactly(self):
        blocks = list(iter_row_blocks(10, 3))
        assert blocks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert list(iter_row_blocks(0, 5)) == []
        with pytest.raises(InvalidParameterError):
            list(iter_row_blocks(5, 0))
