"""Unit tests for TransactionDataset and the packed bitmap index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.transactions import BitmapIndex, TransactionDataset
from repro.errors import InvalidParameterError
from repro.mining.itemsets import brute_force_support_count


class TestConstruction:
    def test_transactions_are_sorted_and_deduped(self):
        d = TransactionDataset([(3, 1, 1, 2)], n_items=5)
        assert d.transactions == [(1, 2, 3)]

    def test_out_of_universe_items_rejected(self):
        with pytest.raises(InvalidParameterError):
            TransactionDataset([(0, 7)], n_items=5)
        with pytest.raises(InvalidParameterError):
            TransactionDataset([(-1,)], n_items=5)

    def test_empty_transactions_allowed(self):
        d = TransactionDataset([(), (0,)], n_items=2)
        assert len(d) == 2
        assert d.support_count({0}) == 1

    def test_zero_items_rejected(self):
        with pytest.raises(InvalidParameterError):
            TransactionDataset([], n_items=0)


class TestBitmapIndex:
    def test_support_counts_match_brute_force(self, small_transactions):
        for items in [{0}, {1}, {0, 1}, {0, 1, 2}, {4}, set()]:
            assert small_transactions.support_count(items) == (
                brute_force_support_count(small_transactions, items)
            )

    def test_item_support_counts_vector(self, small_transactions):
        counts = small_transactions.index.item_support_counts()
        expected = [
            brute_force_support_count(small_transactions, {i}) for i in range(5)
        ]
        assert counts.tolist() == expected

    def test_empty_itemset_support_is_n(self, small_transactions):
        assert small_transactions.support_count(set()) == len(small_transactions)

    def test_absent_item_has_zero_support(self, small_transactions):
        assert small_transactions.support_count({4}) == 0

    def test_index_is_cached_and_droppable(self, small_transactions):
        idx1 = small_transactions.index
        assert small_transactions.index is idx1
        small_transactions.drop_index()
        assert small_transactions.index is not idx1

    def test_non_multiple_of_eight_sizes(self):
        """Padding bits must never leak into popcounts."""
        for n in (1, 7, 8, 9, 15, 16, 17):
            txns = [(0,)] * n
            d = TransactionDataset(txns, n_items=2)
            assert d.support_count({0}) == n
            assert d.support_count({1}) == 0
            assert d.support_count(set()) == n

    def test_empty_itemset_intersection_bits_mask_padding(self):
        """intersection_bits(()) must zero the padding bits past n.

        Any popcount consumer of the packed vector would over-count the
        empty itemset by up to 7 transactions otherwise.
        """
        from repro.data.transactions import POPCOUNT

        for n in (1, 3, 5, 7, 8, 9, 12, 15, 16, 17):
            idx = BitmapIndex([(0,)] * n, n_items=1)
            bits = idx.intersection_bits(())
            assert int(POPCOUNT[bits].sum()) == n
            # every padding bit in the final byte is zero
            tail = int(bits[-1])
            valid_in_tail = n - 8 * (len(bits) - 1)
            assert tail == (0xFF << (8 - valid_in_tail)) & 0xFF

    def test_empty_itemset_intersection_bits_empty_dataset(self):
        idx = BitmapIndex([], n_items=2)
        from repro.data.transactions import POPCOUNT

        assert int(POPCOUNT[idx.intersection_bits(())].sum()) == 0

    def test_standalone_index(self):
        idx = BitmapIndex([(0, 1), (1,), (0,)], n_items=3)
        assert idx.support_count({0}) == 2
        assert idx.support_count({1}) == 2
        assert idx.support_count({0, 1}) == 1
        assert idx.support_count({2}) == 0


class TestAlgebra:
    def test_take(self, small_transactions):
        taken = small_transactions.take(np.array([0, 0, 2]))
        assert len(taken) == 3
        assert taken.transactions[0] == taken.transactions[1] == (0, 1)

    def test_concat(self, small_transactions):
        doubled = small_transactions.concat(small_transactions)
        assert len(doubled) == 2 * len(small_transactions)
        assert doubled.support_count({0}) == 2 * small_transactions.support_count({0})

    def test_concat_universe_mismatch_rejected(self, small_transactions):
        other = TransactionDataset([(0,)], n_items=3)
        with pytest.raises(InvalidParameterError):
            small_transactions.concat(other)

    def test_selectivity(self, small_transactions):
        assert small_transactions.itemset_selectivity({0}) == pytest.approx(0.6)

    def test_average_length(self):
        d = TransactionDataset([(0,), (0, 1), (0, 1, 2)], n_items=3)
        assert d.average_length() == pytest.approx(2.0)
