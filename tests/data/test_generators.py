"""Tests for the two IBM-style synthetic data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.quest_basket import build_pattern_pool, generate_basket
from repro.data.quest_classify import (
    GROUP_A,
    GROUP_B,
    assign_labels,
    classification_space,
    generate_classification,
)
from repro.errors import InvalidParameterError


class TestBasketGenerator:
    def test_deterministic_under_seed(self):
        a = generate_basket(200, n_items=50, seed=7)
        b = generate_basket(200, n_items=50, seed=7)
        assert a.transactions == b.transactions

    def test_different_seeds_differ(self):
        a = generate_basket(200, n_items=50, seed=7)
        b = generate_basket(200, n_items=50, seed=8)
        assert a.transactions != b.transactions

    def test_row_count_and_universe(self):
        d = generate_basket(123, n_items=77, seed=1)
        assert len(d) == 123
        assert d.n_items == 77
        assert all(0 <= i < 77 for t in d for i in t)

    def test_average_length_tracks_parameter(self):
        d = generate_basket(
            2_000, n_items=200, avg_transaction_len=10, seed=3
        )
        assert 6 <= d.average_length() <= 14

    def test_shared_pool_gives_same_process(self):
        """Two datasets from one pool share frequent structure far more
        than datasets from independent pools."""
        rng = np.random.default_rng(5)
        pool = build_pattern_pool(
            rng, n_items=100, n_patterns=50, avg_pattern_len=4
        )
        d1 = generate_basket(1_500, n_items=100, rng=rng, pool=pool)
        d2 = generate_basket(1_500, n_items=100, rng=rng, pool=pool)
        d3 = generate_basket(1_500, n_items=100, seed=99, n_patterns=50,
                             avg_pattern_len=4)
        from repro.mining.apriori import apriori

        f1 = set(apriori(d1, 0.02, max_len=2))
        f2 = set(apriori(d2, 0.02, max_len=2))
        f3 = set(apriori(d3, 0.02, max_len=2))
        same = len(f1 & f2) / max(len(f1 | f2), 1)
        cross = len(f1 & f3) / max(len(f1 | f3), 1)
        assert same > cross

    def test_pattern_pool_shapes(self):
        rng = np.random.default_rng(0)
        pool = build_pattern_pool(rng, n_items=50, n_patterns=20, avg_pattern_len=4)
        assert len(pool.patterns) == 20
        assert pool.weights.sum() == pytest.approx(1.0)
        assert ((pool.corruption >= 0) & (pool.corruption <= 1)).all()
        assert all(len(p) >= 1 for p in pool.patterns)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            generate_basket(-1)
        with pytest.raises(InvalidParameterError):
            generate_basket(10, avg_transaction_len=0)
        with pytest.raises(InvalidParameterError):
            build_pattern_pool(
                np.random.default_rng(0), n_items=10, n_patterns=0,
                avg_pattern_len=2,
            )

    def test_no_empty_transactions(self):
        d = generate_basket(500, n_items=30, avg_transaction_len=2, seed=4)
        assert all(len(t) >= 1 for t in d)


class TestClassifyGenerator:
    def test_deterministic_under_seed(self):
        a = generate_classification(100, function=1, seed=7)
        b = generate_classification(100, function=1, seed=7)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_attribute_domains(self):
        d = generate_classification(2_000, function=1, seed=1)
        space = d.space
        for attribute in space.attributes:
            col = d.column(attribute.name)
            if attribute.is_numeric:
                assert col.min() >= attribute.low
                assert col.max() < attribute.high
            else:
                assert set(np.unique(col)).issubset(set(attribute.values))

    def test_commission_rule(self):
        d = generate_classification(2_000, function=1, seed=2)
        salary = d.column("salary")
        commission = d.column("commission")
        assert (commission[salary >= 75_000] == 0).all()
        low = commission[salary < 75_000]
        assert (low >= 10_000).all() and (low < 75_000).all()

    def test_hvalue_depends_on_zipcode(self):
        d = generate_classification(5_000, function=1, seed=3)
        zipcode = d.column("zipcode")
        hvalue = d.column("hvalue")
        k = zipcode + 1
        assert (hvalue >= k * 50_000).all()
        assert (hvalue < k * 150_000).all()

    def test_f1_labels(self):
        d = generate_classification(1_000, function=1, seed=4)
        age = d.column("age")
        expected = np.where((age < 40) | (age >= 60), GROUP_A, GROUP_B)
        assert np.array_equal(d.y, expected)

    def test_functions_1_to_8_produce_both_classes(self):
        for fn in range(1, 9):
            d = generate_classification(3_000, function=fn, seed=fn)
            fractions = d.class_distribution()
            assert 0.05 < fractions[GROUP_A] < 0.95, f"F{fn} degenerate"

    def test_functions_9_and_10_skew_to_group_a(self):
        """F9/F10's disposable-income formulas add the loan/equity terms,
        skewing them to Group A -- a known property of the original
        generator (and why the paper only uses F1-F4)."""
        for fn in (9, 10):
            d = generate_classification(3_000, function=fn, seed=fn)
            assert d.class_distribution()[GROUP_A] > 0.9

    def test_assign_labels_matches_generation(self):
        d = generate_classification(500, function=3, seed=5)
        assert np.array_equal(assign_labels(d.X, 3), d.y)

    def test_label_noise(self):
        clean = generate_classification(4_000, function=1, seed=6)
        noisy = generate_classification(
            4_000, function=1, seed=6, label_noise=0.2
        )
        flip_rate = float(np.mean(clean.y != noisy.y))
        assert 0.1 < flip_rate < 0.3

    def test_unknown_function_rejected(self):
        with pytest.raises(InvalidParameterError):
            generate_classification(10, function=11)

    def test_space_is_shared_and_labelled(self):
        assert generate_classification(5, seed=0).space.compatible_with(
            classification_space()
        )
