"""Property tests: the batched support counter against the seed loop.

The batched engine (stacked ``bitwise_and`` stripe reductions + one
popcount pass) must return byte-for-byte identical counts to the seed
per-itemset Python loop, kept as :meth:`BitmapIndex.support_counts_loop`,
for every dataset shape -- including empty itemsets, empty datasets, and
transaction counts that are not a multiple of 8.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.transactions import BitmapIndex, TransactionDataset

items = st.integers(min_value=0, max_value=11)
transactions = st.lists(st.frozensets(items, max_size=6), min_size=0, max_size=41)
itemset_lists = st.lists(st.frozensets(items, max_size=5), min_size=0, max_size=30)


@settings(deadline=None, max_examples=120)
@given(transactions=transactions, itemsets=itemset_lists, cache=st.booleans())
def test_batched_counts_equal_seed_loop(transactions, itemsets, cache):
    index = BitmapIndex([tuple(sorted(t)) for t in transactions], n_items=12)
    batched = index.support_counts(itemsets, cache=cache)
    loop = index.support_counts_loop(itemsets)
    assert batched.dtype == loop.dtype == np.int64
    assert batched.tolist() == loop.tolist()


@settings(deadline=None, max_examples=60)
@given(transactions=transactions, itemsets=itemset_lists)
def test_cache_warm_counts_stay_identical(transactions, itemsets):
    """A warm intersection-bits cache must never change any answer."""
    index = BitmapIndex([tuple(sorted(t)) for t in transactions], n_items=12)
    cold = index.support_counts(itemsets, cache=True)
    warm = index.support_counts(itemsets, cache=True)
    supersets = [frozenset(s) | {0} for s in itemsets]
    assert cold.tolist() == warm.tolist()
    assert (
        index.support_counts(supersets, cache=True).tolist()
        == index.support_counts_loop(supersets).tolist()
    )


class TestEdgeShapes:
    def test_empty_itemset_collection(self, small_transactions):
        assert small_transactions.index.support_counts([]).tolist() == []

    def test_empty_itemsets_count_every_transaction(self, small_transactions):
        counts = small_transactions.index.support_counts([(), frozenset()])
        assert counts.tolist() == [10, 10]

    def test_empty_dataset(self):
        index = BitmapIndex([], n_items=4)
        counts = index.support_counts([(), (0,), (1, 2)])
        assert counts.tolist() == [0, 0, 0]

    def test_non_multiple_of_eight_transaction_counts(self):
        for n in (1, 7, 9, 15, 17, 23):
            d = TransactionDataset([*([(0, 1)] * n), (1,)], n_items=3)
            counts = d.index.support_counts([(), (0,), (1,), (0, 1), (2,)])
            assert counts.tolist() == [n + 1, n, n + 1, n, 0]

    def test_duplicate_items_within_itemset(self, small_transactions):
        batched = small_transactions.index.support_counts([(0, 0, 1)])
        assert batched.tolist() == [small_transactions.support_count({0, 1})]

    def test_level_wise_prefix_reuse(self):
        """Apriori-style level-k counting resolves from level-(k-1) bits."""
        rng = np.random.default_rng(3)
        txns = [
            tuple(sorted(set(rng.integers(0, 10, 5).tolist())))
            for _ in range(100)
        ]
        d = TransactionDataset(txns, n_items=10)
        index = d.index
        pairs = [(a, b) for a in range(10) for b in range(a + 1, 10)]
        triples = [(a, b, c) for a, b in pairs for c in range(b + 1, 10)]
        index.support_counts(pairs, cache=True)
        assert len(index._prefix_cache) == len(pairs)
        got = index.support_counts(triples, cache=True)
        assert got.tolist() == index.support_counts_loop(triples).tolist()

    def test_clear_cache(self, small_transactions):
        index = small_transactions.index
        index.support_counts([(0, 1), (1, 2)], cache=True)
        assert index._prefix_cache
        index.clear_cache()
        assert not index._prefix_cache
