"""Tests for sampling utilities and flat-file IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import (
    load_tabular,
    load_transactions,
    save_tabular,
    save_transactions,
)
from repro.data.sampling import (
    bootstrap_pair,
    sample,
    sample_indices,
    sample_n,
    split_halves,
)
from repro.errors import InvalidParameterError


class TestSampling:
    def test_fraction_size(self, small_tabular, rng):
        s = sample(small_tabular, 0.5, rng)
        assert len(s) == len(small_tabular) // 2

    def test_fraction_bounds(self, small_tabular, rng):
        with pytest.raises(InvalidParameterError):
            sample(small_tabular, 0.0, rng)
        with pytest.raises(InvalidParameterError):
            sample(small_tabular, 1.5, rng)

    def test_without_replacement_has_no_duplicates(self, rng):
        idx = sample_indices(100, 50, rng, replace=False)
        assert len(set(idx.tolist())) == 50

    def test_without_replacement_cannot_oversample(self, rng):
        with pytest.raises(InvalidParameterError):
            sample_indices(10, 20, rng, replace=False)

    def test_with_replacement_can_oversample(self, rng):
        idx = sample_indices(10, 20, rng, replace=True)
        assert len(idx) == 20

    def test_sample_n_on_transactions(self, small_transactions, rng):
        s = sample_n(small_transactions, 4, rng)
        assert len(s) == 4
        assert s.n_items == small_transactions.n_items

    def test_bootstrap_pair_sizes(self, small_tabular, rng):
        d1, d2 = bootstrap_pair(small_tabular, 10, 20, rng)
        assert len(d1) == 10
        assert len(d2) == 20

    def test_split_halves(self, small_tabular, rng):
        a, b = split_halves(small_tabular, rng)
        assert len(a) + len(b) == len(small_tabular)

    def test_reproducible_with_same_seed(self, small_tabular):
        a = sample(small_tabular, 0.3, np.random.default_rng(5))
        b = sample(small_tabular, 0.3, np.random.default_rng(5))
        assert np.array_equal(a.X, b.X)


class TestIo:
    def test_tabular_roundtrip(self, small_tabular, tmp_path):
        path = tmp_path / "data.npz"
        save_tabular(small_tabular, path)
        loaded = load_tabular(path)
        assert np.array_equal(loaded.X, small_tabular.X)
        assert np.array_equal(loaded.y, small_tabular.y)
        assert loaded.space.compatible_with(small_tabular.space)

    def test_unlabelled_tabular_roundtrip(self, two_d_space, tmp_path):
        from repro.core.attribute import AttributeSpace
        from repro.data.tabular import TabularDataset

        space = AttributeSpace(two_d_space.attributes, ())
        data = TabularDataset(space, np.array([[1.0, 2.0]]))
        path = tmp_path / "unlabelled.npz"
        save_tabular(data, path)
        loaded = load_tabular(path)
        assert loaded.y is None
        assert np.array_equal(loaded.X, data.X)

    def test_transactions_roundtrip(self, small_transactions, tmp_path):
        path = tmp_path / "txns.txt"
        save_transactions(small_transactions, path)
        loaded = load_transactions(path)
        assert loaded.transactions == small_transactions.transactions
        assert loaded.n_items == small_transactions.n_items

    def test_transactions_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n2\n")
        with pytest.raises(InvalidParameterError):
            load_transactions(path)
